//! Offline stand-in for the parts of [`criterion`] this workspace uses.
//!
//! It really measures: each benchmark warms up for the configured
//! duration, then takes `sample_size` samples, each sized so the whole
//! measurement fits in `measurement_time`, and reports min / mean /
//! max per-iteration wall-clock time (plus throughput when configured)
//! on stdout. There is no statistical analysis, plotting, or baseline
//! comparison — swap in the real crate for those.
//!
//! Bench binaries built with `harness = false` receive Cargo's CLI
//! arguments (`--bench`, filters); unrecognized flags are ignored and a
//! positional argument filters benchmarks by substring, so
//! `cargo bench -- bottleneck` works.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter,
/// printed as `name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    /// An id from a parameter value only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { name: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, parameter: None }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (tuples, items) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times and records total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver holding shared settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Applies CLI arguments (already done by `default`; kept for API
    /// compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup { criterion: self, group: name.to_string(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let group = id.name.clone();
        let mut g = BenchmarkGroup { criterion: self, group, throughput: None };
        g.run(&id, f);
    }

    /// Prints the closing summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |b| routine(b, input));
        self
    }

    /// Benchmarks `routine` with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id, routine);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &BenchmarkId, mut routine: F) {
        let full = format!("{}/{id}", self.group);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Warm-up: discover how many iterations fit in the warm-up
        // window, growing geometrically from 1.
        let mut iters: u64 = 1;
        let warm_up_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            routine(&mut b);
            per_iter = b
                .elapsed
                .checked_div(iters as u32)
                .unwrap_or(per_iter)
                .max(Duration::from_nanos(1));
            if warm_up_start.elapsed() >= self.criterion.warm_up_time {
                break;
            }
            iters = iters.saturating_mul(2).min(1 << 40);
        }

        // Size each sample so all samples together fit the measurement
        // window.
        let sample_size = self.criterion.sample_size as u64;
        let budget = self.criterion.measurement_time.as_secs_f64() / sample_size as f64;
        let iters_per_sample = ((budget / per_iter.as_secs_f64()).ceil() as u64).clamp(1, 1 << 40);

        let mut samples = Vec::with_capacity(sample_size as usize);
        for _ in 0..sample_size {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            routine(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        // Machine-readable sidecar for tooling (scripts/bench_snapshot.sh):
        // when DSQ_BENCH_JSON names a file, append one JSON object per
        // benchmark with the per-iteration wall-clock statistics.
        if let Ok(path) = std::env::var("DSQ_BENCH_JSON") {
            if !path.is_empty() {
                use std::io::Write as _;
                if let Ok(mut file) =
                    std::fs::OpenOptions::new().create(true).append(true).open(&path)
                {
                    let _ = writeln!(
                        file,
                        "{{\"bench\":\"{full}\",\"median_s\":{median:e},\"mean_s\":{mean:e},\
                         \"min_s\":{min:e},\"max_s\":{max:e},\"samples\":{}}}",
                        samples.len()
                    );
                }
            }
        }

        let mut line =
            format!("  {full:<48} time: [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  thrpt: {:.1} elem/s", n as f64 / mean));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!("  thrpt: {:.1} B/s", n as f64 / mean));
            }
            None => {}
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Re-exported so `b.iter(|| black_box(...))` patterns can use
/// `criterion::black_box` as upstream allows.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a named group of benchmark functions with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(15),
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, _| {
            runs += 1;
            b.iter(|| black_box(2 + 2))
        });
        group.finish();
        assert!(runs > 3, "warm-up plus samples should invoke the routine repeatedly");
    }

    #[test]
    fn json_sidecar_appends_one_line_per_bench() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("DSQ_BENCH_JSON", &path);
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(2),
            measurement_time: Duration::from_millis(6),
            filter: None,
        };
        let mut group = c.benchmark_group("sidecar");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        std::env::remove_var("DSQ_BENCH_JSON");
        let contents = std::fs::read_to_string(&path).expect("sidecar file written");
        let _ = std::fs::remove_file(&path);
        // Other tests in this binary run benches on parallel threads and
        // may append their own lines while the env var is set — search
        // for ours instead of assuming it lands first.
        let line = contents
            .lines()
            .find(|l| l.starts_with("{\"bench\":\"sidecar/noop\""))
            .unwrap_or_else(|| panic!("no sidecar/noop line in {contents}"));
        assert_eq!(contents.lines().filter(|l| l.contains("sidecar/noop")).count(), 1);
        for key in ["median_s", "mean_s", "min_s", "max_s", "samples"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("skipped", |b| {
            runs += 1;
            b.iter(|| ())
        });
        group.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
