//! Offline stand-in for the parts of the [`rand`] crate this workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]), the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic for a given seed, which is all the seeded experiments
//! and tests here require. It is **not** the same stream as the real
//! `rand::rngs::StdRng` (ChaCha12), so seeds produce different (but
//! still deterministic) draws; nothing in the workspace depends on the
//! exact upstream stream.
//!
//! [`rand`]: https://crates.io/crates/rand

/// A source of random `u64`s / `u32`s; object-safe core trait.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open / closed intervals.
/// Mirrors upstream's `SampleUniform` so that the single generic
/// [`SampleRange`] impl below preserves upstream's type inference
/// (`Range<{float}>` must pin the output type without annotations).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // Span as u128 handles signed types and full-width u64.
                let mut span = (hi as u128).wrapping_sub(lo as u128)
                    & (u128::MAX >> (128 - <$t>::BITS));
                if inclusive {
                    span += 1;
                }
                // Modulo bias is < span / 2^64 — negligible for the small
                // spans used in tests and workloads.
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as Standard>::sample(rng);
                let value = lo + unit * (hi - lo);
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && value >= hi { lo } else { value }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1], got {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. (The real `rand` uses ChaCha12 here; the
    /// stream differs but determinism and quality hold.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_single(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..8);
            assert!((3..8).contains(&x));
            let y = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&y));
            let z = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&z));
            let w: u8 = rng.gen_range(0..3u8);
            assert!(w < 3);
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut heads = 0u32;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.25) {
                heads += 1;
            }
        }
        assert!((1800..3200).contains(&heads), "p=0.25 of 10k draws gave {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }
}
