//! Offline stand-in for the [`parking_lot`] mutex API used by this
//! workspace, backed by `std::sync::Mutex`. Unlike std, `lock()` does
//! not return a `Result`: poisoning is transparently ignored, matching
//! parking_lot's semantics of never poisoning.
//!
//! [`parking_lot`]: https://crates.io/crates/parking_lot

use std::sync::PoisonError;

/// A mutual-exclusion primitive; `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic while a
    /// previous guard was held does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
