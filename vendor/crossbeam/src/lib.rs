//! Offline stand-in for the parts of [`crossbeam`] this workspace uses:
//! bounded MPSC channels with blocking `send`/`recv`, backed by
//! `std::sync::mpsc::sync_channel`. Semantics match what the runtime
//! crate relies on — `send` blocks when the buffer is full
//! (backpressure), `recv` returns `Err` once all senders are dropped,
//! and `send` returns `Err` once the receiver is dropped.
//!
//! [`crossbeam`]: https://crates.io/crates/crossbeam

/// Multi-producer single-consumer bounded channels.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// The sending half of a bounded channel. Clonable.
    #[derive(Debug)]
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is at capacity.
        /// Returns `Err` if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send: `Err(TrySendError::Full)` when the channel
        /// is at capacity instead of blocking (the admission-control
        /// primitive), `Err(TrySendError::Disconnected)` once the
        /// receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receives the next value, blocking while the channel is empty.
        /// Returns `Err` once the channel is empty and all senders are
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over received values until the channel closes.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates a bounded channel with space for `cap` in-flight values.
    /// `cap = 0` gives a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn fifo_and_close() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_errors_after_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }
}
