//! Offline stand-in for the parts of [`proptest`] this workspace uses:
//! range and tuple strategies, `prop_map` / `prop_flat_map`,
//! [`collection::vec`], the [`proptest!`] test macro, `prop_assert!` /
//! `prop_assert_eq!`, and an env-tunable [`test_runner::Config`]
//! (`ProptestConfig`).
//!
//! Differences from the real crate, by design of the stand-in:
//!
//! * **no shrinking** — a failing case reports its seed and generated
//!   input (via the assertion message) but is not minimized;
//! * generation is driven by the workspace's vendored `rand`
//!   (xoshiro256++), fully deterministic per test name and case index;
//! * `PROPTEST_CASES` in the environment overrides every suite's case
//!   count — CI sets it low to bound wall-clock time, local runs can
//!   raise it for more exhaustive sweeps.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Value`.
    ///
    /// The stand-in keeps only the generation half of proptest's
    /// `Strategy` (no value trees, no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every generated value with `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }

        /// Generates a value, then generates from the strategy `flat`
        /// builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, flat: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, flat }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        flat: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.flat)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Creates a [`VecStrategy`]. `size` is any strategy yielding a
    /// length — in particular a `usize` range such as `0..8` or `n..=n`.
    pub fn vec<S: Strategy, R: Strategy<Value = usize>>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: Strategy<Value = usize>> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case configuration and error plumbing used by [`proptest!`].
    //!
    //! [`proptest!`]: crate::proptest

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Suite configuration; `ProptestConfig` in the prelude.
    ///
    /// Field defaults mirror the upstream crate's names so checked-in
    /// `ProptestConfig { cases: …, ..ProptestConfig::default() }`
    /// expressions work unchanged.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Config {
        /// Number of cases to run per property (before the
        /// `PROPTEST_CASES` environment override).
        pub cases: u32,
        /// Accepted for compatibility; the stand-in never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; failures are never persisted.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 0, max_global_rejects: 65_536 }
        }
    }

    impl Config {
        /// The case count actually run: `PROPTEST_CASES` from the
        /// environment when set (letting CI cap the suite and local
        /// runs expand it), else the configured `cases`.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got `{v}`")),
                Err(_) => self.cases,
            }
        }

        /// Deterministic generator for one (test, case) pair.
        pub fn rng_for(test_name: &str, case: u32) -> StdRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            StdRng::seed_from_u64(h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        // Bound to a bool first so lints see a boolean negation, not a
        // negated float comparison, whatever expression the caller wrote.
        let prop_assert_condition: bool = $cond;
        if !prop_assert_condition {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the enclosing property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests. Supports the upstream form used in this
/// workspace: an optional `#![proptest_config(…)]` header followed by
/// `#[test] fn name(pat in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let cases = config.resolved_cases();
            for case in 0..cases {
                let mut rng =
                    $crate::test_runner::Config::rng_for(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest `{}` failed at case {case} of {cases}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::Config;

    #[test]
    fn ranges_and_combinators_generate_in_bounds() {
        let strat = (2usize..=5).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n..=n).prop_map(move |v| (n, v))
        });
        let mut rng = Config::rng_for("shim", 0);
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!((2..=5).contains(&n));
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn env_var_caps_case_count() {
        // Serialized with nothing: other tests in this binary tolerate a
        // briefly lowered case count, and the var is restored immediately.
        std::env::set_var("PROPTEST_CASES", "7");
        let config = Config { cases: 64, ..Config::default() };
        assert_eq!(config.resolved_cases(), 7);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(config.resolved_cases(), 64);
    }

    #[test]
    fn per_case_rngs_are_deterministic_and_distinct() {
        use crate::strategy::Strategy;
        let s = 0u64..u64::MAX;
        let a = s.generate(&mut Config::rng_for("t", 0));
        let b = s.generate(&mut Config::rng_for("t", 0));
        let c = s.generate(&mut Config::rng_for("t", 1));
        let d = s.generate(&mut Config::rng_for("u", 0));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro wires strategies, multiple args, and prop_asserts.
        #[test]
        fn macro_smoke(n in 1usize..6, x in 0.0f64..10.0, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!((1..6).contains(&n));
            prop_assert!(x < 10.0, "x was {x}");
            prop_assert_eq!((a < 4) && (b < 4), true);
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was only {n}");
            }
        }
        always_fails();
    }
}
