//! Offline stand-in for the slice of [`mio`] this workspace uses: a
//! Linux `epoll` poller with level-triggered fd readiness events and a
//! pipe-based cross-thread [`Waker`], plus the two fd utilities an
//! event loop needs (`fcntl` non-blocking mode, `RLIMIT_NOFILE`
//! raising). The build environment has no registry access, so the
//! workspace vendors this minimal API-compatible implementation; swap
//! it for the real crate by replacing the `path` entry when a registry
//! is available.
//!
//! This is deliberately the **only** crate in the workspace allowed to
//! contain `unsafe`: every raw syscall lives here, behind a safe
//! mio-shaped surface —
//!
//! * [`Poll`] wraps `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//! * [`Events`]/[`Event`] carry readiness (readable / writable /
//!   closed) tagged by the caller's [`Token`],
//! * [`Waker`] wraps a non-blocking self-pipe so worker threads can
//!   interrupt a blocked `poll` (completion hand-back in the server's
//!   reactor),
//! * [`set_nonblocking`] flips `O_NONBLOCK` via `fcntl`, and
//! * [`ensure_nofile_limit`] raises the soft `RLIMIT_NOFILE` toward
//!   the hard cap so one process can actually hold thousands of
//!   registered sockets.
//!
//! Level-triggered semantics (the epoll default) keep the caller's
//! state machine simple: an fd with unread input or unflushed output
//! space shows up on every `poll` until the condition clears, so a
//! handler that processes only part of a readiness cannot lose the
//! rest.
//!
//! [`mio`]: https://crates.io/crates/mio

#![warn(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

mod sys {
    //! The raw syscall declarations and Linux ABI constants. x86_64
    //! (and every other 64-bit Linux ABI this workspace targets)
    //! passes these straight through libc, which is always linked by
    //! std.

    #[allow(non_camel_case_types)]
    pub type c_int = i32;

    /// `struct epoll_event`. Packed on x86_64 (the kernel ABI there
    /// has no padding between `events` and `data`); other 64-bit
    /// targets use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct rlimit` on 64-bit Linux.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;

    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// Checks a `-1`-on-error syscall return, converting failures to the
/// calling thread's `errno` as an [`io::Error`].
fn cvt(result: sys::c_int) -> io::Result<sys::c_int> {
    if result == -1 {
        Err(io::Error::last_os_error())
    } else {
        Ok(result)
    }
}

/// An opaque caller-chosen tag identifying one registered fd; `poll`
/// hands it back on every readiness event for that fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness kinds a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable readiness (`EPOLLIN`, plus peer half-close via
    /// `EPOLLRDHUP` so an event loop sees EOF without a read).
    pub const READABLE: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP);
    /// Writable readiness (`EPOLLOUT`).
    pub const WRITABLE: Interest = Interest(sys::EPOLLOUT);
    /// No maskable readiness: the registration stays alive but delivers
    /// nothing (except the unmaskable `EPOLLERR`/`EPOLLHUP`) — how an
    /// event loop parks a connection it is backpressuring without
    /// level-triggered re-delivery spinning the poll.
    pub const NONE: Interest = Interest(0);

    /// Both kinds at once. Named for parity with `mio::Interest::add`
    /// (the real crate this stands in for); `|` works too.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this interest includes readable readiness.
    pub fn is_readable(self) -> bool {
        self.0 & sys::EPOLLIN != 0
    }

    /// Whether this interest includes writable readiness.
    pub fn is_writable(self) -> bool {
        self.0 & sys::EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event: the registered [`Token`] plus what became
/// ready.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    flags: u32,
}

impl Event {
    /// The token the fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Input is available (or the peer half-closed: a read will
    /// observe EOF rather than block).
    pub fn is_readable(&self) -> bool {
        self.flags & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }

    /// Output space is available.
    pub fn is_writable(&self) -> bool {
        self.flags & sys::EPOLLOUT != 0
    }

    /// The connection errored or hung up; the fd should be torn down
    /// after draining whatever a read still yields.
    pub fn is_closed(&self) -> bool {
        self.flags & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// A reusable buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events").field("capacity", &self.buf.len()).field("len", &self.len).finish()
    }
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)], len: 0 }
    }

    /// The events delivered by the last [`Poll::poll`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy the packed fields out by value (a reference into a
            // packed struct would be unaligned).
            let (events, data) = (raw.events, raw.data);
            Event { token: Token(data as usize), flags: events }
        })
    }

    /// Number of events delivered by the last [`Poll::poll`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last [`Poll::poll`] delivered no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The epoll instance: registered fds with interests, and a blocking
/// `poll` that reports which became ready.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure, as an [`io::Error`].
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: sys::c_int, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut event = sys::EpollEvent { events, data: token.0 as u64 };
        // SAFETY: `event` outlives the call; the kernel copies it.
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` under `token` for `interest`. The fd should be in
    /// non-blocking mode (see [`set_nonblocking`]); events are
    /// level-triggered.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure (e.g. `EEXIST` for a double
    /// registration).
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, interest.0, token)
    }

    /// Changes an existing registration's interest (and/or token).
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure (e.g. `ENOENT` for an unregistered fd).
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, interest.0, token)
    }

    /// Removes `fd`'s registration. Dropping the last duplicate of an
    /// fd deregisters it implicitly, so this is only needed when the
    /// fd stays open.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Token(0))
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// expires (`None` blocks indefinitely), filling `events`. Returns
    /// the number of events delivered; `0` means the timeout elapsed.
    /// `EINTR` is retried internally with the timeout re-armed.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` failure.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let millis: sys::c_int = match timeout {
            None => -1,
            // Round a sub-millisecond timeout up so a caller's short
            // poll interval does not degenerate into a busy spin.
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(sys::c_int::MAX as u128) as sys::c_int
                }
            }
        };
        events.len = 0;
        loop {
            // SAFETY: the buffer is a live allocation of EpollEvents at
            // least `maxevents` long, exclusively borrowed here.
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as sys::c_int,
                    millis,
                )
            };
            match cvt(n) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(events.len);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly
        // once.
        unsafe { sys::close(self.epfd) };
    }
}

/// A cross-thread wakeup handle: a non-blocking self-pipe whose read
/// end is registered with a [`Poll`]. Any thread may call
/// [`wake`](Self::wake); the poller observes a readable event on the
/// waker's token and calls [`drain`](Self::drain) to reset it.
/// Multiple wakes between polls coalesce (the pipe holds at most a few
/// bytes; a full pipe already means a wakeup is pending).
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY: both fds are plain integers used with thread-safe syscalls;
// `write` on a pipe is atomic for single bytes and `read` is only
// issued by the polling thread.
#[allow(unsafe_code)]
unsafe impl Send for Waker {}
#[allow(unsafe_code)]
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the pipe and registers its read end with `poll` under
    /// `token`.
    ///
    /// # Errors
    ///
    /// The `pipe2` or registration failure.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let mut fds = [0 as RawFd; 2];
        // SAFETY: `fds` is a live 2-element array for pipe2 to fill.
        cvt(unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) })?;
        let waker = Waker { read_fd: fds[0], write_fd: fds[1] };
        poll.register(waker.read_fd, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Interrupts the poller. Never blocks: a full pipe (`EAGAIN`)
    /// means a wakeup is already pending, which is success.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one live byte; short or failed writes are fine (see
        // above).
        unsafe { sys::write(self.write_fd, &byte, 1) };
    }

    /// Drains pending wakeup bytes after the poller observed this
    /// waker's token. Returns whether any wakeup was pending.
    pub fn drain(&self) -> bool {
        let mut sink = [0u8; 64];
        let mut any = false;
        loop {
            // SAFETY: reads into a live stack buffer of the given size.
            let n = unsafe { sys::read(self.read_fd, sink.as_mut_ptr(), sink.len()) };
            if n > 0 {
                any = true;
                if (n as usize) == sink.len() {
                    continue;
                }
            }
            return any;
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this struct and closed exactly
        // once.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// Switches `fd` in or out of non-blocking mode (`fcntl` +
/// `O_NONBLOCK`).
///
/// # Errors
///
/// The `fcntl` failure.
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: plain fcntl calls on a caller-provided fd.
    let flags = cvt(unsafe { sys::fcntl(fd, sys::F_GETFL, 0) })?;
    let flags = if nonblocking { flags | sys::O_NONBLOCK } else { flags & !sys::O_NONBLOCK };
    cvt(unsafe { sys::fcntl(fd, sys::F_SETFL, flags) })?;
    Ok(())
}

/// Raises the soft `RLIMIT_NOFILE` toward the hard cap until at least
/// `min` fds are available (no-op when it already is). Returns the
/// resulting soft limit — which can be below `min` when the hard cap
/// is: callers asserting thousand-connection behavior should check.
///
/// # Errors
///
/// The `getrlimit`/`setrlimit` failure.
pub fn ensure_nofile_limit(min: u64) -> io::Result<u64> {
    let mut limit = sys::RLimit { cur: 0, max: 0 };
    // SAFETY: `limit` is a live struct for the kernel to fill / read.
    cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut limit) })?;
    if limit.cur >= min {
        return Ok(limit.cur);
    }
    limit.cur = min.min(limit.max);
    cvt(unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &limit) })?;
    Ok(limit.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_expires_with_no_events() {
        let poll = Poll::new().expect("epoll");
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        let n = poll.poll(&mut events, Some(Duration::from_millis(20))).expect("poll");
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15), "timeout must actually wait");
    }

    #[test]
    fn readable_event_carries_the_token_and_level_triggers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let poll = Poll::new().expect("epoll");
        poll.register(server.as_raw_fd(), Token(7), Interest::READABLE).expect("register");
        let mut events = Events::with_capacity(8);

        client.write_all(b"hello").expect("write");
        let n = poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert_eq!(n, 1);
        let event = events.iter().next().expect("one event");
        assert_eq!(event.token(), Token(7));
        assert!(event.is_readable());
        assert!(!event.is_closed());

        // Level-triggered: unread input re-reports on the next poll.
        poll.poll(&mut events, Some(Duration::from_secs(5))).expect("re-poll");
        assert_eq!(events.len(), 1, "unconsumed input must re-trigger");

        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).expect("read"), 5);
        let n = poll.poll(&mut events, Some(Duration::from_millis(20))).expect("drained poll");
        assert_eq!(n, 0, "consumed input must stop triggering");
    }

    #[test]
    fn peer_close_reports_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let poll = Poll::new().expect("epoll");
        poll.register(server.as_raw_fd(), Token(1), Interest::READABLE).expect("register");
        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        let event = events.iter().next().expect("close event");
        assert!(event.is_closed());
        assert!(event.is_readable(), "a close is observable as an EOF read");
        drop(server);
    }

    #[test]
    fn writable_interest_and_reregister() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let poll = Poll::new().expect("epoll");
        // Readable-only on an idle socket: no events.
        poll.register(server.as_raw_fd(), Token(2), Interest::READABLE).expect("register");
        let mut events = Events::with_capacity(8);
        assert_eq!(poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll"), 0);
        // Adding writable interest on an empty send buffer triggers.
        poll.reregister(server.as_raw_fd(), Token(3), Interest::READABLE | Interest::WRITABLE)
            .expect("reregister");
        poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        let event = events.iter().next().expect("writable event");
        assert_eq!(event.token(), Token(3), "reregister must retag");
        assert!(event.is_writable());
        // Deregister: silence again.
        poll.deregister(server.as_raw_fd()).expect("deregister");
        assert_eq!(poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll"), 0);
        drop(client);
    }

    #[test]
    fn waker_interrupts_a_blocked_poll_from_another_thread() {
        let poll = Poll::new().expect("epoll");
        let waker = std::sync::Arc::new(Waker::new(&poll, Token(99)).expect("waker"));
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // coalesces
        });
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(10))).expect("poll");
        assert!(start.elapsed() < Duration::from_secs(5), "woken, not timed out");
        let event = events.iter().next().expect("waker event");
        assert_eq!(event.token(), Token(99));
        // Join before draining: the second wake() may land after the
        // first one already unblocked the poll, and a drain that runs
        // between the two writes would leave a byte behind.
        handle.join().expect("waker thread");
        assert!(waker.drain(), "a wakeup was pending");
        // Drained: the next poll times out quietly.
        assert_eq!(poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll"), 0);
        assert!(!waker.drain(), "nothing pending after the drain");
    }

    #[test]
    fn a_thousand_registrations_fit_one_poll() {
        ensure_nofile_limit(4096).expect("rlimit");
        let poll = Poll::new().expect("epoll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let mut pairs = Vec::new();
        for i in 0..1000 {
            let client = TcpStream::connect(addr).expect("connect");
            let server = loop {
                match listener.accept() {
                    Ok((s, _)) => break s,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
                    Err(e) => panic!("accept: {e}"),
                }
            };
            poll.register(server.as_raw_fd(), Token(i), Interest::READABLE).expect("register");
            pairs.push((client, server));
        }
        // All idle: no events.
        let mut events = Events::with_capacity(32);
        assert_eq!(poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll"), 0);
        // One write anywhere surfaces exactly that token.
        pairs[617].0.write_all(b"x").expect("write");
        poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![Token(617)]);
    }

    #[test]
    fn none_interest_parks_a_ready_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let poll = Poll::new().expect("epoll");
        poll.register(server.as_raw_fd(), Token(4), Interest::READABLE).expect("register");
        client.write_all(b"pending").expect("write");
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert_eq!(events.len(), 1);
        // Parking with NONE silences the (still unread) input...
        poll.reregister(server.as_raw_fd(), Token(4), Interest::NONE).expect("park");
        assert_eq!(poll.poll(&mut events, Some(Duration::from_millis(20))).expect("poll"), 0);
        // ...and unparking re-delivers it, level-triggered.
        poll.reregister(server.as_raw_fd(), Token(4), Interest::READABLE).expect("unpark");
        poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
        assert_eq!(events.len(), 1);
        drop(client);
    }

    #[test]
    fn set_nonblocking_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        set_nonblocking(server.as_raw_fd(), true).expect("nonblocking on");
        let mut buf = [0u8; 4];
        let err = server.read(&mut buf).expect_err("no data: WouldBlock");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        set_nonblocking(server.as_raw_fd(), false).expect("nonblocking off");
        drop(client);
        // Blocking mode on a closed peer: clean EOF, not WouldBlock.
        assert_eq!(server.read(&mut buf).expect("EOF"), 0);
    }

    #[test]
    fn nofile_limit_is_monotone() {
        let current = ensure_nofile_limit(0).expect("query");
        assert!(current > 0);
        let raised = ensure_nofile_limit(current).expect("no-op raise");
        assert!(raised >= current);
    }
}
