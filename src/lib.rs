//! Optimal service ordering in decentralized pipelined queries — a full
//! reproduction of Tsamoura, Gounaris & Manolopoulos, *Brief
//! Announcement: On the Quest of Optimal Service Ordering in Decentralized
//! Queries*, PODC 2010.
//!
//! This facade crate re-exports the whole workspace under one name for
//! the repository's examples and integration tests; applications can
//! equally depend on the individual crates:
//!
//! * [`core`] (`dsq-core`) — the model, the bottleneck cost metric
//!   (Eq. 1) and the paper's branch-and-bound optimizer;
//! * [`baselines`] (`dsq-baselines`) — exact and heuristic comparators,
//!   including the uniform-communication optimum of Srivastava et al.;
//! * [`netsim`] (`dsq-netsim`) — topology models producing heterogeneous
//!   transfer matrices;
//! * [`workloads`] (`dsq-workloads`) — seeded instance families, the
//!   credit-screening scenario, precedence generators, sweeps;
//! * [`simulator`] (`dsq-simulator`) — discrete-event pipelined
//!   execution;
//! * [`runtime`] (`dsq-runtime`) — threaded in-process execution;
//! * [`service`] (`dsq-service`) — the serving layer: sharded plan cache
//!   and batched optimization front-end.
//!
//! # Quickstart
//!
//! ```
//! use service_ordering::core::{optimize, bottleneck_cost};
//! use service_ordering::workloads::credit_pipeline;
//!
//! let instance = credit_pipeline();
//! let result = optimize(&instance);
//! assert!(result.is_proven_optimal());
//! assert_eq!(result.cost(), bottleneck_cost(&instance, result.plan()));
//! ```

#![warn(missing_docs)]

pub use dsq_baselines as baselines;
pub use dsq_core as core;
pub use dsq_netsim as netsim;
pub use dsq_runtime as runtime;
pub use dsq_service as service;
pub use dsq_simulator as simulator;
pub use dsq_workloads as workloads;
