//! An open-loop load generator for the serving daemon: the soak-test
//! counterpart to the one-shot `dsq client` driver.
//!
//! A closed-loop driver (send, wait, send again) hides queueing: when
//! the server slows down, the driver slows its own arrivals and the
//! measured latencies flatter the tail — the classic *coordinated
//! omission* trap. This generator is **open-loop**: each request class
//! draws a Poisson arrival schedule up front (exponential inter-arrival
//! gaps at the configured rate) and every request's latency is measured
//! from its *scheduled* arrival time, so time a request spent waiting
//! behind a stalled connection is charged to the server, not silently
//! dropped.
//!
//! Three request classes model the serving workloads the cache design
//! targets, each on its own connection and schedule:
//!
//! * [`RequestClass::Drift`] — repeated queries whose statistics follow
//!   a mean-reverting walk ([`dsq_workloads::DriftStream`]): the
//!   cache-friendly steady state.
//! * [`RequestClass::Boundary`] — the adversarial boundary-walk stream
//!   (a parameter oscillating across a quantization bucket edge), which
//!   defeats single-probe caching and exercises the two-probe path.
//! * [`RequestClass::Pipelined`] — the drift stream sent as coalesced
//!   pipeline bursts, exercising the reactor's in-order completion and
//!   write-coalescing machinery.
//!
//! Latencies land in per-class [`dsq_telemetry::Histogram`]s; the
//! [`LoadgenReport`] carries p50/p99/p999 plus the serve-source
//! breakdown (hit / warm / cold / busy / error) and renders both a
//! human summary and a `dsq-loadgen/v1` JSON document that
//! `scripts/bench_snapshot.sh` folds into the perf trajectory.

use crate::client::Client;
use crate::net::ListenAddr;
use crate::protocol::Response;
use dsq_service::ServeSource;
use dsq_telemetry::Histogram;
use dsq_workloads::{DriftConfig, DriftStream, Family};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

/// A traffic class the generator can drive; see the module docs for
/// what each one models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Mean-reverting drifting statistics (cache-friendly).
    Drift,
    /// Boundary-walking parameter (cache-adversarial).
    Boundary,
    /// Drifting statistics sent as pipeline bursts.
    Pipelined,
}

impl RequestClass {
    /// All classes, in report order.
    pub const ALL: [RequestClass; 3] =
        [RequestClass::Drift, RequestClass::Boundary, RequestClass::Pipelined];

    /// The class's wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Drift => "drift",
            RequestClass::Boundary => "boundary",
            RequestClass::Pipelined => "pipelined",
        }
    }

    /// Parses a CLI token (the inverse of [`name`](Self::name)).
    pub fn parse(token: &str) -> Option<RequestClass> {
        RequestClass::ALL.iter().copied().find(|class| class.name() == token)
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of a load-generation run. Passive struct; fields are
/// public.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Mean arrival rate **per class**, requests per second.
    pub rate: f64,
    /// Requests each class sends.
    pub requests: usize,
    /// Services per generated instance.
    pub n: usize,
    /// Seed for the schedules and instance streams (runs are
    /// deterministic in it up to server timing).
    pub seed: u64,
    /// Classes to drive, each on its own connection and schedule.
    pub classes: Vec<RequestClass>,
    /// Burst size for [`RequestClass::Pipelined`].
    pub pipeline_depth: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            rate: 500.0,
            requests: 1_000,
            n: 7,
            seed: 42,
            classes: RequestClass::ALL.to_vec(),
            pipeline_depth: 8,
        }
    }
}

/// Per-class outcome of a run: latency quantiles (nanoseconds, measured
/// from the scheduled arrival) and the response breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// Which class this row describes.
    pub class: RequestClass,
    /// Requests actually sent.
    pub sent: u64,
    /// `ok source hit` / `ok source probe2` replies.
    pub hits: u64,
    /// `ok source warm` replies.
    pub warm: u64,
    /// `ok source cold` replies (cache misses).
    pub cold: u64,
    /// `busy retry-after-ms` replies (counted, not retried: the
    /// schedule is open-loop).
    pub busy: u64,
    /// `error` replies.
    pub errors: u64,
    /// Replies that desynchronized the protocol (unexpected variant for
    /// an optimize request). Anything above zero is a server bug.
    pub protocol_errors: u64,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_ns: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: u64,
    /// Worst observed latency, nanoseconds.
    pub max_ns: u64,
}

impl ClassReport {
    fn from_histogram(class: RequestClass, latency: &Histogram, tally: Tally) -> ClassReport {
        ClassReport {
            class,
            sent: tally.sent,
            hits: tally.hits,
            warm: tally.warm,
            cold: tally.cold,
            busy: tally.busy,
            errors: tally.errors,
            protocol_errors: tally.protocol_errors,
            p50_ns: latency.quantile(0.50),
            p99_ns: latency.quantile(0.99),
            p999_ns: latency.quantile(0.999),
            mean_ns: latency.mean().round() as u64,
            max_ns: latency.max(),
        }
    }

    /// One human-readable summary line.
    fn summary_line(&self) -> String {
        format!(
            "{}: {} sent, p50 {} p99 {} p999 {} (hit {} warm {} cold {} busy {} error {} protocol-error {})",
            self.class,
            self.sent,
            format_ns(self.p50_ns),
            format_ns(self.p99_ns),
            format_ns(self.p999_ns),
            self.hits,
            self.warm,
            self.cold,
            self.busy,
            self.errors,
            self.protocol_errors,
        )
    }

    fn json_object(&self) -> String {
        format!(
            concat!(
                "{{\"class\": \"{}\", \"sent\": {}, \"hits\": {}, \"warm\": {}, ",
                "\"cold\": {}, \"busy\": {}, \"errors\": {}, \"protocol_errors\": {}, ",
                "\"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}"
            ),
            self.class,
            self.sent,
            self.hits,
            self.warm,
            self.cold,
            self.busy,
            self.errors,
            self.protocol_errors,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.mean_ns,
            self.max_ns,
        )
    }
}

/// The outcome of a [`LoadgenConfig::run`]: one [`ClassReport`] per
/// driven class, in [`LoadgenConfig::classes`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Per-class results.
    pub classes: Vec<ClassReport>,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
    /// The configured per-class arrival rate (for provenance).
    pub rate: f64,
}

impl LoadgenReport {
    /// Requests sent across every class.
    pub fn total_sent(&self) -> u64 {
        self.classes.iter().map(|c| c.sent).sum()
    }

    /// Protocol desyncs across every class (must be zero on a healthy
    /// server; the smoke harness asserts it).
    pub fn total_protocol_errors(&self) -> u64 {
        self.classes.iter().map(|c| c.protocol_errors).sum()
    }

    /// The human-readable multi-line summary the CLI prints.
    pub fn summary(&self) -> String {
        let mut lines: Vec<String> = self.classes.iter().map(ClassReport::summary_line).collect();
        lines.push(format!(
            "total: {} requests in {:.2}s ({} protocol errors)",
            self.total_sent(),
            self.elapsed.as_secs_f64(),
            self.total_protocol_errors(),
        ));
        lines.join("\n")
    }

    /// The machine-readable `dsq-loadgen/v1` document (one JSON object,
    /// pretty enough to diff).
    pub fn to_json(&self) -> String {
        let classes: Vec<String> =
            self.classes.iter().map(|c| format!("    {}", c.json_object())).collect();
        format!(
            "{{\n  \"schema\": \"dsq-loadgen/v1\",\n  \"rate_per_class\": {},\n  \"elapsed_ms\": {},\n  \"classes\": [\n{}\n  ]\n}}",
            self.rate,
            self.elapsed.as_millis(),
            classes.join(",\n"),
        )
    }
}

/// Running response-breakdown counts for one class.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    sent: u64,
    hits: u64,
    warm: u64,
    cold: u64,
    busy: u64,
    errors: u64,
    protocol_errors: u64,
}

impl Tally {
    fn observe(&mut self, response: &Response) {
        match response {
            Response::Served { source, .. } => match source {
                ServeSource::CacheHit => self.hits += 1,
                ServeSource::WarmStart => self.warm += 1,
                ServeSource::Cold => self.cold += 1,
            },
            Response::Busy { .. } => self.busy += 1,
            Response::Error { .. } => self.errors += 1,
            _ => self.protocol_errors += 1,
        }
    }
}

impl LoadgenConfig {
    /// Drives the configured classes against the server at `addr`
    /// concurrently (one thread, connection, and Poisson schedule per
    /// class) and collects the per-class report.
    ///
    /// # Errors
    ///
    /// Connection-level I/O failures (connect, write, read): the
    /// generator measures a *healthy* transport, so a torn connection
    /// aborts the run rather than skewing the tail. Protocol-level
    /// anomalies are **counted**, not returned.
    pub fn run(&self, addr: &ListenAddr) -> io::Result<LoadgenReport> {
        assert!(self.rate.is_finite() && self.rate > 0.0, "loadgen rate must be positive");
        assert!(self.pipeline_depth > 0, "pipeline depth must be at least 1");
        let started = Instant::now();
        let mut results: Vec<(usize, io::Result<ClassReport>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .classes
                .iter()
                .enumerate()
                .map(|(k, &class)| scope.spawn(move || (k, self.run_class(addr, class, k as u64))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("loadgen class thread panicked")).collect()
        });
        results.sort_by_key(|(k, _)| *k);
        let classes =
            results.into_iter().map(|(_, r)| r).collect::<io::Result<Vec<ClassReport>>>()?;
        Ok(LoadgenReport { classes, elapsed: started.elapsed(), rate: self.rate })
    }

    /// Drives one class to completion on its own connection.
    fn run_class(
        &self,
        addr: &ListenAddr,
        class: RequestClass,
        class_index: u64,
    ) -> io::Result<ClassReport> {
        let seed = self.seed ^ class_index.rotate_left(29);
        let schedule = poisson_schedule(self.requests, self.rate, seed);
        let stream = self.instance_stream(class, seed);
        let mut client = Client::connect(addr)?;
        let latency = Histogram::new();
        let mut tally = Tally::default();
        let epoch = Instant::now();
        match class {
            RequestClass::Drift | RequestClass::Boundary => {
                for (instance, offset) in stream.zip(schedule) {
                    let scheduled = epoch + offset;
                    sleep_until(scheduled);
                    let response = client.optimize(&instance)?;
                    tally.sent += 1;
                    tally.observe(&response);
                    latency.record_duration(scheduled.elapsed());
                }
            }
            RequestClass::Pipelined => {
                // Bursts of `pipeline_depth` coalesced into one frame;
                // the burst goes out at its *first* member's scheduled
                // arrival and every member's latency is measured from
                // its own slot in the schedule, so queueing inside the
                // burst is charged like any other queueing.
                let instances: Vec<_> = stream.collect();
                let offsets: Vec<_> = schedule.collect();
                for (burst, burst_offsets) in
                    instances.chunks(self.pipeline_depth).zip(offsets.chunks(self.pipeline_depth))
                {
                    let scheduled = epoch + burst_offsets[0];
                    sleep_until(scheduled);
                    let responses = client.optimize_pipelined(burst)?;
                    let done = Instant::now();
                    for (j, response) in responses.iter().enumerate() {
                        tally.sent += 1;
                        tally.observe(response);
                        let from = epoch + burst_offsets[j.min(burst_offsets.len() - 1)];
                        latency.record_duration(done.saturating_duration_since(from));
                    }
                }
            }
        }
        Ok(ClassReport::from_histogram(class, &latency, tally))
    }

    /// The instance stream backing `class`.
    fn instance_stream(&self, class: RequestClass, seed: u64) -> DriftStream {
        let config = match class {
            RequestClass::Drift | RequestClass::Pipelined => {
                DriftConfig::new(Family::Clustered, self.n, seed, self.requests)
            }
            // Resolution matches the server cache's default
            // quantization, so the walk actually straddles its grid.
            RequestClass::Boundary => {
                DriftConfig::boundary_walk(Family::Clustered, self.n, seed, self.requests, 0.05)
            }
        };
        DriftStream::new(config)
    }
}

/// Cumulative Poisson arrival offsets: `requests` exponential
/// inter-arrival gaps at `rate` per second, deterministic in `seed`.
fn poisson_schedule(requests: usize, rate: f64, seed: u64) -> impl Iterator<Item = Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    (0..requests).map(move |_| {
        // Inverse-CDF sampling; 1-u keeps ln away from zero.
        let u: f64 = rng.gen();
        at += -(1.0 - u).ln() / rate;
        Duration::from_secs_f64(at)
    })
}

/// Sleeps until `deadline` (no-op when already past it — the open-loop
/// schedule never waits for a late request, it just charges the delay).
fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if let Some(wait) = deadline.checked_duration_since(now).filter(|w| !w.is_zero()) {
        std::thread::sleep(wait);
    }
}

/// Nanoseconds to a compact human unit for the summary line.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn class_names_round_trip() {
        for class in RequestClass::ALL {
            assert_eq!(RequestClass::parse(class.name()), Some(class));
        }
        assert_eq!(RequestClass::parse("bogus"), None);
    }

    #[test]
    fn poisson_schedule_is_monotonic_and_near_rate() {
        let offsets: Vec<Duration> = poisson_schedule(2_000, 1_000.0, 7).collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets grow monotonically");
        // Mean inter-arrival of 2000 draws at 1000/s is 1ms ± a wide
        // tolerance (the variance of an exponential is its mean²).
        let span = offsets.last().unwrap().as_secs_f64();
        assert!((1.4..=2.6).contains(&span), "2000 arrivals at 1000/s span ~2s, got {span:.3}s");
        // Deterministic in the seed.
        let again: Vec<Duration> = poisson_schedule(2_000, 1_000.0, 7).collect();
        assert_eq!(offsets, again);
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(950), "950ns");
        assert_eq!(format_ns(8_500), "8us");
        assert_eq!(format_ns(2_500_000), "2.5ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn report_renders_summary_and_versioned_json() {
        let report = LoadgenReport {
            classes: vec![ClassReport {
                class: RequestClass::Drift,
                sent: 10,
                hits: 6,
                warm: 1,
                cold: 2,
                busy: 1,
                errors: 0,
                protocol_errors: 0,
                p50_ns: 1_000,
                p99_ns: 9_000,
                p999_ns: 20_000,
                mean_ns: 2_000,
                max_ns: 25_000,
            }],
            elapsed: Duration::from_millis(1_500),
            rate: 100.0,
        };
        let summary = report.summary();
        assert!(summary.contains("drift: 10 sent, p50 1us p99 9us p999 20us"), "{summary}");
        assert!(summary.contains("hit 6 warm 1 cold 2 busy 1 error 0"), "{summary}");
        assert!(summary.contains("total: 10 requests"), "{summary}");
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"dsq-loadgen/v1\""), "{json}");
        assert!(json.contains("\"class\": \"drift\""), "{json}");
        assert!(json.contains("\"p999_ns\": 20000"), "{json}");
        assert_eq!(report.total_sent(), 10);
        assert_eq!(report.total_protocol_errors(), 0);
    }

    /// A short end-to-end run against a real in-process server: every
    /// request is answered, the breakdown adds up, and no class ever
    /// desynchronizes the protocol.
    #[test]
    fn short_open_loop_run_accounts_for_every_request() {
        let workers = std::num::NonZeroUsize::new(2).unwrap();
        let server = Server::start(
            &ListenAddr::Tcp("127.0.0.1:0".into()),
            &ServerConfig { workers, ..ServerConfig::default() },
        )
        .expect("server starts");
        let config = LoadgenConfig {
            rate: 2_000.0,
            requests: 60,
            n: 5,
            seed: 9,
            classes: RequestClass::ALL.to_vec(),
            pipeline_depth: 4,
        };
        let report = config.run(server.listen_addr()).expect("run completes");
        assert_eq!(report.classes.len(), 3, "one report per class, in order");
        for (expected, got) in RequestClass::ALL.iter().zip(&report.classes) {
            assert_eq!(*expected, got.class);
            assert_eq!(got.sent, 60, "{}: every request sent", got.class);
            assert_eq!(
                got.hits + got.warm + got.cold + got.busy + got.errors,
                got.sent,
                "{}: breakdown adds up",
                got.class
            );
            assert_eq!(got.protocol_errors, 0, "{}: no desyncs", got.class);
            assert!(got.p50_ns > 0, "{}: latencies were recorded", got.class);
            assert!(got.p50_ns <= got.p99_ns && got.p99_ns <= got.p999_ns);
        }
        server.shutdown();
    }
}
