//! The tiny transport abstraction: one listener / stream pair covering
//! TCP and Unix-domain sockets, so the rest of the crate is
//! transport-agnostic. `std::net` / `std::os::unix::net` only — the
//! daemon deliberately has no async runtime dependency.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP address like `127.0.0.1:7878` (port `0` picks a free port;
    /// see [`Server::listen_addr`](crate::Server::listen_addr) for the
    /// resolved one).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound, non-blocking listener over either transport.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `addr` and switches the listener to non-blocking accepts
    /// (the accept loop polls so it can observe the shutdown flag).
    ///
    /// A Unix path that is already bound by a **dead** server (connect
    /// refused) is unlinked and rebound; a live one is reported as
    /// "address in use".
    pub(crate) fn bind(addr: &ListenAddr) -> io::Result<Listener> {
        match addr {
            ListenAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            ListenAddr::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!("{} is in use by a live server", path.display()),
                            ));
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
        }
    }

    /// One non-blocking accept attempt; `Ok(None)` when no client is
    /// waiting.
    pub(crate) fn try_accept(&self) -> io::Result<Option<Stream>> {
        let stream = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(Stream::Tcp(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Some(Stream::Unix(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        // Accepted sockets must block (with a read timeout) even though
        // the listener does not; inheritance differs across platforms,
        // so set it explicitly.
        if let Some(s) = &stream {
            s.set_nonblocking(false)?;
        }
        Ok(stream)
    }

    /// The resolved local address (TCP port `0` becomes the real port).
    pub(crate) fn local_addr(&self) -> io::Result<ListenAddr> {
        match self {
            Listener::Tcp(l) => Ok(ListenAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, path) => Ok(ListenAddr::Unix(path.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn connect(addr: &ListenAddr) -> io::Result<Stream> {
        match addr {
            ListenAddr::Tcp(spec) => {
                let addrs: Vec<SocketAddr> =
                    std::net::ToSocketAddrs::to_socket_addrs(spec)?.collect();
                TcpStream::connect(&addrs[..]).map(Stream::Tcp)
            }
            ListenAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    pub(crate) fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            Stream::Unix(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}
