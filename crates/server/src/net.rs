//! The tiny transport abstraction: one listener / stream pair covering
//! TCP and Unix-domain sockets, so the rest of the crate is
//! transport-agnostic. `std::net` / `std::os::unix::net` only — the
//! daemon deliberately has no async runtime dependency.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP address like `127.0.0.1:7878` (port `0` picks a free port;
    /// see [`Server::listen_addr`](crate::Server::listen_addr) for the
    /// resolved one).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound, non-blocking listener over either transport.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `addr` and switches the listener to non-blocking accepts
    /// (the accept loop polls so it can observe the shutdown flag).
    ///
    /// A Unix path that is already bound by a **dead** server (connect
    /// refused) is unlinked and rebound; a live one is reported as
    /// "address in use".
    pub(crate) fn bind(addr: &ListenAddr) -> io::Result<Listener> {
        match addr {
            ListenAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            ListenAddr::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!("{} is in use by a live server", path.display()),
                            ));
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
        }
    }

    /// One non-blocking accept attempt; `Ok(None)` when no client is
    /// waiting.
    pub(crate) fn try_accept(&self) -> io::Result<Option<Stream>> {
        let stream = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(Stream::Tcp(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Some(Stream::Unix(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        // Accepted sockets are owned by the reactor's event loop and
        // must never block it; inheritance of the non-blocking flag
        // differs across platforms, so set it explicitly. Nagle must be
        // off: a pipelining client writes a batch and then only reads,
        // so its delayed ACKs would otherwise gate every small response
        // write behind a ~40 ms timer.
        if let Some(s) = &stream {
            s.set_nonblocking(true)?;
            s.set_nodelay()?;
        }
        Ok(stream)
    }

    /// The raw fd, for registration with the reactor's poller.
    pub(crate) fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }

    /// The resolved local address (TCP port `0` becomes the real port).
    pub(crate) fn local_addr(&self) -> io::Result<ListenAddr> {
        match self {
            Listener::Tcp(l) => Ok(ListenAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, path) => Ok(ListenAddr::Unix(path.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn connect(addr: &ListenAddr) -> io::Result<Stream> {
        let stream = match addr {
            ListenAddr::Tcp(spec) => {
                let addrs: Vec<SocketAddr> =
                    std::net::ToSocketAddrs::to_socket_addrs(spec)?.collect();
                TcpStream::connect(&addrs[..]).map(Stream::Tcp)?
            }
            ListenAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix)?,
        };
        // Mirror the server side: a pipelined batch is one small-ish
        // write that must not sit in Nagle's buffer waiting for the ACK
        // of a previous request's frame.
        stream.set_nodelay()?;
        Ok(stream)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Disables Nagle on TCP; a no-op for Unix sockets.
    fn set_nodelay(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nodelay(true),
            Stream::Unix(_) => Ok(()),
        }
    }

    /// The raw fd, for registration with the reactor's poller.
    pub(crate) fn raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Stream {
    /// Half-closes the write side so the peer sees EOF immediately (used
    /// by the chaos wrapper to make a "dropped" frame observable without
    /// waiting for the connection handler to unwind).
    pub(crate) fn shutdown_write(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A deterministic fault-injection profile for chaos testing: how often
/// the wrapped connection drops, delays, or truncates **outgoing**
/// frames. Faults are applied on the egress (response) path only —
/// inbound request bytes are never corrupted, so a chaotic server
/// exercises every client-side failure path (mid-response disconnects,
/// truncated lines, stalls) while its own request parser, and therefore
/// its `protocol errors` counter, stays clean. That separation is what
/// lets chaos smoke tests assert *zero* protocol errors under heavy
/// fault rates.
///
/// All rates are `1/N` odds per write; `0` disables that fault. The
/// schedule is a pure function of `seed` and the per-connection index,
/// so a chaos run replays identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// Base seed; each connection derives its own stream from this and
    /// its accept index.
    pub seed: u64,
    /// Drop odds: one in `drop_one_in` writes closes the connection
    /// instead of sending the frame (`0` = never).
    pub drop_one_in: u32,
    /// Delay odds: one in `delay_one_in` writes sleeps
    /// [`delay_ms`](Self::delay_ms) first (`0` = never).
    pub delay_one_in: u32,
    /// How long a delayed write stalls, in milliseconds.
    pub delay_ms: u64,
    /// Truncation odds: one in `truncate_one_in` writes sends only half
    /// the frame and then closes (`0` = never).
    pub truncate_one_in: u32,
}

impl FaultProfile {
    /// A moderate default chaos mix for smoke tests: with the given
    /// seed, roughly 1 in 16 frames dropped, 1 in 8 delayed by 2 ms,
    /// and 1 in 24 truncated.
    pub fn moderate(seed: u64) -> Self {
        FaultProfile { seed, drop_one_in: 16, delay_one_in: 8, delay_ms: 2, truncate_one_in: 24 }
    }

    /// The profile for one accepted connection: same fault odds, a
    /// connection-specific deterministic sub-seed.
    pub(crate) fn for_connection(&self, index: u64) -> Self {
        FaultProfile { seed: splitmix64(self.seed ^ splitmix64(index)), ..*self }
    }
}

/// `splitmix64` step — the chaos schedule's deterministic dice. Kept
/// local so the daemon stays free of RNG dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A [`Stream`] wrapper that injects the faults described by a
/// [`FaultProfile`] into the write path. Reads pass through untouched.
/// Once a fault kills the connection, every later write fails with
/// `BrokenPipe` — exactly how a genuinely dead socket behaves.
#[derive(Debug)]
pub(crate) struct FaultyStream {
    inner: Stream,
    profile: Option<FaultProfile>,
    state: u64,
    dead: bool,
}

impl FaultyStream {
    /// Wraps `inner`; with `profile: None` the wrapper is a pure
    /// passthrough (the non-chaos serving path).
    pub(crate) fn new(inner: Stream, profile: Option<FaultProfile>) -> Self {
        let state = profile.map_or(0, |p| p.seed);
        FaultyStream { inner, profile, state, dead: false }
    }

    /// The raw fd, for registration with the reactor's poller.
    pub(crate) fn raw_fd(&self) -> RawFd {
        self.inner.raw_fd()
    }

    /// Next deterministic dice roll in `[0, sides)`; `None` for 0 sides.
    fn roll(&mut self, sides: u32) -> Option<u32> {
        if sides == 0 {
            return None;
        }
        self.state = splitmix64(self.state);
        Some((self.state % u64::from(sides)) as u32)
    }

    fn kill(&mut self) -> io::Error {
        self.dead = true;
        self.inner.shutdown_write();
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection dropped")
    }
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(profile) = self.profile else { return self.inner.write(buf) };
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection dropped"));
        }
        if self.roll(profile.drop_one_in) == Some(0) {
            return Err(self.kill());
        }
        if self.roll(profile.delay_one_in) == Some(0) {
            std::thread::sleep(Duration::from_millis(profile.delay_ms));
        }
        if self.roll(profile.truncate_one_in) == Some(0) && buf.len() > 1 {
            let half = buf.len() / 2;
            let _ = self.inner.write(&buf[..half]);
            let _ = self.inner.flush();
            return Err(self.kill());
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        self.inner.flush()
    }
}
