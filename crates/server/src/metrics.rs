//! The server's telemetry: per-stage latency histograms over the
//! reactor path and the scrape-time exposition behind the `metrics`
//! protocol verb.
//!
//! Each [`Server`](crate::Server) owns its **own**
//! [`MetricsRegistry`] — co-located daemons (and every test that runs
//! several in-process servers) must never mix latency streams. Stage
//! handles are captured once at startup, so the hot path records
//! through pre-resolved `Arc`s and never touches the registry lock.
//!
//! The request path is split into four measured stages; their means sum
//! to the client-observed round trip (minus wire time), which the
//! harness asserts end to end:
//!
//! ```text
//! client ──▶ parse ──▶ [admission queue] ──▶ plan ──▶ flush ──▶ client
//!            parse_ns   queue_wait_ns        plan_ns   flush_ns
//! ```

use crate::server::ServerStats;
use dsq_telemetry::{Histogram, MetricsRegistry};
use std::sync::Arc;

/// Histogram handles for the four request stages plus the two shape
/// distributions (pipeline depth, write coalescing), backed by the
/// server's private registry.
#[derive(Debug)]
pub(crate) struct ServerMetrics {
    pub(crate) registry: MetricsRegistry,
    /// `parse_instance` on the reactor thread, per admitted document.
    pub(crate) parse_ns: Arc<Histogram>,
    /// Admission (`try_send`) to worker dequeue.
    pub(crate) queue_wait_ns: Arc<Histogram>,
    /// The planner call inside the worker (cache lookup or search).
    pub(crate) plan_ns: Arc<Histogram>,
    /// Response ready (slot filled) to its bytes fully on the socket.
    pub(crate) flush_ns: Arc<Histogram>,
    /// Pipeline depth observed at each admission (slots pending).
    pub(crate) pipeline_depth: Arc<Histogram>,
    /// Responses promoted per write-buffer fill — the coalescing factor.
    pub(crate) coalesced: Arc<Histogram>,
}

impl ServerMetrics {
    pub(crate) fn new() -> ServerMetrics {
        let registry = MetricsRegistry::new();
        ServerMetrics {
            parse_ns: registry.histogram("server.stage.parse_ns"),
            queue_wait_ns: registry.histogram("server.stage.queue_wait_ns"),
            plan_ns: registry.histogram("server.stage.plan_ns"),
            flush_ns: registry.histogram("server.stage.flush_ns"),
            pipeline_depth: registry.histogram("server.pipeline.depth"),
            coalesced: registry.histogram("server.flush.coalesced"),
            registry,
        }
    }

    /// Renders the `dsq-metrics v1` exposition for a scrape, folding
    /// the serving counters (which live in [`ServerStats`], not the
    /// registry) in at scrape time so one document carries everything.
    pub(crate) fn exposition(&self, stats: &ServerStats) -> String {
        self.registry.gauge("server.outstanding").set(stats.outstanding as i64);
        let table = stats.token_table();
        let extra: Vec<(String, u64)> = table
            .iter()
            .map(|(group, token, value)| (exposition_name(group, token), *value))
            .collect();
        let extra_refs: Vec<(&str, u64)> =
            extra.iter().map(|(name, value)| (name.as_str(), *value)).collect();
        self.registry.render_with(&extra_refs)
    }
}

/// `(group, token)` from the stats token table → a registry-legal
/// metric name: `server.<group>.<token>`.
fn exposition_name(group: &str, token: &str) -> String {
    format!("server.{group}.{token}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_telemetry::EXPOSITION_HEADER;

    #[test]
    fn exposition_carries_stages_and_folded_counters() {
        let metrics = ServerMetrics::new();
        metrics.parse_ns.record(1_000);
        metrics.queue_wait_ns.record(2_000);
        let stats = ServerStats { connections: 3, admitted: 2, ..ServerStats::default() };
        let text = metrics.exposition(&stats);
        assert!(text.starts_with(EXPOSITION_HEADER));
        assert!(text.contains("histogram server.stage.parse_ns count 1 "), "{text}");
        assert!(text.contains("counter server.serve.connections 3\n"), "{text}");
        assert!(text.contains("counter server.admission.admitted 2\n"), "{text}");
        assert!(text.contains("gauge server.outstanding 0\n"), "{text}");
        // Byte-stable: a second scrape of unchanged state is identical.
        assert_eq!(text, metrics.exposition(&stats));
    }

    #[test]
    fn tiered_counters_appear_only_in_tiered_mode() {
        let metrics = ServerMetrics::new();
        let classic = metrics.exposition(&ServerStats::default());
        assert!(!classic.contains("server.tiered."), "{classic}");
        let tiered = ServerStats {
            tiered: Some(dsq_service::TieredStats::default()),
            ..ServerStats::default()
        };
        let text = metrics.exposition(&tiered);
        assert!(text.contains("counter server.tiered.heuristic-served 0\n"), "{text}");
    }
}
