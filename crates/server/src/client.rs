//! A blocking client for the plan-serving daemon — what `dsq client`
//! wraps, and what tests and the harness drive the socket path with.

use crate::net::{ListenAddr, Stream};
use crate::protocol::{
    ExportRequest, ProtocolError, Response, IMPORT_PARTITION_VERB, METRICS_END, METRICS_VERB,
    REQUEST_END,
};
use dsq_core::{format_instance, PlanSnapshot, QueryInstance};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::time::Duration;

/// Client-side retry policy for `busy` responses: capped exponential
/// backoff **seeded from the server's `retry-after-ms` hint**, so a
/// loaded server (which scales its hint with queue occupancy) slows its
/// clients down proportionally. Passive struct; fields are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total request attempts, the first one included (≥ 1). The final
    /// attempt's `busy` response is returned to the caller instead of
    /// being retried.
    pub max_attempts: u32,
    /// Floor on any backoff sleep (also the seed when the server hints
    /// `retry-after-ms 0`).
    pub min_backoff: Duration,
    /// Cap on any backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Five attempts, 1 ms floor, 1 s cap.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            min_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retrying after the `busy_replies`-th consecutive
    /// `busy` (0-based): `hint × 2^busy_replies`, floored at
    /// [`min_backoff`](Self::min_backoff) and capped at
    /// [`max_backoff`](Self::max_backoff).
    pub fn backoff(&self, hint_ms: u64, busy_replies: u32) -> Duration {
        let seed = Duration::from_millis(hint_ms).max(self.min_backoff);
        seed.saturating_mul(2u32.saturating_pow(busy_replies.min(20))).min(self.max_backoff)
    }
}

/// A [`Stream`] wrapper counting the `read`/`write` calls that reach
/// the socket — the observable proxy for syscalls. Tests assert on
/// these to prove pipelining actually coalesces frames (one write for N
/// requests) instead of merely reordering them.
#[derive(Debug)]
struct CountingStream {
    inner: Stream,
    reads: u64,
    writes: u64,
}

impl Read for CountingStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reads += 1;
        self.inner.read(buf)
    }
}

impl Write for CountingStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writes += 1;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// One request inside a pipelined batch; see [`Client::pipeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineRequest {
    /// A `dsq-instance v1` document (the `end` trailer is appended by
    /// the client if missing).
    Optimize(String),
    /// A liveness probe.
    Ping,
    /// A counters request.
    Stats,
}

impl PipelineRequest {
    /// Renders the request's wire frame into `out`.
    fn render(&self, out: &mut String) {
        match self {
            PipelineRequest::Optimize(text) => {
                out.push_str(text);
                if !out.ends_with('\n') {
                    out.push('\n');
                }
                out.push_str(REQUEST_END);
                out.push('\n');
            }
            PipelineRequest::Ping => out.push_str("ping\n"),
            PipelineRequest::Stats => out.push_str("stats\n"),
        }
    }
}

/// A connected client. Requests are either strict request/response
/// ([`optimize`](Self::optimize) and friends) or pipelined — a whole
/// batch written in one frame, responses read back in request order
/// ([`pipeline`](Self::pipeline)).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<CountingStream>,
}

fn protocol_err(e: ProtocolError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Connection-level I/O errors.
    pub fn connect(addr: &ListenAddr) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(CountingStream {
                inner: Stream::connect(addr)?,
                reads: 0,
                writes: 0,
            }),
        })
    }

    /// `(reads, writes)` that reached the socket so far — the
    /// per-connection syscall proxy pipelining tests assert on.
    pub fn wire_counts(&self) -> (u64, u64) {
        let stream = self.reader.get_ref();
        (stream.reads, stream.writes)
    }

    /// Sends every request as **one** coalesced frame and reads the
    /// responses back in request order. The server admits up to its
    /// `max_pipeline` requests from this connection concurrently, so a
    /// batch of independent instances costs one write and (typically)
    /// far fewer reads than round-tripping them one at a time.
    ///
    /// # Errors
    ///
    /// I/O errors; `UnexpectedEof` when the connection closes before
    /// every response arrives; `InvalidData` for an unparseable
    /// response line. On any error the stream state is unknown — drop
    /// the client.
    pub fn pipeline(&mut self, requests: &[PipelineRequest]) -> io::Result<Vec<Response>> {
        let mut frame = String::new();
        for request in requests {
            request.render(&mut frame);
        }
        self.reader.get_mut().write_all(frame.as_bytes())?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-pipeline",
                ));
            }
            responses.push(Response::parse(&line).map_err(protocol_err)?);
        }
        Ok(responses)
    }

    /// [`pipeline`](Self::pipeline) over in-memory instances: all
    /// documents written in one frame, one response per instance, in
    /// order.
    ///
    /// # Errors
    ///
    /// See [`pipeline`](Self::pipeline).
    pub fn optimize_pipelined(&mut self, instances: &[QueryInstance]) -> io::Result<Vec<Response>> {
        let requests: Vec<PipelineRequest> =
            instances.iter().map(|i| PipelineRequest::Optimize(format_instance(i))).collect();
        self.pipeline(&requests)
    }

    fn round_trip(&mut self, request: &str) -> io::Result<Response> {
        self.reader.get_mut().write_all(request.as_bytes())?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        Response::parse(&line).map_err(protocol_err)
    }

    /// Sends instance text (the `dsq-instance v1` document) and returns
    /// the server's response. Blocks until the server replies — with a
    /// full admission queue that is an immediate
    /// [`Response::Busy`](crate::Response), never an indefinite stall.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for an unparseable response line.
    pub fn optimize_text(&mut self, instance_text: &str) -> io::Result<Response> {
        let mut request = String::with_capacity(instance_text.len() + 8);
        request.push_str(instance_text);
        if !request.ends_with('\n') {
            request.push('\n');
        }
        request.push_str(REQUEST_END);
        request.push('\n');
        self.round_trip(&request)
    }

    /// [`optimize_text`](Self::optimize_text) for an in-memory instance.
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn optimize(&mut self, instance: &QueryInstance) -> io::Result<Response> {
        self.optimize_text(&format_instance(instance))
    }

    /// [`optimize_text`](Self::optimize_text), retrying `busy`
    /// responses under `policy` (sleeping the policy's capped
    /// exponential backoff, seeded from each `retry-after-ms` hint).
    /// Returns the final response — `Served`, or the last `Busy` when
    /// the attempt budget ran out — together with the number of busy
    /// replies absorbed.
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text); transport and
    /// protocol errors are **not** retried (the stream state after one
    /// is unknown).
    pub fn optimize_text_with_retry(
        &mut self,
        instance_text: &str,
        policy: &RetryPolicy,
    ) -> io::Result<(Response, u32)> {
        let mut busy_replies = 0u32;
        loop {
            let response = self.optimize_text(instance_text)?;
            match response {
                Response::Busy { retry_after_ms }
                    if busy_replies.saturating_add(1) < policy.max_attempts =>
                {
                    std::thread::sleep(policy.backoff(retry_after_ms, busy_replies));
                    busy_replies += 1;
                }
                other => {
                    // Published only off the happy path: a first-attempt
                    // success never touches the global registry.
                    if busy_replies > 0 {
                        let registry = dsq_telemetry::global();
                        registry.counter("client.retry.busy-replies").add(u64::from(busy_replies));
                        if matches!(other, Response::Busy { .. }) {
                            registry.counter("client.retry.exhausted").inc();
                        } else {
                            registry.counter("client.retry.recovered").inc();
                        }
                    }
                    return Ok((other, busy_replies));
                }
            }
        }
    }

    /// [`optimize_text_with_retry`](Self::optimize_text_with_retry) for
    /// an in-memory instance — the ROADMAP's client-side retry/backoff
    /// helper.
    ///
    /// # Errors
    ///
    /// See [`optimize_text_with_retry`](Self::optimize_text_with_retry).
    pub fn request_with_retry(
        &mut self,
        instance: &QueryInstance,
        policy: &RetryPolicy,
    ) -> io::Result<(Response, u32)> {
        self.optimize_text_with_retry(&format_instance(instance), policy)
    }

    /// Requests the serving counters.
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn stats(&mut self) -> io::Result<Response> {
        self.round_trip("stats\n")
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn ping(&mut self) -> io::Result<Response> {
        self.round_trip("ping\n")
    }

    /// Requests the telemetry exposition (the `metrics` verb): the
    /// `ok metrics N` header followed by exactly `N` exposition lines
    /// and the `end-metrics` trailer. Returns the exposition text (the
    /// `# dsq-metrics v1` document, trailer excluded).
    ///
    /// # Errors
    ///
    /// I/O errors; `InvalidData` when the header is not a metrics
    /// response or the body contradicts its declared line count.
    pub fn metrics(&mut self) -> io::Result<String> {
        let lines = match self.round_trip(&format!("{METRICS_VERB}\n"))? {
            Response::Metrics { lines } => lines,
            Response::Error { message } => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, message));
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected a metrics response, got `{}`", other.to_line()),
                ));
            }
        };
        let mut text = String::new();
        for _ in 0..lines {
            let mut doc_line = String::new();
            if self.reader.read_line(&mut doc_line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "metrics document truncated",
                ));
            }
            text.push_str(&doc_line);
        }
        let mut trailer = String::new();
        if self.reader.read_line(&mut trailer)? == 0 || trailer.trim_end() != METRICS_END {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "metrics document declared {lines} lines but the trailer line is `{}`",
                    trailer.trim_end()
                ),
            ));
        }
        Ok(text)
    }

    /// Asks the server to drain and exit (the embedder decides when; see
    /// [`Server::wait_shutdown_requested`](crate::Server)).
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn shutdown_server(&mut self) -> io::Result<Response> {
        self.round_trip("shutdown\n")
    }

    /// Asks the server to hand over every cache entry it no longer owns
    /// under `request`'s fleet layout (see the
    /// [protocol docs](crate::protocol)). The server **removes** those
    /// entries and streams them back as a snapshot — this is a move,
    /// not a copy; feed the result to
    /// [`import_partition`](Self::import_partition) on the inheriting
    /// server to complete the handoff.
    ///
    /// # Errors
    ///
    /// I/O errors; `InvalidData` when the server refuses the layout,
    /// the document fails to parse, or its entry count contradicts the
    /// response header.
    pub fn export_partition(&mut self, request: &ExportRequest) -> io::Result<PlanSnapshot> {
        let mut line = request.to_line();
        line.push('\n');
        let entries = match self.round_trip(&line)? {
            Response::Partition { entries } => entries,
            Response::Error { message } => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, message));
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected a partition response, got `{}`", other.to_line()),
                ));
            }
        };
        // The snapshot document follows the header line, self-terminated
        // by its `end-snapshot` trailer.
        let mut text = String::new();
        loop {
            let mut doc_line = String::new();
            if self.reader.read_line(&mut doc_line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "partition document truncated",
                ));
            }
            let done = doc_line.trim_end() == "end-snapshot";
            text.push_str(&doc_line);
            if done {
                break;
            }
        }
        let snapshot = PlanSnapshot::parse(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("cannot parse partition: {e}"))
        })?;
        if snapshot.entries.len() as u64 != entries {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "partition header declared {entries} entries, document carries {}",
                    snapshot.entries.len()
                ),
            ));
        }
        Ok(snapshot)
    }

    /// Streams a snapshot document to the server, which restores its
    /// entries into the serving cache — the receiving half of a warm
    /// partition handoff. Returns the restored entry count.
    ///
    /// # Errors
    ///
    /// I/O errors; `InvalidData` when the server rejects the document
    /// (malformed, or a quantization-resolution mismatch with the
    /// receiving cache).
    pub fn import_partition(&mut self, snapshot: &PlanSnapshot) -> io::Result<u64> {
        let mut request = String::from(IMPORT_PARTITION_VERB);
        request.push('\n');
        request.push_str(&snapshot.to_text());
        match self.round_trip(&request)? {
            Response::PartitionRestored { entries } => Ok(entries),
            Response::Error { message } => Err(io::Error::new(io::ErrorKind::InvalidData, message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a partition-restored response, got `{}`", other.to_line()),
            )),
        }
    }
}

/// Outcome of a [`hold_connections`] run. Passive struct; fields are
/// public.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoldReport {
    /// Connections requested.
    pub requested: usize,
    /// Connections still answering `ping` at drain time.
    pub held: usize,
    /// Connections the server dropped while they were parked (anything
    /// above zero means idle connections are being evicted).
    pub dropped: usize,
}

impl HoldReport {
    /// The one-line drain summary (`drained N held connections: X live,
    /// Y dropped`) the CLI prints and the connection-scale tests assert.
    pub fn summary_line(&self) -> String {
        format!(
            "drained {} held connections: {} live, {} dropped",
            self.requested, self.held, self.dropped
        )
    }
}

/// Parks `count` concurrent idle connections on the server at `addr`,
/// then drains them with a verification pass: every connection is
/// pinged once at connect time (proving the reactor registered the
/// socket, not just that the kernel queued the connect) and once again
/// before being dropped (proving the server kept it alive the whole
/// time). The [`HoldReport`] carries the held/dropped accounting — the
/// observable scale contract, with no procfs scraping involved.
///
/// # Errors
///
/// Connection-level I/O errors while *establishing* the hold; a
/// connection lost between the two pings is counted as dropped, not an
/// error.
pub fn hold_connections(addr: &ListenAddr, count: usize) -> io::Result<HoldReport> {
    let mut held = Vec::with_capacity(count);
    for i in 0..count {
        let mut client = Client::connect(addr)
            .map_err(|e| io::Error::new(e.kind(), format!("connection {i} failed to dial: {e}")))?;
        match client.ping() {
            Ok(Response::Pong) => held.push(client),
            Ok(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("connection {i}: unexpected ping response `{}`", other.to_line()),
                ));
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("connection {i} failed to ping: {e}"),
                ));
            }
        }
    }
    let mut live = 0usize;
    for client in &mut held {
        if matches!(client.ping(), Ok(Response::Pong)) {
            live += 1;
        }
    }
    Ok(HoldReport { requested: count, held: live, dropped: count - live })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_seeded_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            min_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        };
        // Seeded from the hint, doubling per consecutive busy.
        assert_eq!(policy.backoff(10, 0), Duration::from_millis(10));
        assert_eq!(policy.backoff(10, 1), Duration::from_millis(20));
        assert_eq!(policy.backoff(10, 2), Duration::from_millis(40));
        // Capped.
        assert_eq!(policy.backoff(10, 4), Duration::from_millis(100));
        assert_eq!(policy.backoff(10, 30), Duration::from_millis(100));
        // A zero hint falls back to the floor, still exponential.
        assert_eq!(policy.backoff(0, 0), Duration::from_millis(2));
        assert_eq!(policy.backoff(0, 3), Duration::from_millis(16));
        // Monotone in both the hint and the attempt count.
        for busy_replies in 0..6 {
            for hint in [0u64, 1, 5, 25, 50] {
                assert!(
                    policy.backoff(hint, busy_replies + 1) >= policy.backoff(hint, busy_replies)
                );
                assert!(
                    policy.backoff(hint + 1, busy_replies) >= policy.backoff(hint, busy_replies)
                );
            }
        }
    }
}
