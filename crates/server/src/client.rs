//! A blocking client for the plan-serving daemon — what `dsq client`
//! wraps, and what tests and the harness drive the socket path with.

use crate::net::{ListenAddr, Stream};
use crate::protocol::{ProtocolError, Response, REQUEST_END};
use dsq_core::{format_instance, QueryInstance};
use std::io::{self, BufRead, BufReader, Write};

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/response per connection).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<Stream>,
}

fn protocol_err(e: ProtocolError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Connection-level I/O errors.
    pub fn connect(addr: &ListenAddr) -> io::Result<Client> {
        Ok(Client { reader: BufReader::new(Stream::connect(addr)?) })
    }

    fn round_trip(&mut self, request: &str) -> io::Result<Response> {
        self.reader.get_mut().write_all(request.as_bytes())?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        Response::parse(&line).map_err(protocol_err)
    }

    /// Sends instance text (the `dsq-instance v1` document) and returns
    /// the server's response. Blocks until the server replies — with a
    /// full admission queue that is an immediate
    /// [`Response::Busy`](crate::Response), never an indefinite stall.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for an unparseable response line.
    pub fn optimize_text(&mut self, instance_text: &str) -> io::Result<Response> {
        let mut request = String::with_capacity(instance_text.len() + 8);
        request.push_str(instance_text);
        if !request.ends_with('\n') {
            request.push('\n');
        }
        request.push_str(REQUEST_END);
        request.push('\n');
        self.round_trip(&request)
    }

    /// [`optimize_text`](Self::optimize_text) for an in-memory instance.
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn optimize(&mut self, instance: &QueryInstance) -> io::Result<Response> {
        self.optimize_text(&format_instance(instance))
    }

    /// Requests the serving counters.
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn stats(&mut self) -> io::Result<Response> {
        self.round_trip("stats\n")
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn ping(&mut self) -> io::Result<Response> {
        self.round_trip("ping\n")
    }

    /// Asks the server to drain and exit (the embedder decides when; see
    /// [`Server::wait_shutdown_requested`](crate::Server)).
    ///
    /// # Errors
    ///
    /// See [`optimize_text`](Self::optimize_text).
    pub fn shutdown_server(&mut self) -> io::Result<Response> {
        self.round_trip("shutdown\n")
    }
}
