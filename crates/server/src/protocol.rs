//! The newline-framed wire protocol.
//!
//! Requests are plain text. A client sends either a single-line verb or
//! an instance document terminated by `end`:
//!
//! ```text
//! request   = instance-doc | "stats" | "ping" | "metrics" | "shutdown"
//!           | export-line | import-doc
//! instance-doc = "dsq-instance v1" LF …instance lines… "end" LF
//! export-line  = "export-partition vnodes " N " keep " N " backends " ADDR ("," ADDR)* LF
//! import-doc   = "import-partition" LF …snapshot lines… "end-snapshot" LF
//! ```
//!
//! Every request earns exactly one single-line response:
//!
//! ```text
//! response  = "ok source " SRC " cost " F64 " fingerprint " HEX16 " plan " I ("," I)*
//!                 [" tier " TIER]
//!           | "ok stats requests " N " hits " N " probe2 " N " warm " N " cold " N
//!                 " busy " N " hit-rate " F64 " entries " N
//!           | "ok pong"
//!           | "ok metrics " N            ; N exposition lines stream after this line
//!           | "ok draining"
//!           | "ok partition " N           ; N snapshot entries stream after this line
//!           | "ok partition-restored " N
//!           | "busy retry-after-ms " N
//!           | "error " MESSAGE          ; one line, never empty
//! SRC       = "hit" | "warm" | "cold"
//! TIER      = "exact" | "heur"
//! ```
//!
//! The `metrics` verb scrapes the server's telemetry registry. The
//! `ok metrics N` header is followed by exactly `N` lines of
//! `dsq-metrics v1` exposition text (the `# dsq-metrics v1` header line
//! included in the count) and then the literal trailer `end-metrics`.
//! The exposition itself is byte-stable — lines sorted by metric name —
//! so two scrapes of the same state are identical bytes; see
//! `dsq_telemetry::registry` for the line grammar
//! (`counter`/`gauge`/`histogram` records).
//!
//! The two partition verbs carry the warm-handoff path of a fleet
//! resize. `export-partition` asks the server to **remove and return**
//! every exact-tier cache entry whose canonical fingerprint is *not*
//! owned by ring slot `keep` on the consistent-hash ring built over
//! `backends` with `vnodes` virtual nodes per backend — i.e. "here is
//! the new fleet layout; hand over everything that is no longer
//! yours". A `keep` equal to the backend count names no slot at all —
//! the server keeps nothing, the full drain of a **leaving** backend
//! that is not part of the new layout. The `ok partition N` line is
//! followed by the exported
//! entries as a [`PlanSnapshot`](dsq_core::PlanSnapshot) text document,
//! which self-terminates with its own `end-snapshot` trailer (`N` is
//! redundant with the document's declared entry count; clients may
//! cross-check). `import-partition` streams such a document *to* the
//! server, which restores the entries into its cache and answers
//! `ok partition-restored N`. Backend addresses are whitespace-free by
//! construction (TCP `host:port` or Unix socket paths), which is what
//! lets the export line stay single-line.
//!
//! The tier token is **optional and trailing**: it is only emitted for
//! heuristic-tier plans, which only exist when the operator runs the
//! server with `--tiered`. Exact plans render byte-identically to the
//! pre-tier wire format, and a missing token parses as `exact` — so
//! old clients interoperate with non-tiered servers unchanged, and new
//! clients interoperate with both.
//!
//! Costs and rates are Rust `f64` `Display` output, which round-trips
//! bit-exactly through `parse`; fingerprints are zero-padded lowercase
//! hex. [`Response::to_line`] and [`Response::parse`] are exact inverses
//! for every value the server emits.

use dsq_service::{PlanTier, ServeSource};
use std::fmt;

/// End-of-request marker terminating an instance document.
pub const REQUEST_END: &str = "end";

/// The `import-partition` request verb (the snapshot document follows
/// on the next lines, terminated by the snapshot's own `end-snapshot`
/// trailer).
pub const IMPORT_PARTITION_VERB: &str = "import-partition";

/// The `metrics` request verb: scrape the server's telemetry registry.
pub const METRICS_VERB: &str = "metrics";

/// Trailer closing the exposition document after an `ok metrics N`
/// response.
pub const METRICS_END: &str = "end-metrics";

/// The `stats` wire tokens, in wire order — the **single source** for
/// both [`Response::to_line`] and [`Response::parse`]. PRs 6–8 grew the
/// render and parse sides as separate hand-written lists; this table is
/// what keeps a future counter from silently breaking one of them.
pub const STATS_TOKENS: [&str; 8] =
    ["requests", "hits", "probe2", "warm", "cold", "busy", "hit-rate", "entries"];

/// A parsed `export-partition` request line: the new fleet layout the
/// receiving server should keep slot [`keep`](Self::keep) of, handing
/// everything else over. Passive struct; fields are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportRequest {
    /// Virtual nodes per backend on the consistent-hash ring.
    pub vnodes: usize,
    /// The ring slot (index into [`backends`](Self::backends)) the
    /// receiving server keeps; entries owned by any other slot are
    /// exported. May equal `backends.len()`: the server keeps nothing —
    /// the full drain of a backend leaving the fleet.
    pub keep: usize,
    /// The backend addresses spanning the ring, in fleet order.
    pub backends: Vec<String>,
}

impl ExportRequest {
    /// Renders the request as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "export-partition vnodes {} keep {} backends {}",
            self.vnodes,
            self.keep,
            self.backends.join(",")
        )
    }

    /// Parses an `export-partition` wire line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] carrying the line when it does not match the
    /// grammar, names an empty backend, or keeps a slot beyond the
    /// backend count (`keep == backends.len()`, the drain form, is
    /// valid).
    pub fn parse(line: &str) -> Result<ExportRequest, ProtocolError> {
        let line = line.trim_end();
        let err = || ProtocolError(line.to_string());
        let rest = line.strip_prefix("export-partition ").ok_or_else(err)?;
        let mut fields = rest.split_whitespace();
        let vnodes: usize = match (fields.next(), fields.next()) {
            (Some("vnodes"), Some(v)) => v.parse().map_err(|_| err())?,
            _ => return Err(err()),
        };
        let keep: usize = match (fields.next(), fields.next()) {
            (Some("keep"), Some(v)) => v.parse().map_err(|_| err())?,
            _ => return Err(err()),
        };
        let backends: Vec<String> = match (fields.next(), fields.next()) {
            (Some("backends"), Some(spec)) => spec.split(',').map(str::to_string).collect(),
            _ => return Err(err()),
        };
        if fields.next().is_some()
            || vnodes == 0
            || keep > backends.len()
            || backends.iter().any(String::is_empty)
        {
            return Err(err());
        }
        Ok(ExportRequest { vnodes, keep, backends })
    }
}

/// Error raised by [`Response::parse`]: the offending line, verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed protocol line: `{}`", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// The serving-counter snapshot reported by the `stats` verb. Passive
/// struct; fields are public.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsLine {
    /// Requests served through the cache (hits + warm starts + colds).
    pub requests: u64,
    /// Validated cache hits.
    pub hits: u64,
    /// The subset of hits found by the second (shifted-grid) probe.
    pub probe2_hits: u64,
    /// Out-of-tolerance hits that warm-started a search.
    pub warm_starts: u64,
    /// Cold optimizations.
    pub cold: u64,
    /// Requests rejected by admission control.
    pub busy_rejections: u64,
    /// `hits / requests` (0 before any request).
    pub hit_rate: f64,
    /// Cache entries currently resident (probe aliases included).
    pub entries: u64,
}

impl StatsLine {
    /// The rendered value for each of [`STATS_TOKENS`], in table order.
    fn wire_values(&self) -> [String; STATS_TOKENS.len()] {
        [
            self.requests.to_string(),
            self.hits.to_string(),
            self.probe2_hits.to_string(),
            self.warm_starts.to_string(),
            self.cold.to_string(),
            self.busy_rejections.to_string(),
            self.hit_rate.to_string(),
            self.entries.to_string(),
        ]
    }
}

/// One parsed server response. See the [module docs](self) for the
/// grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A served plan, in the request instance's own service labels.
    Served {
        /// How the plan was obtained.
        source: ServeSource,
        /// Bottleneck cost on the exact request instance.
        cost: f64,
        /// The request's primary cache fingerprint.
        fingerprint: u64,
        /// The plan as service indices.
        plan: Vec<usize>,
        /// Quality tier: [`PlanTier::Heuristic`] for an unrefined
        /// tier-1 answer from a `--tiered` server, [`PlanTier::Exact`]
        /// otherwise (and for every line without a tier token).
        tier: PlanTier,
    },
    /// The admission queue was full; retry after the given hint.
    Busy {
        /// Server-suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed; the message is a single line.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Reply to `ping`.
    Pong,
    /// Reply to `stats`.
    Stats(StatsLine),
    /// Reply to `metrics`: this many exposition lines stream after this
    /// line (the `# dsq-metrics v1` header included), followed by the
    /// [`METRICS_END`] trailer.
    Metrics {
        /// Exposition lines in the document that follows.
        lines: u64,
    },
    /// Reply to `shutdown`: the server is draining.
    Draining,
    /// Reply to `export-partition`: this many exported snapshot entries
    /// stream after this line as a snapshot text document (terminated
    /// by its own `end-snapshot` trailer).
    Partition {
        /// Entries in the snapshot document that follows.
        entries: u64,
    },
    /// Reply to `import-partition`: this many entries were restored.
    PartitionRestored {
        /// Entries restored into the receiving cache.
        entries: u64,
    },
}

fn parse_source(name: &str) -> Option<ServeSource> {
    match name {
        "hit" => Some(ServeSource::CacheHit),
        "warm" => Some(ServeSource::WarmStart),
        "cold" => Some(ServeSource::Cold),
        _ => None,
    }
}

fn parse_tier(name: &str) -> Option<PlanTier> {
    match name {
        "exact" => Some(PlanTier::Exact),
        "heur" => Some(PlanTier::Heuristic),
        _ => None,
    }
}

impl Response {
    /// Renders the response as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Served { source, cost, fingerprint, plan, tier } => {
                let plan = plan.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
                // Exact plans keep the pre-tier wire format byte for
                // byte (see the module docs): only tier-1 answers — a
                // `--tiered`-only phenomenon — carry the token.
                let tier = match tier {
                    PlanTier::Exact => String::new(),
                    PlanTier::Heuristic => format!(" tier {}", tier.name()),
                };
                format!(
                    "ok source {} cost {cost} fingerprint {fingerprint:016x} plan {plan}{tier}",
                    source.name()
                )
            }
            Response::Busy { retry_after_ms } => format!("busy retry-after-ms {retry_after_ms}"),
            Response::Error { message } => {
                // The frame is one line; a multi-line message would
                // desynchronize the stream.
                format!("error {}", message.replace('\n', "; "))
            }
            Response::Pong => "ok pong".into(),
            Response::Stats(s) => {
                let values = s.wire_values();
                let body: Vec<String> = STATS_TOKENS
                    .iter()
                    .zip(values.iter())
                    .map(|(token, value)| format!("{token} {value}"))
                    .collect();
                format!("ok stats {}", body.join(" "))
            }
            Response::Metrics { lines } => format!("ok metrics {lines}"),
            Response::Draining => "ok draining".into(),
            Response::Partition { entries } => format!("ok partition {entries}"),
            Response::PartitionRestored { entries } => {
                format!("ok partition-restored {entries}")
            }
        }
    }

    /// Parses a wire line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] carrying the line when it matches no response
    /// form.
    pub fn parse(line: &str) -> Result<Response, ProtocolError> {
        let line = line.trim_end();
        let err = || ProtocolError(line.to_string());
        if let Some(message) = line.strip_prefix("error ") {
            return Ok(Response::Error { message: message.to_string() });
        }
        if let Some(rest) = line.strip_prefix("busy retry-after-ms ") {
            let retry_after_ms = rest.trim().parse().map_err(|_| err())?;
            return Ok(Response::Busy { retry_after_ms });
        }
        match line {
            "ok pong" => return Ok(Response::Pong),
            "ok draining" => return Ok(Response::Draining),
            _ => {}
        }
        if let Some(rest) = line.strip_prefix("ok partition-restored ") {
            let entries = rest.trim().parse().map_err(|_| err())?;
            return Ok(Response::PartitionRestored { entries });
        }
        if let Some(rest) = line.strip_prefix("ok partition ") {
            let entries = rest.trim().parse().map_err(|_| err())?;
            return Ok(Response::Partition { entries });
        }
        if let Some(rest) = line.strip_prefix("ok metrics ") {
            let lines = rest.trim().parse().map_err(|_| err())?;
            return Ok(Response::Metrics { lines });
        }
        if let Some(rest) = line.strip_prefix("ok source ") {
            let mut fields = rest.split_whitespace();
            let source = fields.next().and_then(parse_source).ok_or_else(err)?;
            let cost: f64 = match (fields.next(), fields.next()) {
                (Some("cost"), Some(v)) => v.parse().map_err(|_| err())?,
                _ => return Err(err()),
            };
            let fingerprint = match (fields.next(), fields.next()) {
                (Some("fingerprint"), Some(v)) => u64::from_str_radix(v, 16).map_err(|_| err())?,
                _ => return Err(err()),
            };
            let plan: Vec<usize> = match (fields.next(), fields.next()) {
                (Some("plan"), Some(spec)) => spec
                    .split(',')
                    .map(|f| f.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err())?,
                _ => return Err(err()),
            };
            let tier = match (fields.next(), fields.next()) {
                (None, _) => PlanTier::Exact,
                (Some("tier"), Some(name)) => parse_tier(name).ok_or_else(err)?,
                _ => return Err(err()),
            };
            if fields.next().is_some() {
                return Err(err());
            }
            return Ok(Response::Served { source, cost, fingerprint, plan, tier });
        }
        if let Some(rest) = line.strip_prefix("ok stats ") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 2 * STATS_TOKENS.len() {
                return Err(err());
            }
            let mut values = [0f64; STATS_TOKENS.len()];
            for (k, token) in STATS_TOKENS.iter().enumerate() {
                if fields[2 * k] != *token {
                    return Err(err());
                }
                values[k] = fields[2 * k + 1].parse().map_err(|_| err())?;
            }
            return Ok(Response::Stats(StatsLine {
                requests: values[0] as u64,
                hits: values[1] as u64,
                probe2_hits: values[2] as u64,
                warm_starts: values[3] as u64,
                cold: values[4] as u64,
                busy_rejections: values[5] as u64,
                hit_rate: values[6],
                entries: values[7] as u64,
            }));
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Served {
                source: ServeSource::CacheHit,
                cost: 1.0 / 3.0,
                fingerprint: 0x00ab_cdef_0123_4567,
                plan: vec![2, 0, 1],
                tier: PlanTier::Exact,
            },
            Response::Served {
                source: ServeSource::Cold,
                cost: 7.25,
                fingerprint: u64::MAX,
                plan: vec![0],
                tier: PlanTier::Exact,
            },
            Response::Served {
                source: ServeSource::Cold,
                cost: 2.5,
                fingerprint: 9,
                plan: vec![1, 0],
                tier: PlanTier::Heuristic,
            },
            Response::Served {
                source: ServeSource::CacheHit,
                cost: 2.5,
                fingerprint: 9,
                plan: vec![1, 0],
                tier: PlanTier::Heuristic,
            },
            Response::Busy { retry_after_ms: 50 },
            Response::Error { message: "cannot parse instance: line 3: bad cost".into() },
            Response::Pong,
            Response::Draining,
            Response::Partition { entries: 0 },
            Response::Partition { entries: 17 },
            Response::PartitionRestored { entries: 17 },
            Response::Metrics { lines: 0 },
            Response::Metrics { lines: 42 },
            Response::Stats(StatsLine {
                requests: 240,
                hits: 232,
                probe2_hits: 4,
                warm_starts: 3,
                cold: 5,
                busy_rejections: 2,
                hit_rate: 232.0 / 240.0,
                entries: 16,
            }),
        ];
        for response in cases {
            let line = response.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).expect("round-trips"), response, "{line}");
        }
        // Cost bits survive the text round trip.
        let served = Response::Served {
            source: ServeSource::WarmStart,
            cost: 0.1 + 0.2,
            fingerprint: 1,
            plan: vec![0, 1],
            tier: PlanTier::Exact,
        };
        match Response::parse(&served.to_line()).expect("parses") {
            Response::Served { cost, .. } => {
                assert_eq!(cost.to_bits(), (0.1f64 + 0.2).to_bits())
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// Exact-tier lines keep the pre-tier wire format byte for byte
    /// (old clients parse everything a non-tiered server emits), a
    /// tier-less line parses as exact, and heuristic answers carry the
    /// trailing token.
    #[test]
    fn tier_token_is_backward_compatible() {
        let exact = Response::Served {
            source: ServeSource::Cold,
            cost: 1.5,
            fingerprint: 0xabc,
            plan: vec![1, 0, 2],
            tier: PlanTier::Exact,
        };
        assert_eq!(
            exact.to_line(),
            "ok source cold cost 1.5 fingerprint 0000000000000abc plan 1,0,2",
            "no tier token on exact plans"
        );
        assert_eq!(Response::parse(&exact.to_line()).expect("parses"), exact);

        let heur = Response::Served {
            source: ServeSource::Cold,
            cost: 1.5,
            fingerprint: 0xabc,
            plan: vec![1, 0, 2],
            tier: PlanTier::Heuristic,
        };
        assert_eq!(
            heur.to_line(),
            "ok source cold cost 1.5 fingerprint 0000000000000abc plan 1,0,2 tier heur"
        );
        assert_eq!(Response::parse(&heur.to_line()).expect("parses"), heur);
        // A new server may also spell the tier out explicitly; new
        // clients accept it.
        match Response::parse("ok source hit cost 1 fingerprint 0 plan 0 tier exact") {
            Ok(Response::Served { tier, .. }) => assert_eq!(tier, PlanTier::Exact),
            other => panic!("explicit exact tier must parse: {other:?}"),
        }
    }

    /// A fresh server (zero requests) reports `hit-rate 0`, never NaN:
    /// `CacheStats::hit_rate` guards the zero-request division, and this
    /// pin fails if anyone removes the guard (NaN renders as `NaN` and
    /// would change the wire line).
    #[test]
    fn fresh_server_stats_line_is_pinned_and_nan_free() {
        let line = Response::Stats(StatsLine::default()).to_line();
        assert_eq!(
            line,
            "ok stats requests 0 hits 0 probe2 0 warm 0 cold 0 busy 0 hit-rate 0 entries 0"
        );
        assert!(!line.contains("NaN"), "zero requests must not divide to NaN");
        assert_eq!(Response::parse(&line).expect("parses"), Response::Stats(StatsLine::default()));
    }

    /// The exact wire line for a fully populated stats payload is
    /// pinned byte for byte: both the render and the parse side come
    /// from [`STATS_TOKENS`], so this test is the tripwire for anyone
    /// appending a counter to one side only (the drift that accumulated
    /// over PRs 6–8).
    #[test]
    fn populated_stats_line_is_pinned_to_the_token_table() {
        let stats = StatsLine {
            requests: 240,
            hits: 120,
            probe2_hits: 4,
            warm_starts: 3,
            cold: 5,
            busy_rejections: 2,
            hit_rate: 0.5,
            entries: 16,
        };
        let line = Response::Stats(stats).to_line();
        assert_eq!(
            line,
            "ok stats requests 240 hits 120 probe2 4 warm 3 cold 5 busy 2 hit-rate 0.5 entries 16"
        );
        // Wire order is table order, every token present exactly once.
        let fields: Vec<&str> = line.split_whitespace().collect();
        let labels: Vec<&str> = fields[2..].iter().step_by(2).copied().collect();
        assert_eq!(labels, STATS_TOKENS.to_vec());
        assert_eq!(Response::parse(&line).expect("parses"), Response::Stats(stats));
    }

    #[test]
    fn metrics_header_round_trips_and_rejects_malformed_counts() {
        let header = Response::Metrics { lines: 12 };
        assert_eq!(header.to_line(), "ok metrics 12");
        assert_eq!(Response::parse("ok metrics 12").expect("parses"), header);
        for line in ["ok metrics", "ok metrics x", "ok metrics -1", "ok metrics 1 2"] {
            assert!(Response::parse(line).is_err(), "{line:?} should not parse");
        }
    }

    #[test]
    fn multiline_error_messages_are_flattened() {
        let response = Response::Error { message: "line 1\nline 2".into() };
        assert_eq!(response.to_line(), "error line 1; line 2");
    }

    #[test]
    fn export_request_round_trips_and_rejects_malformed_lines() {
        let request = ExportRequest {
            vnodes: 64,
            keep: 1,
            backends: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into(), "/tmp/c.sock".into()],
        };
        assert_eq!(
            request.to_line(),
            "export-partition vnodes 64 keep 1 backends 127.0.0.1:7001,127.0.0.1:7002,/tmp/c.sock"
        );
        assert_eq!(ExportRequest::parse(&request.to_line()).expect("round-trips"), request);
        // A single-backend layout is legal (it exports nothing).
        let solo = ExportRequest { vnodes: 1, keep: 0, backends: vec!["a".into()] };
        assert_eq!(ExportRequest::parse(&solo.to_line()).expect("parses"), solo);
        // `keep == backends.len()` is the drain form: a leaving backend
        // keeps no slot and hands everything over.
        let drain = ExportRequest { vnodes: 8, keep: 2, backends: vec!["a".into(), "b".into()] };
        assert_eq!(ExportRequest::parse(&drain.to_line()).expect("parses"), drain);
        for line in [
            "export-partition",
            "export-partition vnodes 64",
            "export-partition vnodes 64 keep 0",
            "export-partition vnodes 64 keep 0 backends",
            "export-partition vnodes 0 keep 0 backends a,b", // zero vnodes
            "export-partition vnodes 64 keep 3 backends a,b", // keep beyond the drain slot
            "export-partition vnodes 64 keep 0 backends a,,b", // empty backend
            "export-partition vnodes x keep 0 backends a,b",
            "export-partition vnodes 64 keep 0 backends a,b extra",
            "import-partition",
        ] {
            assert!(ExportRequest::parse(line).is_err(), "{line:?} should not parse");
        }
        let err = ExportRequest::parse("export-partition nope").unwrap_err();
        assert_eq!(err.to_string(), "malformed protocol line: `export-partition nope`");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            "",
            "ok",
            "ok partition",
            "ok partition x",
            "ok partition-restored many",
            "ok source hot cost 1 fingerprint 0 plan 0",
            "ok source hit cost x fingerprint 0 plan 0",
            "ok source hit cost 1 fingerprint zz plan 0",
            "ok source hit cost 1 fingerprint 0 plan 0,x",
            "ok source hit cost 1 fingerprint 0 plan 0 extra",
            "ok source hit cost 1 fingerprint 0 plan 0 tier",
            "ok source hit cost 1 fingerprint 0 plan 0 tier gold",
            "ok source hit cost 1 fingerprint 0 plan 0 tier heur extra",
            "busy retry-after-ms soon",
            "ok stats requests 1",
            "ok stats requests 1 hits 1 probe2 0 warm 0 cold 0 busy 0 hit-rate 1 misc 3",
        ] {
            assert!(Response::parse(line).is_err(), "{line:?} should not parse");
        }
        let err = Response::parse("ok").unwrap_err();
        assert_eq!(err.to_string(), "malformed protocol line: `ok`");
    }
}
