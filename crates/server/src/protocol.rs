//! The newline-framed wire protocol.
//!
//! Requests are plain text. A client sends either a single-line verb or
//! an instance document terminated by `end`:
//!
//! ```text
//! request   = instance-doc | "stats" | "ping" | "shutdown"
//! instance-doc = "dsq-instance v1" LF …instance lines… "end" LF
//! ```
//!
//! Every request earns exactly one single-line response:
//!
//! ```text
//! response  = "ok source " SRC " cost " F64 " fingerprint " HEX16 " plan " I ("," I)*
//!                 [" tier " TIER]
//!           | "ok stats requests " N " hits " N " probe2 " N " warm " N " cold " N
//!                 " busy " N " hit-rate " F64 " entries " N
//!           | "ok pong"
//!           | "ok draining"
//!           | "busy retry-after-ms " N
//!           | "error " MESSAGE          ; one line, never empty
//! SRC       = "hit" | "warm" | "cold"
//! TIER      = "exact" | "heur"
//! ```
//!
//! The tier token is **optional and trailing**: it is only emitted for
//! heuristic-tier plans, which only exist when the operator runs the
//! server with `--tiered`. Exact plans render byte-identically to the
//! pre-tier wire format, and a missing token parses as `exact` — so
//! old clients interoperate with non-tiered servers unchanged, and new
//! clients interoperate with both.
//!
//! Costs and rates are Rust `f64` `Display` output, which round-trips
//! bit-exactly through `parse`; fingerprints are zero-padded lowercase
//! hex. [`Response::to_line`] and [`Response::parse`] are exact inverses
//! for every value the server emits.

use dsq_service::{PlanTier, ServeSource};
use std::fmt;

/// End-of-request marker terminating an instance document.
pub const REQUEST_END: &str = "end";

/// Error raised by [`Response::parse`]: the offending line, verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed protocol line: `{}`", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// The serving-counter snapshot reported by the `stats` verb. Passive
/// struct; fields are public.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsLine {
    /// Requests served through the cache (hits + warm starts + colds).
    pub requests: u64,
    /// Validated cache hits.
    pub hits: u64,
    /// The subset of hits found by the second (shifted-grid) probe.
    pub probe2_hits: u64,
    /// Out-of-tolerance hits that warm-started a search.
    pub warm_starts: u64,
    /// Cold optimizations.
    pub cold: u64,
    /// Requests rejected by admission control.
    pub busy_rejections: u64,
    /// `hits / requests` (0 before any request).
    pub hit_rate: f64,
    /// Cache entries currently resident (probe aliases included).
    pub entries: u64,
}

/// One parsed server response. See the [module docs](self) for the
/// grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A served plan, in the request instance's own service labels.
    Served {
        /// How the plan was obtained.
        source: ServeSource,
        /// Bottleneck cost on the exact request instance.
        cost: f64,
        /// The request's primary cache fingerprint.
        fingerprint: u64,
        /// The plan as service indices.
        plan: Vec<usize>,
        /// Quality tier: [`PlanTier::Heuristic`] for an unrefined
        /// tier-1 answer from a `--tiered` server, [`PlanTier::Exact`]
        /// otherwise (and for every line without a tier token).
        tier: PlanTier,
    },
    /// The admission queue was full; retry after the given hint.
    Busy {
        /// Server-suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed; the message is a single line.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Reply to `ping`.
    Pong,
    /// Reply to `stats`.
    Stats(StatsLine),
    /// Reply to `shutdown`: the server is draining.
    Draining,
}

fn parse_source(name: &str) -> Option<ServeSource> {
    match name {
        "hit" => Some(ServeSource::CacheHit),
        "warm" => Some(ServeSource::WarmStart),
        "cold" => Some(ServeSource::Cold),
        _ => None,
    }
}

fn parse_tier(name: &str) -> Option<PlanTier> {
    match name {
        "exact" => Some(PlanTier::Exact),
        "heur" => Some(PlanTier::Heuristic),
        _ => None,
    }
}

impl Response {
    /// Renders the response as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Served { source, cost, fingerprint, plan, tier } => {
                let plan =
                    plan.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
                // Exact plans keep the pre-tier wire format byte for
                // byte (see the module docs): only tier-1 answers — a
                // `--tiered`-only phenomenon — carry the token.
                let tier = match tier {
                    PlanTier::Exact => String::new(),
                    PlanTier::Heuristic => format!(" tier {}", tier.name()),
                };
                format!(
                    "ok source {} cost {cost} fingerprint {fingerprint:016x} plan {plan}{tier}",
                    source.name()
                )
            }
            Response::Busy { retry_after_ms } => format!("busy retry-after-ms {retry_after_ms}"),
            Response::Error { message } => {
                // The frame is one line; a multi-line message would
                // desynchronize the stream.
                format!("error {}", message.replace('\n', "; "))
            }
            Response::Pong => "ok pong".into(),
            Response::Stats(s) => format!(
                "ok stats requests {} hits {} probe2 {} warm {} cold {} busy {} hit-rate {} entries {}",
                s.requests,
                s.hits,
                s.probe2_hits,
                s.warm_starts,
                s.cold,
                s.busy_rejections,
                s.hit_rate,
                s.entries,
            ),
            Response::Draining => "ok draining".into(),
        }
    }

    /// Parses a wire line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] carrying the line when it matches no response
    /// form.
    pub fn parse(line: &str) -> Result<Response, ProtocolError> {
        let line = line.trim_end();
        let err = || ProtocolError(line.to_string());
        if let Some(message) = line.strip_prefix("error ") {
            return Ok(Response::Error { message: message.to_string() });
        }
        if let Some(rest) = line.strip_prefix("busy retry-after-ms ") {
            let retry_after_ms = rest.trim().parse().map_err(|_| err())?;
            return Ok(Response::Busy { retry_after_ms });
        }
        match line {
            "ok pong" => return Ok(Response::Pong),
            "ok draining" => return Ok(Response::Draining),
            _ => {}
        }
        if let Some(rest) = line.strip_prefix("ok source ") {
            let mut fields = rest.split_whitespace();
            let source = fields.next().and_then(parse_source).ok_or_else(err)?;
            let cost: f64 = match (fields.next(), fields.next()) {
                (Some("cost"), Some(v)) => v.parse().map_err(|_| err())?,
                _ => return Err(err()),
            };
            let fingerprint = match (fields.next(), fields.next()) {
                (Some("fingerprint"), Some(v)) => u64::from_str_radix(v, 16).map_err(|_| err())?,
                _ => return Err(err()),
            };
            let plan: Vec<usize> = match (fields.next(), fields.next()) {
                (Some("plan"), Some(spec)) => spec
                    .split(',')
                    .map(|f| f.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err())?,
                _ => return Err(err()),
            };
            let tier = match (fields.next(), fields.next()) {
                (None, _) => PlanTier::Exact,
                (Some("tier"), Some(name)) => parse_tier(name).ok_or_else(err)?,
                _ => return Err(err()),
            };
            if fields.next().is_some() {
                return Err(err());
            }
            return Ok(Response::Served { source, cost, fingerprint, plan, tier });
        }
        if let Some(rest) = line.strip_prefix("ok stats ") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let labels =
                ["requests", "hits", "probe2", "warm", "cold", "busy", "hit-rate", "entries"];
            if fields.len() != 2 * labels.len() {
                return Err(err());
            }
            let mut values = [0f64; 8];
            for (k, label) in labels.iter().enumerate() {
                if fields[2 * k] != *label {
                    return Err(err());
                }
                values[k] = fields[2 * k + 1].parse().map_err(|_| err())?;
            }
            return Ok(Response::Stats(StatsLine {
                requests: values[0] as u64,
                hits: values[1] as u64,
                probe2_hits: values[2] as u64,
                warm_starts: values[3] as u64,
                cold: values[4] as u64,
                busy_rejections: values[5] as u64,
                hit_rate: values[6],
                entries: values[7] as u64,
            }));
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Served {
                source: ServeSource::CacheHit,
                cost: 1.0 / 3.0,
                fingerprint: 0x00ab_cdef_0123_4567,
                plan: vec![2, 0, 1],
                tier: PlanTier::Exact,
            },
            Response::Served {
                source: ServeSource::Cold,
                cost: 7.25,
                fingerprint: u64::MAX,
                plan: vec![0],
                tier: PlanTier::Exact,
            },
            Response::Served {
                source: ServeSource::Cold,
                cost: 2.5,
                fingerprint: 9,
                plan: vec![1, 0],
                tier: PlanTier::Heuristic,
            },
            Response::Served {
                source: ServeSource::CacheHit,
                cost: 2.5,
                fingerprint: 9,
                plan: vec![1, 0],
                tier: PlanTier::Heuristic,
            },
            Response::Busy { retry_after_ms: 50 },
            Response::Error { message: "cannot parse instance: line 3: bad cost".into() },
            Response::Pong,
            Response::Draining,
            Response::Stats(StatsLine {
                requests: 240,
                hits: 232,
                probe2_hits: 4,
                warm_starts: 3,
                cold: 5,
                busy_rejections: 2,
                hit_rate: 232.0 / 240.0,
                entries: 16,
            }),
        ];
        for response in cases {
            let line = response.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).expect("round-trips"), response, "{line}");
        }
        // Cost bits survive the text round trip.
        let served = Response::Served {
            source: ServeSource::WarmStart,
            cost: 0.1 + 0.2,
            fingerprint: 1,
            plan: vec![0, 1],
            tier: PlanTier::Exact,
        };
        match Response::parse(&served.to_line()).expect("parses") {
            Response::Served { cost, .. } => {
                assert_eq!(cost.to_bits(), (0.1f64 + 0.2).to_bits())
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// Exact-tier lines keep the pre-tier wire format byte for byte
    /// (old clients parse everything a non-tiered server emits), a
    /// tier-less line parses as exact, and heuristic answers carry the
    /// trailing token.
    #[test]
    fn tier_token_is_backward_compatible() {
        let exact = Response::Served {
            source: ServeSource::Cold,
            cost: 1.5,
            fingerprint: 0xabc,
            plan: vec![1, 0, 2],
            tier: PlanTier::Exact,
        };
        assert_eq!(
            exact.to_line(),
            "ok source cold cost 1.5 fingerprint 0000000000000abc plan 1,0,2",
            "no tier token on exact plans"
        );
        assert_eq!(Response::parse(&exact.to_line()).expect("parses"), exact);

        let heur = Response::Served {
            source: ServeSource::Cold,
            cost: 1.5,
            fingerprint: 0xabc,
            plan: vec![1, 0, 2],
            tier: PlanTier::Heuristic,
        };
        assert_eq!(
            heur.to_line(),
            "ok source cold cost 1.5 fingerprint 0000000000000abc plan 1,0,2 tier heur"
        );
        assert_eq!(Response::parse(&heur.to_line()).expect("parses"), heur);
        // A new server may also spell the tier out explicitly; new
        // clients accept it.
        match Response::parse("ok source hit cost 1 fingerprint 0 plan 0 tier exact") {
            Ok(Response::Served { tier, .. }) => assert_eq!(tier, PlanTier::Exact),
            other => panic!("explicit exact tier must parse: {other:?}"),
        }
    }

    /// A fresh server (zero requests) reports `hit-rate 0`, never NaN:
    /// `CacheStats::hit_rate` guards the zero-request division, and this
    /// pin fails if anyone removes the guard (NaN renders as `NaN` and
    /// would change the wire line).
    #[test]
    fn fresh_server_stats_line_is_pinned_and_nan_free() {
        let line = Response::Stats(StatsLine::default()).to_line();
        assert_eq!(
            line,
            "ok stats requests 0 hits 0 probe2 0 warm 0 cold 0 busy 0 hit-rate 0 entries 0"
        );
        assert!(!line.contains("NaN"), "zero requests must not divide to NaN");
        assert_eq!(Response::parse(&line).expect("parses"), Response::Stats(StatsLine::default()));
    }

    #[test]
    fn multiline_error_messages_are_flattened() {
        let response = Response::Error { message: "line 1\nline 2".into() };
        assert_eq!(response.to_line(), "error line 1; line 2");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for line in [
            "",
            "ok",
            "ok source hot cost 1 fingerprint 0 plan 0",
            "ok source hit cost x fingerprint 0 plan 0",
            "ok source hit cost 1 fingerprint zz plan 0",
            "ok source hit cost 1 fingerprint 0 plan 0,x",
            "ok source hit cost 1 fingerprint 0 plan 0 extra",
            "ok source hit cost 1 fingerprint 0 plan 0 tier",
            "ok source hit cost 1 fingerprint 0 plan 0 tier gold",
            "ok source hit cost 1 fingerprint 0 plan 0 tier heur extra",
            "busy retry-after-ms soon",
            "ok stats requests 1",
            "ok stats requests 1 hits 1 probe2 0 warm 0 cold 0 busy 0 hit-rate 1 misc 3",
        ] {
            assert!(Response::parse(line).is_err(), "{line:?} should not parse");
        }
        let err = Response::parse("ok").unwrap_err();
        assert_eq!(err.to_string(), "malformed protocol line: `ok`");
    }
}
