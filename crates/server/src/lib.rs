//! The plan-serving daemon: a long-lived server in front of the
//! `dsq-service` plan cache, for workloads where the optimizer is a
//! network service rather than a library call.
//!
//! The batch front-end (`dsq_service::optimize_batch`) amortizes
//! optimization across a *pre-filled* queue; production traffic instead
//! arrives one request at a time, indefinitely, from many clients. This
//! crate adds the three pieces that turn the cache into a service:
//!
//! * **A newline-framed socket protocol** ([`protocol`]) over TCP or
//!   Unix-domain sockets (`std::net` / `std::os::unix::net`; no async
//!   runtime): clients write a `dsq-instance v1` document terminated by
//!   `end` and read back a single response line carrying the plan, its
//!   exact-instance cost, the serve source, and the cache fingerprint.
//! * **An event-driven core with pipelining** ([`Server`]): one reactor
//!   thread owns every connection socket through a vendored epoll poller
//!   (`vendor/reactor`), so thousands of idle connections cost no
//!   threads; the worker pool drains a bounded admission queue and hands
//!   completions back over a wakeup pipe. A connection may pipeline up
//!   to `max_pipeline` requests without reading responses — answers come
//!   back in request order — and a request arriving while the queue is
//!   full is answered `busy retry-after-ms N` *immediately*, so a client
//!   still cannot buffer unbounded work into the server.
//! * **Cache persistence** (via `dsq_service::PlanCache::snapshot`): the
//!   cache is restored from a snapshot file at startup (warm restart), a
//!   background thread rewrites the file periodically (atomic
//!   temp-file-and-rename), and a graceful shutdown — protocol verb or
//!   embedder signal — drains in-flight requests and writes a final
//!   snapshot. A restarted server answers at its pre-restart hit rate
//!   instead of cold. The snapshot path is guarded by an advisory
//!   [`SnapshotLock`] PID file, so two live servers cannot
//!   last-writer-wins each other's snapshots.
//!
//! The serve path itself is the `dsq_service::Planner` seam: each worker
//! fronts the shared cache through a `CachedPlanner`, and the crate adds
//! the client-side counterpart — [`RemotePlanner`], a `Planner` that
//! speaks this protocol with busy retry/backoff ([`RetryPolicy`],
//! seeded from the server's **load-aware** `retry-after-ms` hints; see
//! [`load_aware_retry_ms`]) and typed errors, so a
//! `dsq_service::FleetPlanner` can shard work across several daemons
//! with failover and a local cold fallback.
//!
//! Two operational additions support running daemons as a *fleet*:
//!
//! * **Warm partition handoff** (`export-partition` /
//!   `import-partition`, see [`protocol`]): on a fleet resize, each
//!   surviving daemon is told the new consistent-hash layout and hands
//!   over exactly the cache entries it no longer owns as a snapshot
//!   document, which the inheriting daemon restores — moved keys stay
//!   warm across the resize instead of recomputing.
//! * **Deterministic fault injection** ([`FaultProfile`],
//!   [`ServerConfig::chaos`]): the server can wrap every connection's
//!   response path in a chaos stream that drops, delays, and truncates
//!   frames on a seeded schedule, so client retry/failover paths are
//!   exercised reproducibly in tests and smoke runs.
//!
//! ```no_run
//! use dsq_server::{Client, ListenAddr, Response, Server, ServerConfig};
//!
//! let addr = ListenAddr::Tcp("127.0.0.1:0".into());
//! let server = Server::start(&addr, &ServerConfig::default())?;
//! let mut client = Client::connect(server.listen_addr())?;
//! let instance = dsq_workloads::generate(dsq_workloads::Family::Clustered, 8, 7);
//! match client.optimize(&instance)? {
//!     Response::Served { cost, plan, .. } => println!("cost {cost} plan {plan:?}"),
//!     other => println!("{other:?}"),
//! }
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod event_loop;
mod loadgen;
mod lock;
mod metrics;
mod net;
pub mod protocol;
mod remote;
mod server;

pub use client::{hold_connections, Client, HoldReport, PipelineRequest, RetryPolicy};
pub use loadgen::{ClassReport, LoadgenConfig, LoadgenReport, RequestClass};
pub use lock::{lock_path, SnapshotLock};
pub use net::{FaultProfile, ListenAddr};
pub use protocol::{ExportRequest, ProtocolError, Response, StatsLine};
pub use remote::RemotePlanner;
pub use server::{load_aware_retry_ms, Server, ServerConfig, ServerStats, ShutdownHandle};
