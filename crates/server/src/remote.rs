//! A [`Planner`] whose backend is a remote `dsq-server` daemon: the
//! wire-protocol counterpart of `dsq_service::CachedPlanner`, with a
//! busy retry/backoff policy and lazy reconnection, so a fleet router
//! (or any other `Planner` consumer) can treat a remote daemon exactly
//! like a local cache.

use crate::client::{Client, RetryPolicy};
use crate::net::ListenAddr;
use crate::protocol::Response;
use dsq_core::{format_instance, Plan, QueryInstance};
use dsq_service::{PlanError, PlanTier, Planner, PlannerStats, ServeSource, ServedPlan};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A [`Planner`] that forwards every request to a remote daemon over the
/// newline-framed protocol.
///
/// * **Retry/backoff**: `busy retry-after-ms` replies are retried under
///   a [`RetryPolicy`] (capped exponential backoff seeded from the
///   server's load-aware hint); a budget-exhausted busy surfaces as
///   [`PlanError::Busy`], which a fleet router treats as "try the next
///   replica".
/// * **Typed failures, never panics**: transport failures are
///   [`PlanError::Transport`], malformed or truncated response lines are
///   [`PlanError::Protocol`], and protocol-level `error` replies are
///   [`PlanError::Backend`].
/// * **Lazy reconnection**: the connection is opened on first use and
///   dropped after any transport or protocol failure (the stream
///   position is unknown after one); the next request dials fresh, so a
///   restarted backend is picked up automatically.
#[derive(Debug)]
pub struct RemotePlanner {
    addr: ListenAddr,
    policy: RetryPolicy,
    label: String,
    client: Mutex<Option<Client>>,
    served: AtomicU64,
    hits: AtomicU64,
    warm_starts: AtomicU64,
    cold: AtomicU64,
    heuristic: AtomicU64,
    retries: AtomicU64,
    errors: AtomicU64,
}

impl RemotePlanner {
    /// A planner for the daemon at `addr` with the default
    /// [`RetryPolicy`]. No connection is made until the first request.
    pub fn new(addr: ListenAddr) -> Self {
        RemotePlanner {
            label: format!("remote({addr})"),
            addr,
            policy: RetryPolicy::default(),
            client: Mutex::new(None),
            served: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            cold: AtomicU64::new(0),
            heuristic: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Overrides the busy retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The backend address.
    pub fn addr(&self) -> &ListenAddr {
        &self.addr
    }

    fn failure(&self, error: PlanError) -> PlanError {
        self.errors.fetch_add(1, Ordering::Relaxed);
        error
    }
}

/// Maps a client I/O failure onto the typed planner error space:
/// `InvalidData` is the client's marker for an unparseable response
/// line, everything else (EOF before a response, resets, timeouts) is
/// transport.
fn io_plan_error(error: &io::Error) -> PlanError {
    if error.kind() == io::ErrorKind::InvalidData {
        PlanError::Protocol(error.to_string())
    } else {
        PlanError::Transport(error.to_string())
    }
}

impl Planner for RemotePlanner {
    fn name(&self) -> &str {
        &self.label
    }

    fn plan(&self, instance: &QueryInstance) -> Result<ServedPlan, PlanError> {
        let text = format_instance(instance);
        let mut slot = self.client.lock().expect("client lock");
        let mut client = match slot.take() {
            Some(client) => client,
            None => Client::connect(&self.addr).map_err(|e| {
                self.failure(PlanError::Transport(format!("cannot connect to {}: {e}", self.addr)))
            })?,
        };
        let (response, busy_replies) = match client.optimize_text_with_retry(&text, &self.policy) {
            Ok(outcome) => outcome,
            // The connection is dropped: after a transport error or a
            // line that does not parse, the stream position is unknown.
            Err(e) => return Err(self.failure(io_plan_error(&e))),
        };
        self.retries.fetch_add(u64::from(busy_replies), Ordering::Relaxed);
        match response {
            Response::Served { source, cost, fingerprint, plan, tier } => {
                *slot = Some(client); // request/response complete: reusable
                let plan = Plan::new(plan).map_err(|e| {
                    self.failure(PlanError::Protocol(format!("served plan is invalid: {e}")))
                })?;
                self.served.fetch_add(1, Ordering::Relaxed);
                match source {
                    ServeSource::CacheHit => self.hits.fetch_add(1, Ordering::Relaxed),
                    ServeSource::WarmStart => self.warm_starts.fetch_add(1, Ordering::Relaxed),
                    ServeSource::Cold => self.cold.fetch_add(1, Ordering::Relaxed),
                };
                self.heuristic.fetch_add(u64::from(tier == PlanTier::Heuristic), Ordering::Relaxed);
                // The gap is tier-implied: an exact plan is proven
                // optimal, a heuristic one is unquantified until its
                // backend-side refinement lands.
                let optimality_gap = match tier {
                    PlanTier::Exact => Some(0.0),
                    PlanTier::Heuristic => None,
                };
                Ok(ServedPlan {
                    plan,
                    cost,
                    source,
                    fingerprint,
                    tier,
                    optimality_gap,
                    search: None,
                })
            }
            Response::Busy { retry_after_ms } => {
                *slot = Some(client); // the server stays in framing sync
                Err(self.failure(PlanError::Busy { retry_after_ms }))
            }
            Response::Error { message } => {
                *slot = Some(client); // error replies keep the connection usable
                Err(self.failure(PlanError::Backend(message)))
            }
            // A pong/stats/draining reply to an optimize request means
            // the framing is out of sync: drop the connection.
            other => Err(self.failure(PlanError::Protocol(format!(
                "unexpected response to an optimize request: `{}`",
                other.to_line()
            )))),
        }
    }

    fn stats(&self) -> PlannerStats {
        PlannerStats {
            served: self.served.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            heuristic: self.heuristic.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            ..PlannerStats::default()
        }
    }

    fn drain(&self) -> Result<(), PlanError> {
        *self.client.lock().expect("client lock") = None;
        Ok(())
    }
}
