//! The event-driven connection core: one reactor thread owns every
//! connection socket through the vendored epoll poller, replacing the
//! old thread-per-connection model (blocking `BufReader`s polling a
//! shutdown flag on read timeouts).
//!
//! ```text
//!                        ┌────────────── reactor thread ──────────────┐
//!  clients ──connect──▶  │ epoll: listener + every connection socket  │
//!                        │  · accept, per-connection read/write bufs  │
//!                        │  · parse frames, admit jobs (try_send) ────┼──▶ bounded queue
//!                        │  · order replies, coalesce + flush writes  │      │
//!                        │  ◀──── waker pipe ◀── completions ◀────────┼── worker pool
//!                        └────────────────────────────────────────────┘
//! ```
//!
//! Because admission happens inline on the reactor (not per-connection
//! threads racing a shared counter), the `outstanding` gauge is
//! incremented *before* `try_send` and rolled back on the
//! `Full`/`Disconnected` paths, while the worker decrements only after
//! planning — increment always precedes decrement, so the counter can
//! no longer underflow and pin `busy` hints at the 16× cap.
//!
//! **Pipelining.** Each connection keeps an ordered queue of response
//! slots, one per request in arrival order. Immediate verbs (`ping`,
//! `stats`, exports…) fill their slot inline; optimize jobs fill theirs
//! when the worker's completion comes back over the waker pipe. Only
//! the contiguous answered prefix is moved to the write buffer, so a
//! client may send N instance documents before reading N responses and
//! always receives them in request order. Responses that become ready
//! together are flushed with one `write` call — the frame/syscall
//! amortization the pipelined wire grammar exists for.
//!
//! Per-connection panics are caught ([`std::panic::catch_unwind`]), and
//! counted in `ServerStats::connection_panics` with one stderr line
//! each — a poisoned connection is torn down, the server keeps serving.

use crate::net::{FaultyStream, Listener};
use crate::protocol::{
    ExportRequest, Response, IMPORT_PARTITION_VERB, METRICS_END, METRICS_VERB, REQUEST_END,
};
use crate::server::{load_aware_retry_ms, Completion, Inner, Job, MAX_REQUEST_BYTES};
use crossbeam::channel::{self, TrySendError};
use dsq_core::{parse_instance, PlanSnapshot};
use dsq_service::{FleetConfig, HashRing};
use dsq_telemetry::{log::Level, log_event, Stopwatch};
use reactor::{Events, Interest, Poll, Token};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::fd::RawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// The listener's registration token.
pub(crate) const TOKEN_LISTENER: Token = Token(0);
/// The completion waker's registration token.
pub(crate) const TOKEN_WAKER: Token = Token(1);
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: usize = 2;

/// Per-pump cap on bytes read from one connection, so a blasting client
/// cannot starve its thousand idle neighbours (level triggering
/// re-delivers the remainder on the next poll).
const READ_BUDGET: usize = 256 * 1024;

/// Reading pauses while a connection's unflushed responses exceed this
/// (a client pipelining requests without draining responses).
const WRITE_HIGH_WATER: usize = 1 << 20;

/// How long a graceful drain waits for peers that stopped reading
/// before force-closing their connections.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// One response slot in a connection's pipeline: filled inline for
/// immediate verbs, filled by a worker completion (matched on `seq`)
/// for admitted optimize jobs. `rollback` carries the cache entries an
/// export removed, restored if the connection dies before the payload
/// is fully flushed.
struct Slot {
    seq: u64,
    payload: Option<Vec<u8>>,
    rollback: Option<PlanSnapshot>,
    /// Started when the payload lands (inline verb or worker
    /// completion); retired into the flush-stage histogram once the
    /// response's last byte reaches the socket.
    ready_at: Option<Stopwatch>,
}

/// What the connection's framing layer is in the middle of reading.
enum ReadMode {
    /// Between requests: the next line is a verb or document header.
    Line,
    /// Accumulating a `dsq-instance` document up to its `end` marker.
    Document(Vec<u8>),
    /// Accumulating an `import-partition` snapshot document up to its
    /// `end-snapshot` trailer.
    Import(Vec<u8>),
}

struct Conn {
    stream: FaultyStream,
    fd: RawFd,
    token: usize,
    read_buf: Vec<u8>,
    parse_pos: usize,
    mode: ReadMode,
    /// Next request sequence number; every request gets one, in arrival
    /// order, and responses are released strictly in that order.
    next_seq: u64,
    pending: VecDeque<Slot>,
    /// Admitted optimize jobs not yet completed — the per-connection
    /// pipelining depth, capped at `ServerConfig::max_pipeline`.
    jobs_in_flight: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Cumulative bytes ever moved into `write_buf` / flushed to the
    /// socket; an export is delivered once `flushed_bytes` passes its
    /// enqueue watermark.
    enqueued_bytes: u64,
    flushed_bytes: u64,
    /// Undelivered exports: `(watermark, removed entries)`.
    exports: Vec<(u64, PlanSnapshot)>,
    /// Flush-stage timers awaiting delivery: `(watermark, started when
    /// the response became ready)` — retired like `exports`, by the
    /// flushed-bytes watermark passing them.
    pending_flush: Vec<(u64, Stopwatch)>,
    read_closed: bool,
    close_after_flush: bool,
    /// Framing is lost (oversized document mid-stream): stop parsing,
    /// flush the error, close.
    poisoned: bool,
    /// Transport is gone: tear down without flushing.
    dead: bool,
    /// The currently registered `(readable, writable)` interest.
    interest: (bool, bool),
}

fn render(response: &Response) -> Vec<u8> {
    let mut line = response.to_line().into_bytes();
    line.push(b'\n');
    line
}

impl Conn {
    fn new(stream: FaultyStream, token: usize) -> Conn {
        let fd = stream.raw_fd();
        Conn {
            stream,
            fd,
            token,
            read_buf: Vec::new(),
            parse_pos: 0,
            mode: ReadMode::Line,
            next_seq: 0,
            pending: VecDeque::new(),
            jobs_in_flight: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            enqueued_bytes: 0,
            flushed_bytes: 0,
            exports: Vec::new(),
            pending_flush: Vec::new(),
            read_closed: false,
            close_after_flush: false,
            poisoned: false,
            dead: false,
            interest: (true, false),
        }
    }

    fn push_slot(&mut self, payload: Option<Vec<u8>>, rollback: Option<PlanSnapshot>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ready_at = payload.is_some().then(Stopwatch::start);
        self.pending.push_back(Slot { seq, payload, rollback, ready_at });
        seq
    }

    fn push_ready(&mut self, response: &Response) {
        let payload = render(response);
        self.push_slot(Some(payload), None);
    }

    fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Drains socket input into `read_buf`, up to [`READ_BUDGET`].
    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let mut taken = 0;
        while taken < READ_BUDGET && !self.read_closed && !self.dead {
            match self.stream.read(&mut chunk) {
                Ok(0) => self.read_closed = true,
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    taken += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => self.dead = true,
            }
        }
    }

    /// Parses and processes every complete line buffered so far,
    /// stopping at the pipelining cap (admission backpressure).
    fn parse(&mut self, inner: &Inner, job_tx: &channel::Sender<Job>) {
        while !self.poisoned && !self.dead && !self.close_after_flush {
            if self.jobs_in_flight >= inner.max_pipeline {
                break;
            }
            let Some(offset) = self.read_buf[self.parse_pos..].iter().position(|&b| b == b'\n')
            else {
                break;
            };
            let end = self.parse_pos + offset + 1;
            let line: Vec<u8> = self.read_buf[self.parse_pos..end].to_vec();
            self.parse_pos = end;
            self.process_line(&line, inner, job_tx);
        }
        if self.parse_pos > 0 {
            self.read_buf.drain(..self.parse_pos);
            self.parse_pos = 0;
        }
    }

    fn process_line(&mut self, line: &[u8], inner: &Inner, job_tx: &channel::Sender<Job>) {
        match std::mem::replace(&mut self.mode, ReadMode::Line) {
            ReadMode::Line => {
                let text = String::from_utf8_lossy(line);
                let verb = text.trim();
                if inner.debug_panic_verb.as_deref() == Some(verb) {
                    // Test hook: a deterministic trigger for the
                    // panic-isolation path.
                    panic!("debug panic verb `{verb}` received");
                }
                match verb {
                    "" => {} // blank keep-alive line
                    "ping" => self.push_ready(&Response::Pong),
                    "stats" => self.push_ready(&Response::Stats(inner.stats().stats_line())),
                    METRICS_VERB => self.serve_metrics(inner),
                    "shutdown" => {
                        inner.request_shutdown();
                        self.push_ready(&Response::Draining);
                    }
                    v if v.starts_with("export-partition") => self.serve_export(v, inner),
                    v if v == IMPORT_PARTITION_VERB => self.mode = ReadMode::Import(Vec::new()),
                    v if v.starts_with("dsq-instance") => {
                        self.mode = ReadMode::Document(line.to_vec());
                    }
                    other => {
                        inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        self.push_ready(&Response::Error {
                            message: format!("unknown request `{other}`"),
                        });
                    }
                }
            }
            ReadMode::Document(mut doc) => {
                if String::from_utf8_lossy(line).trim() == REQUEST_END {
                    self.admit(&doc, inner, job_tx);
                } else {
                    doc.extend_from_slice(line);
                    if doc.len() > MAX_REQUEST_BYTES {
                        inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        self.push_ready(&Response::Error {
                            message: format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                        });
                        // The stream position after an oversized
                        // document is unknowable: flush the error, close.
                        self.poisoned = true;
                        self.close_after_flush = true;
                    } else {
                        self.mode = ReadMode::Document(doc);
                    }
                }
            }
            ReadMode::Import(mut doc) => {
                // The cap is checked *before* extending, on every line —
                // the trailer included — so a document can neither
                // overshoot the cap by a line nor smuggle the overshoot
                // in with `end-snapshot`.
                if doc.len() + line.len() > inner.max_import_bytes {
                    let cap = inner.max_import_bytes;
                    inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    self.push_ready(&Response::Error {
                        message: format!("partition exceeds {cap} bytes"),
                    });
                    self.poisoned = true;
                    self.close_after_flush = true;
                    return;
                }
                doc.extend_from_slice(line);
                if String::from_utf8_lossy(line).trim() == "end-snapshot" {
                    self.finish_import(&doc, inner);
                } else {
                    self.mode = ReadMode::Import(doc);
                }
            }
        }
    }

    /// Parses a complete instance document and admits it to the worker
    /// queue (or answers `busy`/`error` inline).
    fn admit(&mut self, document: &[u8], inner: &Inner, job_tx: &channel::Sender<Job>) {
        let protocol_error = |conn: &mut Conn, message: String| {
            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
            conn.push_ready(&Response::Error { message });
        };
        let Ok(text) = std::str::from_utf8(document) else {
            return protocol_error(self, "instance text is not valid UTF-8".into());
        };
        let parse_timer = Stopwatch::start();
        let instance = match parse_instance(text) {
            Ok(instance) => instance,
            Err(e) => return protocol_error(self, format!("cannot parse instance: {e}")),
        };
        parse_timer.observe(&inner.metrics.parse_ns);
        // Increment *before* `try_send`: a worker that finishes the job
        // fast always observes the increment first, so the gauge cannot
        // underflow; the `Full`/`Disconnected` paths roll it back.
        inner.outstanding.fetch_add(1, Ordering::Relaxed);
        let seq = self.next_seq;
        let job = Job { instance, conn: self.token as u64, seq, admitted_at: Stopwatch::start() };
        match job_tx.try_send(job) {
            Ok(()) => {
                inner.admitted.fetch_add(1, Ordering::Relaxed);
                self.jobs_in_flight += 1;
                self.push_slot(None, None);
                inner.pipeline_peak.fetch_max(self.pending.len() as u64, Ordering::Relaxed);
                inner.metrics.pipeline_depth.record(self.pending.len() as u64);
            }
            Err(TrySendError::Full(_)) => {
                inner.outstanding.fetch_sub(1, Ordering::Relaxed);
                inner.busy_rejections.fetch_add(1, Ordering::Relaxed);
                let retry_after_ms = load_aware_retry_ms(
                    inner.retry_after_ms,
                    inner.outstanding.load(Ordering::Relaxed),
                    inner.queue_capacity,
                );
                self.push_ready(&Response::Busy { retry_after_ms });
            }
            Err(TrySendError::Disconnected(_)) => {
                inner.outstanding.fetch_sub(1, Ordering::Relaxed);
                self.push_ready(&Response::Error { message: "server is shutting down".into() });
                self.close_after_flush = true;
            }
        }
    }

    /// Serves one `export-partition` line: validates the requested
    /// fleet layout, removes the moved partition from the cache, and
    /// queues it (header + snapshot document) as one response slot
    /// carrying its own rollback.
    fn serve_export(&mut self, verb: &str, inner: &Inner) {
        let request = match ExportRequest::parse(verb) {
            Ok(request) => request,
            Err(e) => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return self.push_ready(&Response::Error { message: e.to_string() });
            }
        };
        // Reuse the fleet-config validator: a duplicate backend address
        // would fold two ring slots onto one label and silently
        // mis-partition the keyspace.
        if let Err(e) = FleetConfig::new(0, request.backends.iter().cloned()) {
            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return self.push_ready(&Response::Error { message: e.to_string() });
        }
        let ring = HashRing::with_vnodes(&request.backends, request.vnodes);
        let keep = request.keep;
        let snapshot = inner.cache.export_partition(|fingerprint| ring.route(fingerprint) != keep);
        let entries = snapshot.entries.len() as u64;
        let mut payload = render(&Response::Partition { entries });
        payload.extend_from_slice(snapshot.to_text().as_bytes());
        self.push_slot(Some(payload), Some(snapshot));
    }

    /// Serves one `metrics` scrape: header + the registry's exposition
    /// document (serving counters folded in) + the `end-metrics`
    /// trailer, as one response slot.
    fn serve_metrics(&mut self, inner: &Inner) {
        let text = inner.metrics.exposition(&inner.stats());
        let lines = text.lines().count() as u64;
        let mut payload = render(&Response::Metrics { lines });
        payload.extend_from_slice(text.as_bytes());
        payload.extend_from_slice(METRICS_END.as_bytes());
        payload.push(b'\n');
        self.push_slot(Some(payload), None);
    }

    fn finish_import(&mut self, document: &[u8], inner: &Inner) {
        let malformed = |conn: &mut Conn, message: String| {
            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
            conn.push_ready(&Response::Error { message });
        };
        let Ok(text) = std::str::from_utf8(document) else {
            return malformed(self, "partition text is not valid UTF-8".into());
        };
        match inner.cache.restore_from_text(text) {
            Ok(restored) => {
                self.push_ready(&Response::PartitionRestored { entries: restored as u64 });
            }
            Err(e) => malformed(self, format!("cannot restore partition: {e}")),
        }
    }

    /// Fills the slot a worker completion belongs to.
    fn complete(&mut self, completion: Completion, inner: &Inner) {
        self.jobs_in_flight = self.jobs_in_flight.saturating_sub(1);
        let response = match completion.result {
            Ok(served) => Response::Served {
                source: served.source,
                cost: served.cost,
                fingerprint: served.fingerprint,
                plan: served.plan.indices(),
                tier: served.tier,
            },
            // A planner failure (unreachable for the local cached
            // planner) degrades to a protocol error, exactly like the
            // old per-connection reply path.
            Err(e) => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error { message: e.to_string() }
            }
        };
        if let Some(slot) = self.pending.iter_mut().find(|s| s.seq == completion.seq) {
            slot.payload = Some(render(&response));
            slot.ready_at = Some(Stopwatch::start());
        }
    }

    /// Moves the contiguous answered prefix of the pipeline into the
    /// write buffer — response order per connection is request order,
    /// always.
    fn promote(&mut self, inner: &Inner) {
        let mut promoted = 0u64;
        while self.pending.front().is_some_and(|slot| slot.payload.is_some()) {
            let slot = self.pending.pop_front().expect("front checked");
            let payload = slot.payload.expect("payload checked");
            self.write_buf.extend_from_slice(&payload);
            self.enqueued_bytes += payload.len() as u64;
            if let Some(snapshot) = slot.rollback {
                self.exports.push((self.enqueued_bytes, snapshot));
            }
            if let Some(ready_at) = slot.ready_at {
                self.pending_flush.push((self.enqueued_bytes, ready_at));
            }
            promoted += 1;
        }
        if promoted > 0 {
            inner.metrics.coalesced.record(promoted);
        }
    }

    /// Writes as much of the buffered responses as the socket accepts.
    /// Responses promoted together leave in one `write` call — the
    /// syscall coalescing pipelined exchanges are measured by.
    fn flush(&mut self, inner: &Inner) {
        while self.write_pos < self.write_buf.len() && !self.dead {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => self.dead = true,
                Ok(n) => {
                    self.write_pos += n;
                    self.flushed_bytes += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => self.dead = true,
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        let _ = self.stream.flush();
        // Exports fully on the wire no longer need their rollback, and
        // responses fully on the wire retire their flush-stage timers.
        let flushed = self.flushed_bytes;
        self.exports.retain(|(watermark, _)| *watermark > flushed);
        self.pending_flush.retain(|(watermark, ready_at)| {
            if *watermark > flushed {
                return true;
            }
            ready_at.observe(&inner.metrics.flush_ns);
            false
        });
    }

    /// Whether the connection is finished and should be torn down.
    fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        let quiescent = self.pending.is_empty() && self.write_backlog() == 0;
        quiescent && (self.close_after_flush || self.read_closed)
    }

    /// Re-registers the fd when the desired readiness interest changed:
    /// reads pause at the pipelining cap or a flooded write buffer,
    /// write interest exists only while responses wait for socket space.
    fn update_interest(&mut self, poll: &Poll, inner: &Inner) {
        let readable = !self.read_closed
            && !self.poisoned
            && !self.close_after_flush
            && self.jobs_in_flight < inner.max_pipeline
            && self.write_backlog() < WRITE_HIGH_WATER;
        let writable = self.write_backlog() > 0;
        if self.interest == (readable, writable) {
            return;
        }
        let interest = match (readable, writable) {
            (true, true) => Interest::READABLE | Interest::WRITABLE,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            (false, false) => Interest::NONE,
        };
        if poll.reregister(self.fd, Token(self.token), interest).is_ok() {
            self.interest = (readable, writable);
        }
    }
}

/// Tears one connection down: deregisters the fd and restores every
/// export the peer did not fully receive, so a handoff that dies on the
/// wire does not lose the partition (the mover retries).
fn teardown(conn: Conn, inner: &Inner, poll: &Poll) {
    let _ = poll.deregister(conn.fd);
    let flushed = conn.flushed_bytes;
    let undelivered = conn
        .exports
        .into_iter()
        .filter_map(|(watermark, snapshot)| (watermark > flushed).then_some(snapshot))
        .chain(conn.pending.into_iter().filter_map(|slot| slot.rollback));
    for snapshot in undelivered {
        match inner.cache.restore(&snapshot) {
            Ok(_) => {
                inner.export_rollbacks.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                // The rollback itself failing loses the partition: say
                // so instead of silently dropping the entries.
                inner.export_rollback_errors.fetch_add(1, Ordering::Relaxed);
                log_event!(
                    Level::Error,
                    "reactor",
                    "failed to restore {} undelivered exported entries: {e}",
                    snapshot.entries.len()
                );
            }
        }
    }
}

fn accept_all(
    listener: &Listener,
    poll: &Poll,
    inner: &Inner,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
) {
    loop {
        match listener.try_accept() {
            Ok(Some(stream)) => {
                let index = inner.connections.fetch_add(1, Ordering::Relaxed);
                // Each connection rolls its own deterministic chaos dice
                // (sub-seeded by accept index), so a chaos run replays
                // identically regardless of event interleaving.
                let stream =
                    FaultyStream::new(stream, inner.chaos.map(|p| p.for_connection(index)));
                let token = *next_token;
                *next_token += 1;
                let conn = Conn::new(stream, token);
                if poll.register(conn.fd, Token(token), Interest::READABLE).is_ok() {
                    conns.insert(token, conn);
                }
                // A failed registration drops the connection on the
                // floor — the client sees a clean close.
            }
            Ok(None) => return,
            // Accept errors (e.g. a client that vanished between the
            // kernel queue and us) are per-connection, not fatal.
            Err(_) => return,
        }
    }
}

/// The reactor: owns the listener, the poller, and every connection
/// until shutdown. Exits once draining is complete (every admitted
/// request answered and flushed, every connection closed).
pub(crate) fn run(listener: Listener, poll: Poll, inner: &Inner, job_tx: &channel::Sender<Job>) {
    let mut events = Events::with_capacity(1024);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut draining = false;
    let mut drain_deadline = None;

    loop {
        // The timeout is a heartbeat, not the latency floor: workers
        // and `Server::shutdown` wake the poll through the pipe.
        let _ = poll.poll(&mut events, Some(inner.poll_interval));

        let mut accept_ready = false;
        // Connections touched this tick: by a socket event (with its
        // readiness), by a completion, or by the start of a drain.
        let mut dirty: Vec<(usize, bool)> = Vec::new();
        let mark = |dirty: &mut Vec<(usize, bool)>, token: usize, readable: bool| match dirty
            .iter_mut()
            .find(|(t, _)| *t == token)
        {
            Some((_, r)) => *r |= readable,
            None => dirty.push((token, readable)),
        };
        for event in events.iter() {
            match event.token() {
                TOKEN_LISTENER => accept_ready = true,
                TOKEN_WAKER => {
                    inner.waker.drain();
                }
                Token(token) => mark(&mut dirty, token, event.is_readable()),
            }
        }

        if !draining && inner.shutdown.load(Ordering::SeqCst) {
            draining = true;
            drain_deadline = Some(Instant::now() + DRAIN_GRACE);
            // Stop reading; answer what was admitted; flush; close.
            for (token, conn) in &mut conns {
                conn.close_after_flush = true;
                mark(&mut dirty, *token, false);
            }
        }

        if accept_ready && !draining {
            accept_all(&listener, &poll, inner, &mut conns, &mut next_token);
        }

        // Hand worker completions back to their connections. A
        // completion for a connection that died mid-request is dropped,
        // exactly like the old per-connection reply channel.
        let completed = std::mem::take(&mut *inner.completions.lock().expect("completion lock"));
        for completion in completed {
            let token = completion.conn as usize;
            if let Some(conn) = conns.get_mut(&token) {
                conn.complete(completion, inner);
                mark(&mut dirty, token, false);
            }
        }

        for (token, readable) in dirty {
            let Some(mut conn) = conns.remove(&token) else { continue };
            // One panicking connection must not take the reactor (and
            // with it every other connection) down.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if readable {
                    conn.fill();
                }
                conn.parse(inner, job_tx);
                conn.promote(inner);
                conn.flush(inner);
            }));
            if outcome.is_err() {
                inner.connection_panics.fetch_add(1, Ordering::Relaxed);
                log_event!(
                    Level::Error,
                    "reactor",
                    "connection handler panicked; closing the connection"
                );
                teardown(conn, inner, &poll);
                continue;
            }
            if conn.finished() {
                teardown(conn, inner, &poll);
                continue;
            }
            conn.update_interest(&poll, inner);
            conns.insert(token, conn);
        }

        if draining {
            if conns.is_empty() {
                return;
            }
            if drain_deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                // Peers that stopped reading their responses: close
                // anyway (their undelivered exports roll back).
                for (_, conn) in conns.drain() {
                    teardown(conn, inner, &poll);
                }
                return;
            }
        }
    }
}
