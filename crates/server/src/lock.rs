//! An advisory PID lock guarding a snapshot file against the
//! last-writer-wins hazard: two live processes pointed at the same
//! `--snapshot` / `--snapshot-out` path would silently overwrite each
//! other's atomic renames, so whoever persists to a snapshot path first
//! takes `<path>.lock` and everyone else refuses to start.

use dsq_telemetry::log::Level;
use dsq_telemetry::log_event;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Lock-file path guarding `snapshot`: the snapshot path with `.lock`
/// appended (not substituted, so `plans.dsqc` and `plans.tmp` cannot
/// collide on one lock).
pub fn lock_path(snapshot: &Path) -> PathBuf {
    PathBuf::from(format!("{}.lock", snapshot.display()))
}

/// A held snapshot lock; dropping it releases the lock file.
///
/// The lock is **advisory** (nothing stops a process that does not
/// check it) and PID-based: the file holds the owner's PID, and a lock
/// whose owner is no longer alive (`/proc/<pid>` gone — a crashed
/// server) is stale and taken over (with a `DSQ_LOG`-gated warning
/// naming the dead holder's pid), so an unclean shutdown never wedges
/// the snapshot path.
pub struct SnapshotLock {
    path: PathBuf,
}

impl fmt::Debug for SnapshotLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotLock").field("path", &self.path).finish()
    }
}

fn pid_is_alive(pid: u32) -> bool {
    if !Path::new("/proc").exists() {
        // No procfs (non-Linux Unix): liveness cannot be probed, so err
        // on the safe side — treat every holder as alive and leave
        // genuinely stale locks to the operator, rather than stealing a
        // live one and resurrecting the last-writer-wins hazard.
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

impl SnapshotLock {
    /// Takes the lock guarding `snapshot`.
    ///
    /// # Errors
    ///
    /// `AddrInUse` naming the holder when a **live** process owns the
    /// lock (a holder that is this process counts: two servers in one
    /// process must not share a snapshot path either); other I/O errors
    /// from creating or stealing the lock file.
    pub fn acquire(snapshot: &Path) -> io::Result<SnapshotLock> {
        let path = lock_path(snapshot);
        // One retry: the first pass may find and steal a stale lock,
        // the second recreates it. Losing a *race* on the recreate means
        // another live process took it, which the second pass reports.
        for _ in 0..2 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    writeln!(file, "{}", std::process::id())?;
                    return Ok(SnapshotLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    Self::steal_if_stale(snapshot, &path)?;
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!("snapshot {} lock was taken while stealing a stale one", snapshot.display()),
        ))
    }

    /// Removes the lock file at `path` iff its holder is dead, refusing
    /// with `AddrInUse` for a live holder. Plain unlink-after-read would
    /// race two stealers into deleting each other's *fresh* locks, so
    /// the existing file is first **renamed aside** (atomic — exactly
    /// one racer wins; the losers see `NotFound` and retry the create)
    /// and only then inspected: if the rename grabbed a live lock after
    /// all (the holder recreated it inside our race window), it is
    /// linked back into place before refusing.
    fn steal_if_stale(snapshot: &Path, path: &Path) -> io::Result<()> {
        let aside = PathBuf::from(format!("{}.steal.{}", path.display(), std::process::id()));
        match std::fs::rename(path, &aside) {
            Ok(()) => {}
            // Another racer renamed it first; let the caller's retry
            // find whatever lock exists now.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        }
        let holder =
            std::fs::read_to_string(&aside).ok().and_then(|text| text.trim().parse::<u32>().ok());
        if let Some(pid) = holder {
            if pid_is_alive(pid) {
                // `hard_link` restores without clobbering a lock someone
                // created meanwhile (it fails on an existing target).
                let _ = std::fs::hard_link(&aside, path);
                let _ = std::fs::remove_file(&aside);
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!(
                        "snapshot {} is locked by live process {pid} (lock file {})",
                        snapshot.display(),
                        path.display()
                    ),
                ));
            }
        }
        // Dead holder or unreadable content: a stale lock from an
        // unclean shutdown. Discard it — but say so: a steal is an
        // operator-visible event (it implies an unclean shutdown
        // happened), and the stale pid is the breadcrumb for finding
        // which process died.
        match holder {
            Some(pid) => log_event!(
                Level::Warn,
                "snapshot",
                "stealing stale snapshot lock {} (holder pid {pid} is dead)",
                path.display()
            ),
            None => log_event!(
                Level::Warn,
                "snapshot",
                "stealing stale snapshot lock {} (unreadable holder pid)",
                path.display()
            ),
        }
        std::fs::remove_file(&aside)
    }
}

impl Drop for SnapshotLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_snapshot(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dsq-lock-{tag}-{}.dsqc", std::process::id()))
    }

    #[test]
    fn acquire_release_roundtrip() {
        let snapshot = temp_snapshot("roundtrip");
        let lock = SnapshotLock::acquire(&snapshot).expect("free path locks");
        assert!(lock_path(&snapshot).exists());
        let content = std::fs::read_to_string(lock_path(&snapshot)).expect("lock readable");
        assert_eq!(content.trim(), std::process::id().to_string());
        drop(lock);
        assert!(!lock_path(&snapshot).exists(), "drop releases the lock");
        // Re-acquirable after release.
        drop(SnapshotLock::acquire(&snapshot).expect("released path relocks"));
    }

    #[test]
    fn live_holder_refuses_second_acquire() {
        let snapshot = temp_snapshot("live");
        let _held = SnapshotLock::acquire(&snapshot).expect("locks");
        let err = SnapshotLock::acquire(&snapshot).expect_err("held lock refuses");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        let message = err.to_string();
        assert!(
            message.contains(&format!("locked by live process {}", std::process::id())),
            "{message}"
        );
    }

    #[test]
    fn stale_locks_are_stolen() {
        let snapshot = temp_snapshot("stale");
        let lock_file = lock_path(&snapshot);
        // A PID far above any live one (kernel pid_max caps near 4M) —
        // the holder is certainly dead.
        std::fs::write(&lock_file, "999999999\n").expect("plant stale lock");
        let lock = SnapshotLock::acquire(&snapshot).expect("stale lock is stolen");
        let content = std::fs::read_to_string(&lock_file).expect("lock readable");
        assert_eq!(content.trim(), std::process::id().to_string(), "lock now ours");
        drop(lock);
    }

    #[test]
    fn unreadable_locks_count_as_stale() {
        let snapshot = temp_snapshot("garbage");
        std::fs::write(lock_path(&snapshot), "not a pid\n").expect("plant garbage lock");
        drop(SnapshotLock::acquire(&snapshot).expect("garbage lock is stolen"));
        assert!(!lock_path(&snapshot).exists());
    }
}
