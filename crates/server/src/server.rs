//! The daemon itself: the epoll reactor owning every connection (see
//! [`event_loop`](crate::event_loop)), admission control, the worker
//! pool, and background cache snapshots.

use crate::event_loop::{self, TOKEN_WAKER};
use crate::lock::SnapshotLock;
use crate::metrics::ServerMetrics;
use crate::net::{FaultProfile, ListenAddr, Listener};
use crate::protocol::StatsLine;
use crossbeam::channel;
use dsq_core::{BnbConfig, QueryInstance};
use dsq_service::{
    CacheConfig, CacheStats, CachedPlanner, PlanCache, PlanError, Planner, ServedPlan,
    TieredPlanner, TieredStats,
};
use dsq_telemetry::Stopwatch;
use std::fmt;
use std::io;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Requests larger than this are rejected and the connection closed (the
/// stream position after an oversized document is unknowable).
pub(crate) const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Default size cap on an `import-partition` snapshot document — more
/// generous than [`MAX_REQUEST_BYTES`]: a partition carries one instance
/// text per entry, and a handoff from a large cache legitimately
/// outweighs any single optimize request. Configurable per server via
/// [`ServerConfig::max_import_bytes`].
const DEFAULT_MAX_IMPORT_BYTES: usize = 8 << 20;

/// Default cap on admitted-but-unanswered requests per connection (see
/// [`ServerConfig::max_pipeline`]).
const DEFAULT_MAX_PIPELINE: usize = 64;

/// Configuration of a [`Server`]. Passive struct; fields are public.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub workers: NonZeroUsize,
    /// Bound of the admission queue: requests waiting for a worker.
    /// A request arriving while the queue is full is answered `busy`
    /// immediately instead of being buffered (so total in-flight work is
    /// bounded by `queue_capacity + workers`).
    pub queue_capacity: usize,
    /// **Base** backoff hint attached to `busy` responses, in
    /// milliseconds; the wire hint is load-aware — scaled by how much
    /// admitted work is outstanding relative to the queue capacity (see
    /// [`load_aware_retry_ms`]), so clients back off harder the deeper
    /// the backlog.
    pub retry_after_ms: u64,
    /// Optimizer configuration for every search (cold or warm).
    pub bnb: BnbConfig,
    /// Plan-cache configuration (shards, capacity, quantization,
    /// validation tolerance, probes).
    pub cache: CacheConfig,
    /// Snapshot file for cache persistence: restored at startup when it
    /// exists (warm restart), rewritten every
    /// [`snapshot_interval`](Self::snapshot_interval) and once more on
    /// shutdown. `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Period of the background snapshot writer.
    pub snapshot_interval: Duration,
    /// Heartbeat of the reactor's poll: the upper bound on how stale the
    /// shutdown flag can go unobserved when no socket event or worker
    /// wakeup arrives first (events and completions wake the reactor
    /// immediately).
    pub poll_interval: Duration,
    /// Two-tier anytime serving: cache misses are answered immediately
    /// with a greedy heuristic plan (tier 1, `tier heur` on the wire)
    /// while a background pool refines them to exact and upgrades the
    /// cache entry in place — later hits on the same key serve the
    /// proven-optimal plan. Off by default: the classic path answers
    /// every miss with the exact search.
    pub tiered: bool,
    /// Deterministic fault injection on every connection's response
    /// path (drops, delays, truncations — see
    /// [`FaultProfile`](crate::FaultProfile)). `None` (the default)
    /// serves cleanly; chaos testing and the `--chaos` CLI flag set it.
    pub chaos: Option<FaultProfile>,
    /// Per-connection cap on admitted-but-unanswered requests (the
    /// pipelining depth). A connection at the cap stops being read until
    /// a response frees a slot — backpressure, not an error.
    pub max_pipeline: usize,
    /// Size cap on an `import-partition` snapshot document, checked
    /// before every appended line (the trailer included).
    pub max_import_bytes: usize,
    /// Test hook: a request verb that makes the connection handler
    /// panic, exercising the reactor's panic isolation
    /// (`ServerStats::connection_panics`) deterministically. `None`
    /// (the default, and the only sensible production value) disables
    /// it.
    pub debug_panic_verb: Option<String>,
}

impl Default for ServerConfig {
    /// One worker (scale explicitly on multi-core hosts), a 64-slot
    /// admission queue, 50 ms retry hint, paper optimizer configuration,
    /// the default cache with **two probes** (the daemon faces drifting
    /// traffic, where multi-probe lookup pays for itself), no
    /// persistence, 30 s snapshot period, a 64-deep pipeline cap.
    fn default() -> Self {
        ServerConfig {
            workers: NonZeroUsize::new(1).expect("non-zero literal"),
            queue_capacity: 64,
            retry_after_ms: 50,
            bnb: BnbConfig::paper(),
            cache: CacheConfig { probes: 2, ..CacheConfig::default() },
            snapshot_path: None,
            snapshot_interval: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
            tiered: false,
            chaos: None,
            max_pipeline: DEFAULT_MAX_PIPELINE,
            max_import_bytes: DEFAULT_MAX_IMPORT_BYTES,
            debug_panic_verb: None,
        }
    }
}

/// Aggregate serving counters, cache statistics included.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests rejected with `busy` by admission control.
    pub busy_rejections: u64,
    /// Requests answered with `error` (unparseable instances, unknown
    /// verbs, oversized documents).
    pub protocol_errors: u64,
    /// Entries restored from the snapshot file at startup.
    pub restored_entries: u64,
    /// Background + final snapshots written successfully.
    pub snapshots_written: u64,
    /// Snapshot writes that failed (I/O errors are counted, not fatal).
    pub snapshot_errors: u64,
    /// Admitted-but-unfinished requests right now (queued + executing);
    /// a gauge, not a lifetime counter. Returns to zero on an idle
    /// server — the regression sentinel for the old underflow race that
    /// wrapped it to `usize::MAX` and pinned every `busy` hint at the
    /// 16× cap.
    pub outstanding: u64,
    /// Deepest per-connection response pipeline observed (requests
    /// admitted or answered ahead of the client reading). Greater than
    /// one proves pipelined service actually overlapped requests.
    pub pipeline_peak: u64,
    /// Connection handlers that panicked (each logged to stderr, the
    /// connection closed, the server kept serving).
    pub connection_panics: u64,
    /// Exported partitions restored into the cache because the
    /// connection died before the export was fully delivered.
    pub export_rollbacks: u64,
    /// Export rollbacks that themselves failed — exported entries were
    /// lost (each is also logged to stderr).
    pub export_rollback_errors: u64,
    /// The plan cache's own counters.
    pub cache: CacheStats,
    /// Refinement counters of the two-tier path; `None` when the server
    /// runs the classic exact-only configuration.
    pub tiered: Option<TieredStats>,
}

impl ServerStats {
    /// Every counter as a stable `(group, token, value)` table — the
    /// **single source** for the human [`Display`](fmt::Display) form
    /// and for the counters folded into the `metrics` exposition
    /// (`server.<group>.<token>`). Tokens are appended here once and
    /// flow to both renderings; PRs 6–8 grew them ad hoc in each.
    ///
    /// Rates are carried as integer basis points (`*-bp`, 1/100 of a
    /// percent) so the table stays `u64` end to end.
    pub fn token_table(&self) -> Vec<(&'static str, &'static str, u64)> {
        let mut table = vec![
            ("serve", "requests", self.cache.requests()),
            ("serve", "connections", self.connections),
            ("serve", "hits", self.cache.hits),
            ("serve", "probe2-hits", self.cache.probe2_hits),
            ("serve", "warm-starts", self.cache.warm_starts),
            ("serve", "cold", self.cache.misses),
            ("serve", "hit-rate-bp", (self.cache.hit_rate() * 10_000.0).round() as u64),
            ("admission", "admitted", self.admitted),
            ("admission", "busy-rejections", self.busy_rejections),
            ("admission", "protocol-errors", self.protocol_errors),
            ("cache", "entries", self.cache.entries as u64),
            ("cache", "evictions", self.cache.evictions),
            ("cache", "insertions", self.cache.insertions),
            ("cache", "heuristic-entries", self.cache.heuristic_entries as u64),
            ("snapshots", "restored", self.restored_entries),
            ("snapshots", "written", self.snapshots_written),
            ("snapshots", "errors", self.snapshot_errors),
            ("reactor", "pipeline-peak", self.pipeline_peak),
            ("reactor", "outstanding", self.outstanding),
            ("reactor", "connection-panics", self.connection_panics),
            ("reactor", "export-rollbacks", self.export_rollbacks),
            ("reactor", "export-rollback-errors", self.export_rollback_errors),
        ];
        if let Some(tiered) = &self.tiered {
            table.extend([
                ("tiered", "heuristic-served", tiered.heuristic_served),
                ("tiered", "refined", tiered.refined),
                ("tiered", "refine-skipped", tiered.refine_skipped),
                ("tiered", "refine-dropped", tiered.refine_dropped),
                ("tiered", "refine-nodes", tiered.refine_nodes),
                ("tiered", "max-gap-bp", (tiered.max_gap * 10_000.0).round() as u64),
            ]);
        }
        table
    }

    /// The wire-format stats payload (see
    /// [`protocol`](crate::protocol)).
    pub fn stats_line(&self) -> StatsLine {
        StatsLine {
            requests: self.cache.requests(),
            hits: self.cache.hits,
            probe2_hits: self.cache.probe2_hits,
            warm_starts: self.cache.warm_starts,
            cold: self.cache.misses,
            busy_rejections: self.busy_rejections,
            hit_rate: self.cache.hit_rate(),
            entries: self.cache.entries as u64,
        }
    }
}

impl fmt::Display for ServerStats {
    /// A prose head line (kept grep-stable for operators and the smoke
    /// scripts) followed by one `group: token value …` line per group
    /// of [`token_table`](Self::token_table) — the table IS the format,
    /// so a counter added there shows up here without hand-editing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served {} requests over {} connections ({:.1}% hit-rate)",
            self.cache.requests(),
            self.connections,
            self.cache.hit_rate() * 100.0,
        )?;
        // Tokens the head line already carries in prose.
        let in_head = [("serve", "requests"), ("serve", "connections"), ("serve", "hit-rate-bp")];
        let mut current_group = "";
        for (group, token, value) in self.token_table() {
            if in_head.contains(&(group, token)) {
                continue;
            }
            if group != current_group {
                write!(f, "\n{group}:")?;
                current_group = group;
            }
            write!(f, " {token} {value}")?;
        }
        Ok(())
    }
}

/// Load-aware `busy` hint: the configured base hint scaled by the
/// admitted-but-unfinished work (queued + executing) relative to the
/// queue capacity. At exactly a full queue and idle workers the hint is
/// the base; every additional outstanding request (workers mid-search,
/// racing admissions) pushes it up by ~`base / capacity`, so clients of
/// a deeply backlogged server back off proportionally harder. The hint
/// is monotone non-decreasing in `outstanding`, never below the base,
/// and capped at 16× the base.
pub fn load_aware_retry_ms(base_ms: u64, outstanding: usize, queue_capacity: usize) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let capacity = queue_capacity.max(1) as u64;
    let outstanding = (outstanding as u64).min(u64::MAX / base_ms.max(1)); // overflow guard
    let scaled = base_ms.saturating_mul(outstanding + 1).div_ceil(capacity + 1);
    scaled.clamp(base_ms, base_ms.saturating_mul(16))
}

/// One admitted unit of work: the parsed instance plus the connection
/// token and per-connection sequence its completion is routed back by.
pub(crate) struct Job {
    pub(crate) instance: QueryInstance,
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    /// Started at admission; read at worker dequeue — the queue-wait
    /// stage of the request's latency decomposition.
    pub(crate) admitted_at: Stopwatch,
}

/// A finished job on its way back from a worker to the reactor (over
/// [`Inner::completions`] + the waker pipe). The result is a [`Result`]
/// so a planner failure (impossible for the local cached planner, but
/// the seam is honest) degrades to a protocol `error` instead of a
/// hang.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) result: Result<ServedPlan, PlanError>,
}

/// State shared by every thread of the server.
pub(crate) struct Inner {
    pub(crate) cache: Arc<PlanCache>,
    /// The two-tier planner wrapping [`cache`](Self::cache) when the
    /// server runs in tiered mode; its refinement workers live (and are
    /// joined) inside it.
    pub(crate) tiered: Option<TieredPlanner>,
    pub(crate) bnb: BnbConfig,
    pub(crate) retry_after_ms: u64,
    pub(crate) queue_capacity: usize,
    pub(crate) max_pipeline: usize,
    pub(crate) max_import_bytes: usize,
    pub(crate) debug_panic_verb: Option<String>,
    /// This server's private telemetry: stage histograms recorded by
    /// the reactor and workers, scraped by the `metrics` verb. Private
    /// per server so co-located daemons never mix latency streams.
    pub(crate) metrics: ServerMetrics,
    /// Admitted jobs not yet completed (queued + executing) — what the
    /// load-aware `busy` hint scales with. The reactor increments
    /// *before* admission `try_send` (rolling back on the
    /// `Full`/`Disconnected` paths) and the worker decrements after
    /// planning, so the increment always precedes the decrement.
    pub(crate) outstanding: AtomicUsize,
    pub(crate) poll_interval: Duration,
    /// Fault-injection profile wrapped around every accepted
    /// connection's stream; `None` serves cleanly.
    pub(crate) chaos: Option<FaultProfile>,
    /// Finished jobs awaiting the reactor; workers push here and wake
    /// the poll through [`waker`](Self::waker).
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Wakes the reactor's poll from worker threads (and from
    /// [`Server::shutdown`]).
    pub(crate) waker: reactor::Waker,
    /// Hard-stop flag: the reactor begins its drain, and the snapshot
    /// thread exits, at the next wakeup.
    pub(crate) shutdown: AtomicBool,
    /// Soft signal set by the protocol `shutdown` verb (or the embedder):
    /// observable via [`Server::wait_shutdown_requested`], it does not by
    /// itself stop anything — the embedder decides when to drain.
    pub(crate) shutdown_requested: Mutex<bool>,
    pub(crate) signal: Condvar,
    pub(crate) connections: AtomicU64,
    pub(crate) admitted: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) restored_entries: AtomicU64,
    pub(crate) snapshots_written: AtomicU64,
    pub(crate) snapshot_errors: AtomicU64,
    pub(crate) pipeline_peak: AtomicU64,
    pub(crate) connection_panics: AtomicU64,
    pub(crate) export_rollbacks: AtomicU64,
    pub(crate) export_rollback_errors: AtomicU64,
}

impl Inner {
    pub(crate) fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            restored_entries: self.restored_entries.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            snapshot_errors: self.snapshot_errors.load(Ordering::Relaxed),
            outstanding: self.outstanding.load(Ordering::Relaxed) as u64,
            pipeline_peak: self.pipeline_peak.load(Ordering::Relaxed),
            connection_panics: self.connection_panics.load(Ordering::Relaxed),
            export_rollbacks: self.export_rollbacks.load(Ordering::Relaxed),
            export_rollback_errors: self.export_rollback_errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            tiered: self.tiered.as_ref().map(TieredPlanner::tiered_stats),
        }
    }

    pub(crate) fn request_shutdown(&self) {
        let mut requested = self.shutdown_requested.lock().expect("signal lock");
        *requested = true;
        self.signal.notify_all();
    }

    /// Writes one snapshot atomically (temp file + rename), counting the
    /// outcome instead of unwinding: persistence failures must not take
    /// the serving path down.
    fn write_snapshot(&self, path: &std::path::Path) {
        let text = self.cache.snapshot().to_text();
        let tmp = path.with_extension("tmp");
        let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
        match result {
            Ok(()) => self.snapshots_written.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.snapshot_errors.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// A running plan-serving daemon. See the [crate docs](crate) for the
/// protocol and an end-to-end example; construction is
/// [`Server::start`], teardown is [`Server::shutdown`] (graceful drain).
pub struct Server {
    inner: Arc<Inner>,
    listen_addr: ListenAddr,
    snapshot_path: Option<PathBuf>,
    /// Held for the server's lifetime when persistence is on; guards the
    /// snapshot path against a second live writer (released on drop at
    /// the end of [`shutdown`](Self::shutdown)).
    _snapshot_lock: Option<SnapshotLock>,
    /// Master sender keeping the admission queue open; dropped during
    /// shutdown so the workers drain and exit.
    job_tx: Option<channel::Sender<Job>>,
    reactor_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    snapshot_handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("listen_addr", &self.listen_addr).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr`, restores the snapshot file if one exists (warm
    /// restart), and spawns the reactor, worker pool, and snapshot
    /// writer.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or from creating the epoll poller;
    /// `AddrInUse` when another live process holds the snapshot path's
    /// `.lock` file (two writers would last-writer-wins each other's
    /// snapshots); or a snapshot file that exists but fails to
    /// parse/restore (reported as `InvalidData` — a corrupt snapshot is
    /// refused loudly rather than silently served cold).
    pub fn start(addr: &ListenAddr, config: &ServerConfig) -> io::Result<Server> {
        assert!(config.queue_capacity > 0, "the admission queue needs at least one slot");
        assert!(config.max_pipeline > 0, "the pipeline needs at least one slot");
        let listener = Listener::bind(addr)?;
        let listen_addr = listener.local_addr()?;
        let snapshot_lock = match &config.snapshot_path {
            Some(path) => Some(SnapshotLock::acquire(path)?),
            None => None,
        };

        // The reactor's poller: the listener is registered up front so
        // registration failures surface here, not on a detached thread;
        // the waker is how workers (and shutdown) interrupt the poll.
        let poll = reactor::Poll::new()?;
        poll.register(listener.raw_fd(), event_loop::TOKEN_LISTENER, reactor::Interest::READABLE)?;
        let waker = reactor::Waker::new(&poll, TOKEN_WAKER)?;

        let cache = Arc::new(PlanCache::new(config.cache.clone()));
        let tiered =
            config.tiered.then(|| TieredPlanner::new(Arc::clone(&cache), config.bnb.clone()));
        let inner = Arc::new(Inner {
            cache,
            tiered,
            bnb: config.bnb.clone(),
            retry_after_ms: config.retry_after_ms,
            queue_capacity: config.queue_capacity,
            max_pipeline: config.max_pipeline,
            max_import_bytes: config.max_import_bytes,
            debug_panic_verb: config.debug_panic_verb.clone(),
            metrics: ServerMetrics::new(),
            outstanding: AtomicUsize::new(0),
            poll_interval: config.poll_interval,
            chaos: config.chaos,
            completions: Mutex::new(Vec::new()),
            waker,
            shutdown: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            signal: Condvar::new(),
            connections: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            restored_entries: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
            pipeline_peak: AtomicU64::new(0),
            connection_panics: AtomicU64::new(0),
            export_rollbacks: AtomicU64::new(0),
            export_rollback_errors: AtomicU64::new(0),
        });

        if let Some(path) = &config.snapshot_path {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let restored = inner.cache.restore_from_text(&text).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("cannot restore snapshot {}: {e}", path.display()),
                        )
                    })?;
                    inner.restored_entries.store(restored as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {} // cold start
                Err(e) => return Err(e),
            }
        }

        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_capacity);
        // The vendored crossbeam receiver is single-consumer; the mutex
        // turns it into the shared queue the pool drains (held only for
        // the pop, never during an optimization).
        let job_rx = Arc::new(Mutex::new(job_rx));

        let worker_handles: Vec<JoinHandle<()>> = (0..config.workers.get())
            .map(|_| {
                let inner = Arc::clone(&inner);
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&inner, &job_rx))
            })
            .collect();

        let reactor_handle = {
            let inner = Arc::clone(&inner);
            let job_tx = job_tx.clone();
            std::thread::spawn(move || event_loop::run(listener, poll, &inner, &job_tx))
        };

        let snapshot_handle = config.snapshot_path.as_ref().map(|path| {
            let inner = Arc::clone(&inner);
            let path = path.clone();
            let interval = config.snapshot_interval;
            std::thread::spawn(move || snapshot_loop(&inner, &path, interval))
        });

        Ok(Server {
            inner,
            listen_addr,
            snapshot_path: config.snapshot_path.clone(),
            _snapshot_lock: snapshot_lock,
            job_tx: Some(job_tx),
            reactor_handle: Some(reactor_handle),
            worker_handles,
            snapshot_handle,
        })
    }

    /// The resolved listen address (TCP port `0` becomes the real port).
    pub fn listen_addr(&self) -> &ListenAddr {
        &self.listen_addr
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// Signals that a shutdown was requested (also triggered by the
    /// protocol `shutdown` verb). Purely advisory: the embedder observes
    /// it via [`wait_shutdown_requested`](Self::wait_shutdown_requested)
    /// and decides when to call [`shutdown`](Self::shutdown).
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }

    /// Whether a shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        *self.inner.shutdown_requested.lock().expect("signal lock")
    }

    /// A cloneable handle that can request a shutdown from another
    /// thread (e.g. a stdin-EOF watcher) while the embedder blocks in
    /// [`wait_shutdown_requested`](Self::wait_shutdown_requested).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { inner: Arc::clone(&self.inner) }
    }

    /// Blocks until a shutdown is requested (protocol verb or
    /// [`request_shutdown`](Self::request_shutdown)).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self.inner.shutdown_requested.lock().expect("signal lock");
        while !*requested {
            requested = self.inner.signal.wait(requested).expect("signal lock");
        }
    }

    /// Graceful drain: stop accepting, answer and flush every admitted
    /// request, run the queue dry, write a final snapshot, and return
    /// the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.request_shutdown();
        // The reactor observes the flag at the wakeup, drains every
        // connection (admitted requests answered, buffers flushed), and
        // exits — after this join no new jobs can be submitted…
        self.inner.waker.wake();
        if let Some(handle) = self.reactor_handle.take() {
            let _ = handle.join();
        }
        // …dropping the master sender lets the workers drain what is
        // queued and exit.
        self.job_tx = None;
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.snapshot_handle.take() {
            let _ = handle.join();
        }
        // In tiered mode, let outstanding refinements land before the
        // final snapshot: heuristic-tier entries are never persisted, so
        // an undrained queue would cost the next warm restart its plans.
        if let Some(tiered) = &self.inner.tiered {
            let _ = tiered.drain();
        }
        if let Some(path) = &self.snapshot_path {
            self.inner.write_snapshot(path);
        }
        self.inner.stats()
    }
}

/// A detached handle to a [`Server`]'s shutdown-request signal; see
/// [`Server::shutdown_handle`].
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: Arc<Inner>,
}

impl fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShutdownHandle").finish_non_exhaustive()
    }
}

impl ShutdownHandle {
    /// Equivalent to [`Server::request_shutdown`].
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }
}

fn worker_loop(inner: &Inner, job_rx: &Mutex<channel::Receiver<Job>>) {
    // Every worker fronts the shared cache through the same Planner
    // seam batch serving and the CLI use; the daemon adds admission and
    // transport around it, not its own serve logic.
    let planner = CachedPlanner::new(&inner.cache, inner.bnb.clone());
    loop {
        // Holding the lock while blocked is fine: a worker that receives
        // a job releases it before optimizing, so pickup is serialized
        // but execution is parallel.
        let job = match job_rx.lock().expect("queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: drained, exit
        };
        job.admitted_at.observe(&inner.metrics.queue_wait_ns);
        let plan_timer = Stopwatch::start();
        // A panicking planner must not wedge the job's connection (the
        // reactor waits for a completion that would otherwise never
        // come) — and must not kill the worker.
        let result = catch_unwind(AssertUnwindSafe(|| match &inner.tiered {
            Some(tiered) => tiered.plan(&job.instance),
            None => planner.plan(&job.instance),
        }))
        .unwrap_or_else(|_| Err(PlanError::Backend("planner worker panicked".into())));
        plan_timer.observe(&inner.metrics.plan_ns);
        inner.outstanding.fetch_sub(1, Ordering::Relaxed);
        inner.completions.lock().expect("completion lock").push(Completion {
            conn: job.conn,
            seq: job.seq,
            result,
        });
        inner.waker.wake();
    }
}

fn snapshot_loop(inner: &Inner, path: &std::path::Path, interval: Duration) {
    loop {
        let requested = inner.shutdown_requested.lock().expect("signal lock");
        let (_guard, _timeout) =
            inner.signal.wait_timeout(requested, interval).expect("signal lock");
        if inner.shutdown.load(Ordering::SeqCst) {
            // The final snapshot is written by `shutdown()` once the
            // workers are quiescent.
            return;
        }
        inner.write_snapshot(path);
    }
}

#[cfg(test)]
mod tests {
    use super::{load_aware_retry_ms, ServerStats};
    use dsq_service::{CacheStats, TieredStats};

    /// The Display form is generated from the token table and pinned
    /// byte for byte — the companion tripwire to the pinned wire line
    /// in the protocol tests.
    #[test]
    fn display_is_generated_from_the_token_table_and_pinned() {
        let stats = ServerStats {
            connections: 3,
            admitted: 6,
            busy_rejections: 1,
            snapshots_written: 2,
            pipeline_peak: 4,
            cache: CacheStats {
                hits: 4,
                probe2_hits: 1,
                warm_starts: 1,
                misses: 1,
                insertions: 2,
                entries: 2,
                ..CacheStats::default()
            },
            ..ServerStats::default()
        };
        assert_eq!(
            stats.to_string(),
            "served 6 requests over 3 connections (66.7% hit-rate)\n\
             serve: hits 4 probe2-hits 1 warm-starts 1 cold 1\n\
             admission: admitted 6 busy-rejections 1 protocol-errors 0\n\
             cache: entries 2 evictions 0 insertions 2 heuristic-entries 0\n\
             snapshots: restored 0 written 2 errors 0\n\
             reactor: pipeline-peak 4 outstanding 0 connection-panics 0 \
             export-rollbacks 0 export-rollback-errors 0"
        );
        // The tiered group appears exactly when the server ran tiered.
        let tiered = ServerStats { tiered: Some(TieredStats::default()), ..stats };
        let text = tiered.to_string();
        assert!(
            text.ends_with(
                "tiered: heuristic-served 0 refined 0 refine-skipped 0 refine-dropped 0 \
                 refine-nodes 0 max-gap-bp 0"
            ),
            "{text}"
        );
        assert!(!stats.to_string().contains("tiered:"));
    }

    /// Every table token is display-safe (no spaces, lowercase) and
    /// unique within its group — what keeps `group.token` exposition
    /// names collision-free.
    #[test]
    fn token_table_tokens_are_wire_safe_and_unique() {
        let stats = ServerStats { tiered: Some(TieredStats::default()), ..ServerStats::default() };
        let table = stats.token_table();
        for (group, token, _) in &table {
            for part in [*group, *token] {
                assert!(
                    part.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
                    "token {part:?} must be lowercase-dashed"
                );
            }
        }
        let mut names: Vec<String> = table.iter().map(|(g, t, _)| format!("{g}.{t}")).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate token in the table");
    }

    #[test]
    fn retry_hint_is_monotone_in_outstanding_work() {
        for capacity in [1usize, 4, 64] {
            let mut previous = 0;
            for outstanding in 0..=4 * capacity + 8 {
                let hint = load_aware_retry_ms(50, outstanding, capacity);
                assert!(hint >= previous, "hint fell {previous} -> {hint} at {outstanding}");
                assert!(hint >= 50, "never below the base");
                assert!(hint <= 50 * 16, "capped at 16x the base");
                previous = hint;
            }
        }
    }

    #[test]
    fn retry_hint_is_the_base_at_a_just_full_queue_and_scales_past_it() {
        // outstanding == capacity (queue full, workers idle): the base.
        assert_eq!(load_aware_retry_ms(50, 64, 64), 50);
        // Every extra outstanding request pushes the hint up.
        assert!(load_aware_retry_ms(50, 128, 64) > load_aware_retry_ms(50, 64, 64));
        // Small queues scale fast: full queue + one executing = 1.5x.
        assert_eq!(load_aware_retry_ms(50, 2, 1), 75);
        // A zero base stays zero (hints disabled by configuration).
        assert_eq!(load_aware_retry_ms(0, 1000, 1), 0);
        // Degenerate capacities behave.
        assert_eq!(load_aware_retry_ms(50, 0, 0), 50);
        assert_eq!(load_aware_retry_ms(u64::MAX, usize::MAX, 1), u64::MAX);
    }
}
