//! The daemon itself: accept loop, per-connection request framing,
//! admission control, the worker pool, and background cache snapshots.

use crate::lock::SnapshotLock;
use crate::net::{FaultProfile, FaultyStream, ListenAddr, Listener};
use crate::protocol::{ExportRequest, Response, StatsLine, IMPORT_PARTITION_VERB, REQUEST_END};
use crossbeam::channel::{self, TrySendError};
use dsq_core::{parse_instance, BnbConfig, QueryInstance};
use dsq_service::{
    CacheConfig, CacheStats, CachedPlanner, FleetConfig, HashRing, PlanCache, PlanError, Planner,
    ServedPlan, TieredPlanner, TieredStats,
};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Requests larger than this are rejected and the connection closed (the
/// stream position after an oversized document is unknowable).
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Size cap on an `import-partition` snapshot document — more generous
/// than [`MAX_REQUEST_BYTES`]: a partition carries one instance text
/// per entry, and a handoff from a large cache legitimately outweighs
/// any single optimize request.
const MAX_IMPORT_BYTES: usize = 8 << 20;

/// Configuration of a [`Server`]. Passive struct; fields are public.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub workers: NonZeroUsize,
    /// Bound of the admission queue: requests waiting for a worker.
    /// A request arriving while the queue is full is answered `busy`
    /// immediately instead of being buffered (so total in-flight work is
    /// bounded by `queue_capacity + workers`).
    pub queue_capacity: usize,
    /// **Base** backoff hint attached to `busy` responses, in
    /// milliseconds; the wire hint is load-aware — scaled by how much
    /// admitted work is outstanding relative to the queue capacity (see
    /// [`load_aware_retry_ms`]), so clients back off harder the deeper
    /// the backlog.
    pub retry_after_ms: u64,
    /// Optimizer configuration for every search (cold or warm).
    pub bnb: BnbConfig,
    /// Plan-cache configuration (shards, capacity, quantization,
    /// validation tolerance, probes).
    pub cache: CacheConfig,
    /// Snapshot file for cache persistence: restored at startup when it
    /// exists (warm restart), rewritten every
    /// [`snapshot_interval`](Self::snapshot_interval) and once more on
    /// shutdown. `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Period of the background snapshot writer.
    pub snapshot_interval: Duration,
    /// Granularity at which blocking accepts/reads re-check the shutdown
    /// flag; also the upper bound on drain latency per blocking call.
    pub poll_interval: Duration,
    /// Two-tier anytime serving: cache misses are answered immediately
    /// with a greedy heuristic plan (tier 1, `tier heur` on the wire)
    /// while a background pool refines them to exact and upgrades the
    /// cache entry in place — later hits on the same key serve the
    /// proven-optimal plan. Off by default: the classic path answers
    /// every miss with the exact search.
    pub tiered: bool,
    /// Deterministic fault injection on every connection's response
    /// path (drops, delays, truncations — see
    /// [`FaultProfile`](crate::FaultProfile)). `None` (the default)
    /// serves cleanly; chaos testing and the `--chaos` CLI flag set it.
    pub chaos: Option<FaultProfile>,
}

impl Default for ServerConfig {
    /// One worker (scale explicitly on multi-core hosts), a 64-slot
    /// admission queue, 50 ms retry hint, paper optimizer configuration,
    /// the default cache with **two probes** (the daemon faces drifting
    /// traffic, where multi-probe lookup pays for itself), no
    /// persistence, 30 s snapshot period.
    fn default() -> Self {
        ServerConfig {
            workers: NonZeroUsize::new(1).expect("non-zero literal"),
            queue_capacity: 64,
            retry_after_ms: 50,
            bnb: BnbConfig::paper(),
            cache: CacheConfig { probes: 2, ..CacheConfig::default() },
            snapshot_path: None,
            snapshot_interval: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
            tiered: false,
            chaos: None,
        }
    }
}

/// Aggregate serving counters, cache statistics included.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests rejected with `busy` by admission control.
    pub busy_rejections: u64,
    /// Requests answered with `error` (unparseable instances, unknown
    /// verbs, oversized documents).
    pub protocol_errors: u64,
    /// Entries restored from the snapshot file at startup.
    pub restored_entries: u64,
    /// Background + final snapshots written successfully.
    pub snapshots_written: u64,
    /// Snapshot writes that failed (I/O errors are counted, not fatal).
    pub snapshot_errors: u64,
    /// The plan cache's own counters.
    pub cache: CacheStats,
    /// Refinement counters of the two-tier path; `None` when the server
    /// runs the classic exact-only configuration.
    pub tiered: Option<TieredStats>,
}

impl ServerStats {
    /// The wire-format stats payload (see
    /// [`protocol`](crate::protocol)).
    pub fn stats_line(&self) -> StatsLine {
        StatsLine {
            requests: self.cache.requests(),
            hits: self.cache.hits,
            probe2_hits: self.cache.probe2_hits,
            warm_starts: self.cache.warm_starts,
            cold: self.cache.misses,
            busy_rejections: self.busy_rejections,
            hit_rate: self.cache.hit_rate(),
            entries: self.cache.entries as u64,
        }
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} requests over {} connections: {} hits ({} via probe 2), {} warm starts, {} cold ({:.1}% hit-rate)",
            self.cache.requests(),
            self.connections,
            self.cache.hits,
            self.cache.probe2_hits,
            self.cache.warm_starts,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
        )?;
        write!(
            f,
            "admission: {} admitted, {} busy rejections, {} protocol errors; cache: {} entries, {} evictions; snapshots: {} restored, {} written, {} errors",
            self.admitted,
            self.busy_rejections,
            self.protocol_errors,
            self.cache.entries,
            self.cache.evictions,
            self.restored_entries,
            self.snapshots_written,
            self.snapshot_errors,
        )?;
        if let Some(tiered) = &self.tiered {
            write!(
                f,
                "\ntiered: {} tier-1 answers, {} refined ({} skipped, {} dropped), max gap {:.2}%",
                tiered.heuristic_served,
                tiered.refined,
                tiered.refine_skipped,
                tiered.refine_dropped,
                tiered.max_gap * 100.0,
            )?;
        }
        Ok(())
    }
}

/// Load-aware `busy` hint: the configured base hint scaled by the
/// admitted-but-unfinished work (queued + executing) relative to the
/// queue capacity. At exactly a full queue and idle workers the hint is
/// the base; every additional outstanding request (workers mid-search,
/// racing admissions) pushes it up by ~`base / capacity`, so clients of
/// a deeply backlogged server back off proportionally harder. The hint
/// is monotone non-decreasing in `outstanding`, never below the base,
/// and capped at 16× the base.
pub fn load_aware_retry_ms(base_ms: u64, outstanding: usize, queue_capacity: usize) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let capacity = queue_capacity.max(1) as u64;
    let outstanding = (outstanding as u64).min(u64::MAX / base_ms.max(1)); // overflow guard
    let scaled = base_ms.saturating_mul(outstanding + 1).div_ceil(capacity + 1);
    scaled.clamp(base_ms, base_ms.saturating_mul(16))
}

/// One admitted unit of work: the parsed instance plus the rendezvous
/// channel its connection blocks on. The reply is a [`Result`] so a
/// planner failure (impossible for the local cached planner, but the
/// seam is honest) degrades to a protocol `error` instead of a hang.
struct Job {
    instance: QueryInstance,
    reply: channel::Sender<Result<ServedPlan, PlanError>>,
}

/// State shared by every thread of the server.
struct Inner {
    cache: Arc<PlanCache>,
    /// The two-tier planner wrapping [`cache`](Self::cache) when the
    /// server runs in tiered mode; its refinement workers live (and are
    /// joined) inside it.
    tiered: Option<TieredPlanner>,
    bnb: BnbConfig,
    retry_after_ms: u64,
    queue_capacity: usize,
    /// Admitted jobs not yet completed (queued + executing) — what the
    /// load-aware `busy` hint scales with.
    outstanding: AtomicUsize,
    poll_interval: Duration,
    /// Fault-injection profile wrapped around every accepted
    /// connection's stream; `None` serves cleanly.
    chaos: Option<FaultProfile>,
    /// Hard-stop flag: accept loop, connection readers, and the snapshot
    /// thread exit at their next poll.
    shutdown: AtomicBool,
    /// Soft signal set by the protocol `shutdown` verb (or the embedder):
    /// observable via [`Server::wait_shutdown_requested`], it does not by
    /// itself stop anything — the embedder decides when to drain.
    shutdown_requested: Mutex<bool>,
    signal: Condvar,
    connections: AtomicU64,
    admitted: AtomicU64,
    busy_rejections: AtomicU64,
    protocol_errors: AtomicU64,
    restored_entries: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_errors: AtomicU64,
}

impl Inner {
    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            restored_entries: self.restored_entries.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            snapshot_errors: self.snapshot_errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            tiered: self.tiered.as_ref().map(TieredPlanner::tiered_stats),
        }
    }

    fn request_shutdown(&self) {
        let mut requested = self.shutdown_requested.lock().expect("signal lock");
        *requested = true;
        self.signal.notify_all();
    }

    /// Writes one snapshot atomically (temp file + rename), counting the
    /// outcome instead of unwinding: persistence failures must not take
    /// the serving path down.
    fn write_snapshot(&self, path: &std::path::Path) {
        let text = self.cache.snapshot().to_text();
        let tmp = path.with_extension("tmp");
        let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
        match result {
            Ok(()) => self.snapshots_written.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.snapshot_errors.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// A running plan-serving daemon. See the [crate docs](crate) for the
/// protocol and an end-to-end example; construction is
/// [`Server::start`], teardown is [`Server::shutdown`] (graceful drain).
pub struct Server {
    inner: Arc<Inner>,
    listen_addr: ListenAddr,
    snapshot_path: Option<PathBuf>,
    /// Held for the server's lifetime when persistence is on; guards the
    /// snapshot path against a second live writer (released on drop at
    /// the end of [`shutdown`](Self::shutdown)).
    _snapshot_lock: Option<SnapshotLock>,
    /// Master sender keeping the admission queue open; dropped during
    /// shutdown so the workers drain and exit.
    job_tx: Option<channel::Sender<Job>>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    snapshot_handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("listen_addr", &self.listen_addr).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr`, restores the snapshot file if one exists (warm
    /// restart), and spawns the accept loop, worker pool, and snapshot
    /// writer.
    ///
    /// # Errors
    ///
    /// I/O errors from binding; `AddrInUse` when another live process
    /// holds the snapshot path's `.lock` file (two writers would
    /// last-writer-wins each other's snapshots); or a snapshot file that
    /// exists but fails to parse/restore (reported as `InvalidData` — a
    /// corrupt snapshot is refused loudly rather than silently served
    /// cold).
    pub fn start(addr: &ListenAddr, config: &ServerConfig) -> io::Result<Server> {
        assert!(config.queue_capacity > 0, "the admission queue needs at least one slot");
        let listener = Listener::bind(addr)?;
        let listen_addr = listener.local_addr()?;
        let snapshot_lock = match &config.snapshot_path {
            Some(path) => Some(SnapshotLock::acquire(path)?),
            None => None,
        };

        let cache = Arc::new(PlanCache::new(config.cache.clone()));
        let tiered =
            config.tiered.then(|| TieredPlanner::new(Arc::clone(&cache), config.bnb.clone()));
        let inner = Arc::new(Inner {
            cache,
            tiered,
            bnb: config.bnb.clone(),
            retry_after_ms: config.retry_after_ms,
            queue_capacity: config.queue_capacity,
            outstanding: AtomicUsize::new(0),
            poll_interval: config.poll_interval,
            chaos: config.chaos,
            shutdown: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            signal: Condvar::new(),
            connections: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            restored_entries: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
        });

        if let Some(path) = &config.snapshot_path {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let restored = inner.cache.restore_from_text(&text).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("cannot restore snapshot {}: {e}", path.display()),
                        )
                    })?;
                    inner.restored_entries.store(restored as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {} // cold start
                Err(e) => return Err(e),
            }
        }

        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_capacity);
        // The vendored crossbeam receiver is single-consumer; the mutex
        // turns it into the shared queue the pool drains (held only for
        // the pop, never during an optimization).
        let job_rx = Arc::new(Mutex::new(job_rx));

        let worker_handles: Vec<JoinHandle<()>> = (0..config.workers.get())
            .map(|_| {
                let inner = Arc::clone(&inner);
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&inner, &job_rx))
            })
            .collect();

        let accept_handle = {
            let inner = Arc::clone(&inner);
            let job_tx = job_tx.clone();
            std::thread::spawn(move || accept_loop(listener, &inner, &job_tx))
        };

        let snapshot_handle = config.snapshot_path.as_ref().map(|path| {
            let inner = Arc::clone(&inner);
            let path = path.clone();
            let interval = config.snapshot_interval;
            std::thread::spawn(move || snapshot_loop(&inner, &path, interval))
        });

        Ok(Server {
            inner,
            listen_addr,
            snapshot_path: config.snapshot_path.clone(),
            _snapshot_lock: snapshot_lock,
            job_tx: Some(job_tx),
            accept_handle: Some(accept_handle),
            worker_handles,
            snapshot_handle,
        })
    }

    /// The resolved listen address (TCP port `0` becomes the real port).
    pub fn listen_addr(&self) -> &ListenAddr {
        &self.listen_addr
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// Signals that a shutdown was requested (also triggered by the
    /// protocol `shutdown` verb). Purely advisory: the embedder observes
    /// it via [`wait_shutdown_requested`](Self::wait_shutdown_requested)
    /// and decides when to call [`shutdown`](Self::shutdown).
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }

    /// Whether a shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        *self.inner.shutdown_requested.lock().expect("signal lock")
    }

    /// A cloneable handle that can request a shutdown from another
    /// thread (e.g. a stdin-EOF watcher) while the embedder blocks in
    /// [`wait_shutdown_requested`](Self::wait_shutdown_requested).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { inner: Arc::clone(&self.inner) }
    }

    /// Blocks until a shutdown is requested (protocol verb or
    /// [`request_shutdown`](Self::request_shutdown)).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self.inner.shutdown_requested.lock().expect("signal lock");
        while !*requested {
            requested = self.inner.signal.wait(requested).expect("signal lock");
        }
    }

    /// Graceful drain: stop accepting, let every connection finish its
    /// in-flight request, run the queue dry, write a final snapshot, and
    /// return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.request_shutdown();
        // The accept loop joins every connection thread before exiting,
        // so after this join no new jobs can be submitted…
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // …dropping the master sender lets the workers drain what is
        // queued and exit.
        self.job_tx = None;
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.snapshot_handle.take() {
            let _ = handle.join();
        }
        // In tiered mode, let outstanding refinements land before the
        // final snapshot: heuristic-tier entries are never persisted, so
        // an undrained queue would cost the next warm restart its plans.
        if let Some(tiered) = &self.inner.tiered {
            let _ = tiered.drain();
        }
        if let Some(path) = &self.snapshot_path {
            self.inner.write_snapshot(path);
        }
        self.inner.stats()
    }
}

/// A detached handle to a [`Server`]'s shutdown-request signal; see
/// [`Server::shutdown_handle`].
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: Arc<Inner>,
}

impl fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShutdownHandle").finish_non_exhaustive()
    }
}

impl ShutdownHandle {
    /// Equivalent to [`Server::request_shutdown`].
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }
}

fn accept_loop(listener: Listener, inner: &Arc<Inner>, job_tx: &channel::Sender<Job>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.try_accept() {
            Ok(Some(stream)) => {
                let index = inner.connections.fetch_add(1, Ordering::Relaxed);
                // Each connection rolls its own deterministic chaos dice
                // (sub-seeded by accept index), so a chaos run replays
                // identically regardless of thread interleaving.
                let stream =
                    FaultyStream::new(stream, inner.chaos.map(|p| p.for_connection(index)));
                let inner = Arc::clone(inner);
                let job_tx = job_tx.clone();
                connections
                    .push(std::thread::spawn(move || handle_connection(stream, &inner, &job_tx)));
            }
            Ok(None) => std::thread::sleep(inner.poll_interval),
            // Accept errors (e.g. a client that vanished between the
            // kernel queue and us) are per-connection, not fatal.
            Err(_) => std::thread::sleep(inner.poll_interval),
        }
        connections.retain(|handle| !handle.is_finished());
    }
    // Drain: every connection finishes its in-flight request and closes.
    for handle in connections {
        let _ = handle.join();
    }
}

fn worker_loop(inner: &Inner, job_rx: &Mutex<channel::Receiver<Job>>) {
    // Every worker fronts the shared cache through the same Planner
    // seam batch serving and the CLI use; the daemon adds admission and
    // transport around it, not its own serve logic.
    let planner = CachedPlanner::new(&inner.cache, inner.bnb.clone());
    loop {
        // Holding the lock while blocked is fine: a worker that receives
        // a job releases it before optimizing, so pickup is serialized
        // but execution is parallel.
        let job = match job_rx.lock().expect("queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: drained, exit
        };
        let served = match &inner.tiered {
            Some(tiered) => tiered.plan(&job.instance),
            None => planner.plan(&job.instance),
        };
        inner.outstanding.fetch_sub(1, Ordering::Relaxed);
        // A connection that died while waiting just drops the reply.
        let _ = job.reply.send(served);
    }
}

fn snapshot_loop(inner: &Inner, path: &std::path::Path, interval: Duration) {
    loop {
        let requested = inner.shutdown_requested.lock().expect("signal lock");
        let (_guard, _timeout) =
            inner.signal.wait_timeout(requested, interval).expect("signal lock");
        if inner.shutdown.load(Ordering::SeqCst) {
            // The final snapshot is written by `shutdown()` once the
            // workers are quiescent.
            return;
        }
        inner.write_snapshot(path);
    }
}

/// Reads one `\n`-terminated line (with timeout-based shutdown polling)
/// into `line`, which must arrive cleared. Raw bytes, not `read_line`:
/// a read timeout can land in the middle of a multi-byte UTF-8
/// character, and `read_line`'s validity guard would discard the
/// already-consumed partial bytes on retry — `read_until` keeps them.
/// Returns `false` when the connection should close (EOF, hard error,
/// or drain).
fn read_line_polling(
    reader: &mut BufReader<FaultyStream>,
    line: &mut Vec<u8>,
    inner: &Inner,
) -> bool {
    loop {
        match reader.read_until(b'\n', line) {
            // Delimiter found, or EOF terminating a final unterminated
            // line (the next call reports the EOF as `Ok(0)`).
            Ok(n) if n > 0 || !line.is_empty() => return true,
            Ok(_) => return false, // clean client EOF
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                // Partial bytes stay appended to `line`; retrying
                // continues the same line.
                if inner.shutdown.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
}

fn write_response(reader: &mut BufReader<FaultyStream>, response: &Response) -> bool {
    let mut line = response.to_line();
    line.push('\n');
    reader.get_mut().write_all(line.as_bytes()).is_ok()
}

fn handle_connection(stream: FaultyStream, inner: &Inner, job_tx: &channel::Sender<Job>) {
    if stream.set_read_timeout(Some(inner.poll_interval)).is_err()
        || stream.set_write_timeout(Some(Duration::from_secs(1))).is_err()
    {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        if !read_line_polling(&mut reader, &mut line, inner) {
            return;
        }
        let text = String::from_utf8_lossy(&line);
        let verb = text.trim();
        let ok = match verb {
            "" => true, // blank keep-alive line
            "ping" => write_response(&mut reader, &Response::Pong),
            "stats" => write_response(&mut reader, &Response::Stats(inner.stats().stats_line())),
            "shutdown" => {
                inner.request_shutdown();
                write_response(&mut reader, &Response::Draining)
            }
            _ if verb.starts_with("export-partition") => {
                match serve_export(&mut reader, verb, inner) {
                    Some(ok) => ok,
                    None => return,
                }
            }
            _ if verb == IMPORT_PARTITION_VERB => {
                match serve_import(&mut reader, &mut line, inner) {
                    Some(ok) => ok,
                    None => return,
                }
            }
            _ if verb.starts_with("dsq-instance") => {
                let header = line.clone();
                match read_document(&mut reader, header, &mut line, inner) {
                    DocumentRead::Complete(document) => {
                        if !serve_document(&mut reader, &document, inner, job_tx) {
                            return;
                        }
                        true
                    }
                    DocumentRead::TooLarge => {
                        inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        write_response(
                            &mut reader,
                            &Response::Error {
                                message: format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                            },
                        );
                        return; // stream position unknown: close
                    }
                    DocumentRead::Closed => return,
                }
            }
            other => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &mut reader,
                    &Response::Error { message: format!("unknown request `{other}`") },
                )
            }
        };
        if !ok || inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

enum DocumentRead {
    Complete(Vec<u8>),
    TooLarge,
    Closed,
}

/// Accumulates an instance document (starting from its already-read
/// `header` line) up to its `end` marker, reusing `line` as the
/// per-line scratch buffer.
fn read_document(
    reader: &mut BufReader<FaultyStream>,
    header: Vec<u8>,
    line: &mut Vec<u8>,
    inner: &Inner,
) -> DocumentRead {
    let mut document = header;
    loop {
        line.clear();
        if !read_line_polling(reader, line, inner) {
            return DocumentRead::Closed;
        }
        if String::from_utf8_lossy(line).trim() == REQUEST_END {
            return DocumentRead::Complete(document);
        }
        document.extend_from_slice(line);
        if document.len() > MAX_REQUEST_BYTES {
            return DocumentRead::TooLarge;
        }
    }
}

/// Parses and serves one instance document: admission (`busy` when the
/// queue is full), then a blocking wait for the worker's reply — the
/// per-connection backpressure. Returns `false` when the connection
/// should close.
fn serve_document(
    reader: &mut BufReader<FaultyStream>,
    document: &[u8],
    inner: &Inner,
    job_tx: &channel::Sender<Job>,
) -> bool {
    let protocol_error = |reader: &mut BufReader<FaultyStream>, inner: &Inner, message: String| {
        inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
        write_response(reader, &Response::Error { message })
    };
    let text = match std::str::from_utf8(document) {
        Ok(text) => text,
        Err(_) => {
            return protocol_error(reader, inner, "instance text is not valid UTF-8".into());
        }
    };
    let instance = match parse_instance(text) {
        Ok(instance) => instance,
        Err(e) => {
            return protocol_error(reader, inner, format!("cannot parse instance: {e}"));
        }
    };
    let (reply_tx, reply_rx) = channel::bounded::<Result<ServedPlan, PlanError>>(1);
    match job_tx.try_send(Job { instance, reply: reply_tx }) {
        Ok(()) => {
            inner.admitted.fetch_add(1, Ordering::Relaxed);
            inner.outstanding.fetch_add(1, Ordering::Relaxed);
            match reply_rx.recv() {
                Ok(Ok(served)) => write_response(
                    reader,
                    &Response::Served {
                        source: served.source,
                        cost: served.cost,
                        fingerprint: served.fingerprint,
                        plan: served.plan.indices(),
                        tier: served.tier,
                    },
                ),
                // A planner failure (unreachable for the local cached
                // planner) degrades to a protocol error.
                Ok(Err(e)) => {
                    inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    write_response(reader, &Response::Error { message: e.to_string() })
                }
                // Worker vanished mid-request (only possible on teardown
                // races): report and close.
                Err(_) => {
                    write_response(
                        reader,
                        &Response::Error { message: "server is shutting down".into() },
                    );
                    false
                }
            }
        }
        Err(TrySendError::Full(_)) => {
            inner.busy_rejections.fetch_add(1, Ordering::Relaxed);
            let retry_after_ms = load_aware_retry_ms(
                inner.retry_after_ms,
                inner.outstanding.load(Ordering::Relaxed),
                inner.queue_capacity,
            );
            write_response(reader, &Response::Busy { retry_after_ms })
        }
        Err(TrySendError::Disconnected(_)) => {
            write_response(reader, &Response::Error { message: "server is shutting down".into() });
            false
        }
    }
}

/// Serves one `export-partition` line: validates the requested fleet
/// layout, removes the moved partition from the cache, and streams it
/// as a snapshot document after the `ok partition N` header. Returns
/// `Some(ok)` like a single-line verb; `None` closes the connection —
/// and puts the already-exported entries back, so a handoff that dies
/// on the wire does not lose the partition (the mover retries).
fn serve_export(reader: &mut BufReader<FaultyStream>, verb: &str, inner: &Inner) -> Option<bool> {
    let request = match ExportRequest::parse(verb) {
        Ok(request) => request,
        Err(e) => {
            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Some(write_response(reader, &Response::Error { message: e.to_string() }));
        }
    };
    // Reuse the fleet-config validator: a duplicate backend address
    // would fold two ring slots onto one label and silently
    // mis-partition the keyspace.
    if let Err(e) = FleetConfig::new(0, request.backends.iter().cloned()) {
        inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return Some(write_response(reader, &Response::Error { message: e.to_string() }));
    }
    let ring = HashRing::with_vnodes(&request.backends, request.vnodes);
    let keep = request.keep;
    let snapshot = inner.cache.export_partition(|fingerprint| ring.route(fingerprint) != keep);
    let entries = snapshot.entries.len() as u64;
    let sent = write_response(reader, &Response::Partition { entries })
        && reader.get_mut().write_all(snapshot.to_text().as_bytes()).is_ok();
    if !sent {
        let _ = inner.cache.restore(&snapshot);
        return None;
    }
    Some(true)
}

/// Serves one `import-partition` exchange: reads the snapshot document
/// that follows (terminated by the snapshot's own `end-snapshot`
/// trailer), restores it into the cache, and reports the restored
/// entry count. Returns `Some(ok)` like a single-line verb, `None`
/// when the connection must close.
fn serve_import(
    reader: &mut BufReader<FaultyStream>,
    line: &mut Vec<u8>,
    inner: &Inner,
) -> Option<bool> {
    let mut document: Vec<u8> = Vec::new();
    loop {
        line.clear();
        if !read_line_polling(reader, line, inner) {
            return None;
        }
        let done = String::from_utf8_lossy(line).trim() == "end-snapshot";
        document.extend_from_slice(line);
        if done {
            break;
        }
        if document.len() > MAX_IMPORT_BYTES {
            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
            write_response(
                reader,
                &Response::Error { message: format!("partition exceeds {MAX_IMPORT_BYTES} bytes") },
            );
            return None; // stream position unknown: close
        }
    }
    let malformed = |reader: &mut BufReader<FaultyStream>, inner: &Inner, message: String| {
        inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
        Some(write_response(reader, &Response::Error { message }))
    };
    let text = match std::str::from_utf8(&document) {
        Ok(text) => text,
        Err(_) => {
            return malformed(reader, inner, "partition text is not valid UTF-8".into());
        }
    };
    match inner.cache.restore_from_text(text) {
        Ok(restored) => {
            Some(write_response(reader, &Response::PartitionRestored { entries: restored as u64 }))
        }
        Err(e) => malformed(reader, inner, format!("cannot restore partition: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::load_aware_retry_ms;

    #[test]
    fn retry_hint_is_monotone_in_outstanding_work() {
        for capacity in [1usize, 4, 64] {
            let mut previous = 0;
            for outstanding in 0..=4 * capacity + 8 {
                let hint = load_aware_retry_ms(50, outstanding, capacity);
                assert!(hint >= previous, "hint fell {previous} -> {hint} at {outstanding}");
                assert!(hint >= 50, "never below the base");
                assert!(hint <= 50 * 16, "capped at 16x the base");
                previous = hint;
            }
        }
    }

    #[test]
    fn retry_hint_is_the_base_at_a_just_full_queue_and_scales_past_it() {
        // outstanding == capacity (queue full, workers idle): the base.
        assert_eq!(load_aware_retry_ms(50, 64, 64), 50);
        // Every extra outstanding request pushes the hint up.
        assert!(load_aware_retry_ms(50, 128, 64) > load_aware_retry_ms(50, 64, 64));
        // Small queues scale fast: full queue + one executing = 1.5x.
        assert_eq!(load_aware_retry_ms(50, 2, 1), 75);
        // A zero base stays zero (hints disabled by configuration).
        assert_eq!(load_aware_retry_ms(0, 1000, 1), 0);
        // Degenerate capacities behave.
        assert_eq!(load_aware_retry_ms(50, 0, 0), 50);
        assert_eq!(load_aware_retry_ms(u64::MAX, usize::MAX, 1), u64::MAX);
    }
}
