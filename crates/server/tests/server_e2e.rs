//! End-to-end tests of the daemon over real sockets: protocol round
//! trips, admission control, graceful drain, and warm restarts from
//! snapshot files.

use dsq_core::{optimize, Plan};
use dsq_server::{Client, ListenAddr, Response, Server, ServerConfig};
use dsq_workloads::{generate, Family};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Duration;

fn quick_config() -> ServerConfig {
    ServerConfig { poll_interval: Duration::from_millis(2), ..ServerConfig::default() }
}

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("dsq-server-{tag}-{}-{id}", std::process::id()))
}

fn tcp() -> ListenAddr {
    ListenAddr::Tcp("127.0.0.1:0".into())
}

#[test]
fn serves_optimal_plans_over_tcp() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    for seed in 0..3 {
        let instance = generate(Family::Clustered, 7, seed);
        let fresh = optimize(&instance);
        match client.optimize(&instance).expect("round trip") {
            Response::Served { cost, plan, .. } => {
                assert_eq!(cost.to_bits(), fresh.cost().to_bits(), "seed {seed}");
                assert_eq!(&Plan::new(plan).expect("valid plan"), fresh.plan());
            }
            other => panic!("expected a served plan, got {other:?}"),
        }
    }
    // The same instance again: a validated cache hit, same bits.
    let instance = generate(Family::Clustered, 7, 0);
    match client.optimize(&instance).expect("round trip") {
        Response::Served { source, cost, .. } => {
            assert_eq!(source, dsq_service::ServeSource::CacheHit);
            assert_eq!(cost.to_bits(), optimize(&instance).cost().to_bits());
        }
        other => panic!("expected a hit, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.cache.requests(), 4);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.busy_rejections, 0);
}

#[test]
fn serves_over_unix_sockets_and_cleans_up_the_path() {
    let path = temp_path("sock");
    let addr = ListenAddr::Unix(path.clone());
    let server = Server::start(&addr, &quick_config()).expect("start");
    assert!(path.exists(), "socket file bound");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    assert_eq!(client.ping().expect("ping"), Response::Pong);
    let instance = generate(Family::Euclidean, 6, 3);
    assert!(matches!(client.optimize(&instance).expect("optimize"), Response::Served { .. }));
    server.shutdown();
    assert!(!path.exists(), "socket file unlinked on shutdown");
    // A stale (dead) socket file does not block a restart.
    std::fs::write(&path, b"").expect("plant stale file");
    let server = Server::start(&addr, &quick_config()).expect("rebinds over stale socket");
    server.shutdown();
}

#[test]
fn protocol_errors_keep_the_connection_usable() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    // Unparseable instance: an error response, then normal service.
    match client.optimize_text("dsq-instance v1\nname broken\nn 2\n").expect("round trip") {
        Response::Error { message } => {
            assert!(message.starts_with("cannot parse instance:"), "{message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    assert_eq!(client.ping().expect("still usable"), Response::Pong);
    let instance = generate(Family::HubSpoke, 5, 1);
    assert!(matches!(client.optimize(&instance).expect("serves"), Response::Served { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn stats_verb_reports_the_counters() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let instance = generate(Family::Correlated, 6, 9);
    client.optimize(&instance).expect("cold");
    client.optimize(&instance).expect("hit");
    match client.stats().expect("stats") {
        Response::Stats(stats) => {
            assert_eq!(stats.requests, 2);
            assert_eq!(stats.hits, 1);
            assert_eq!(stats.cold, 1);
            assert_eq!(stats.busy_rejections, 0);
            assert!((stats.hit_rate - 0.5).abs() < 1e-12);
            assert!(stats.entries >= 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}

/// The `metrics` verb streams the telemetry exposition: stage
/// histograms carrying one sample per served request and the serving
/// counters folded in, all through the framed header/trailer grammar
/// (which [`Client::metrics`] validates line by line).
#[test]
fn metrics_verb_streams_stage_histograms_and_counters() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let instance = generate(Family::Correlated, 6, 9);
    client.optimize(&instance).expect("cold");
    client.optimize(&instance).expect("hit");
    let text = client.metrics().expect("metrics");
    assert!(text.starts_with("# dsq-metrics v1\n"), "{text}");
    // Every measured stage saw both requests by scrape time (the
    // responses were flushed before the scrape could be admitted).
    for stage in ["parse_ns", "queue_wait_ns", "plan_ns", "flush_ns"] {
        assert!(
            text.contains(&format!("histogram server.stage.{stage} count 2 ")),
            "{stage} missing both samples:\n{text}"
        );
    }
    assert!(text.contains("histogram server.pipeline.depth count 2 "), "{text}");
    assert!(text.contains("counter server.serve.requests 2\n"), "{text}");
    assert!(text.contains("counter server.serve.hits 1\n"), "{text}");
    assert!(text.contains("counter server.cache.insertions "), "{text}");
    assert!(text.contains("gauge server.outstanding 0\n"), "{text}");
    // The stage stopwatches measure real time: each histogram's sum is
    // positive, and the connection stays usable after the stream.
    assert!(text.lines().all(|l| !l.is_empty()), "no blank exposition lines:\n{text}");
    assert_eq!(client.ping().expect("still usable"), Response::Pong);
    server.shutdown();
}

/// A full admission queue answers `busy` instead of blocking the accept
/// loop: with one worker and a one-slot queue, a burst of concurrent
/// requests can have at most one executing and one queued at any
/// instant, so most of the burst must be rejected immediately — and
/// every request that *was* admitted is answered exactly.
#[test]
fn full_queue_rejects_with_busy_instead_of_stalling() {
    let config = ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"),
        queue_capacity: 1,
        retry_after_ms: 7,
        ..quick_config()
    };
    let server = Server::start(&tcp(), &config).expect("start");
    let addr = server.listen_addr().clone();

    // Distinct btsp-hard queries: every one is a cold search costing
    // well over the microseconds the burst takes to submit.
    let burst: Vec<_> = (0..8).map(|seed| generate(Family::BtspHard, 13, 40 + seed)).collect();
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = burst
            .iter()
            .map(|instance| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.optimize(instance).expect("an immediate busy or a served plan")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("burst thread")).collect()
    });

    let mut busy = 0u64;
    let mut served = 0u64;
    for (instance, response) in burst.iter().zip(&responses) {
        match response {
            Response::Busy { retry_after_ms } => {
                // The hint is load-aware: base 7 ms when only the
                // executing job is outstanding at rejection time, scaled
                // up (capped at 16× base) when the queue slot is also
                // taken — both interleavings are legitimate here.
                assert!(
                    (7..=7 * 16).contains(retry_after_ms),
                    "hint {retry_after_ms} outside the load-aware range for base 7"
                );
                busy += 1;
            }
            Response::Served { cost, .. } => {
                let fresh = optimize(instance);
                assert_eq!(cost.to_bits(), fresh.cost().to_bits(), "admitted ⇒ exact");
                served += 1;
            }
            other => panic!("expected busy or served, got {other:?}"),
        }
    }
    assert_eq!(busy + served, 8);
    assert!(busy >= 1, "an 8-deep burst into a 1-slot queue must overflow");
    assert!(served >= 1, "the worker must still serve");

    // The server is not wedged: a rejected query retried after the burst
    // is served normally.
    let mut client = Client::connect(&addr).expect("connect");
    assert!(matches!(client.optimize(&burst[0]).expect("retry"), Response::Served { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.busy_rejections, busy);
    assert_eq!(stats.admitted, served + 1);
}

/// Graceful drain: a shutdown issued while requests are in flight still
/// answers every admitted request.
#[test]
fn shutdown_drains_in_flight_requests() {
    let config = ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"),
        queue_capacity: 8,
        ..quick_config()
    };
    let server = Server::start(&tcp(), &config).expect("start");
    let addr = server.listen_addr().clone();
    let clients: Vec<_> = (0..3)
        .map(|seed| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let instance = generate(Family::BtspHard, 12, seed);
                client.optimize(&instance).expect("served before drain completes")
            })
        })
        .collect();
    while server.stats().admitted < 1 {
        std::thread::yield_now();
    }
    let stats = server.shutdown();
    for handle in clients {
        // Admission raced the drain: each request was either served or
        // the connection closed before it was read — never a stall, and
        // an admitted request is always answered.
        if let Ok(Response::Served { cost, .. }) = handle.join() {
            assert!(cost.is_finite());
        }
    }
    assert!(stats.admitted >= 1);
}

/// The shutdown protocol verb reaches the embedder via
/// `wait_shutdown_requested`.
#[test]
fn shutdown_verb_signals_the_embedder() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    assert!(!server.shutdown_requested());
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    assert_eq!(client.shutdown_server().expect("verb"), Response::Draining);
    server.wait_shutdown_requested();
    assert!(server.shutdown_requested());
    server.shutdown();
}

/// Cache persistence across processes-worth of servers: a restarted
/// server answers previously-cold queries as validated hits.
#[test]
fn warm_restart_from_a_snapshot_file() {
    let snapshot = temp_path("snap");
    let config = ServerConfig {
        snapshot_path: Some(snapshot.clone()),
        snapshot_interval: Duration::from_secs(3600), // only the final write
        ..quick_config()
    };
    let instances: Vec<_> = (0..4).map(|s| generate(Family::Clustered, 7, 20 + s)).collect();

    let first = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &config).expect("start");
    let mut client = Client::connect(first.listen_addr()).expect("connect");
    let mut cold_costs = Vec::new();
    for instance in &instances {
        match client.optimize(instance).expect("cold serve") {
            Response::Served { source, cost, .. } => {
                assert_eq!(source, dsq_service::ServeSource::Cold);
                cold_costs.push(cost);
            }
            other => panic!("expected served, got {other:?}"),
        }
    }
    drop(client);
    let stats = first.shutdown();
    assert_eq!(stats.restored_entries, 0, "first boot is cold");
    assert!(stats.snapshots_written >= 1, "final snapshot written");
    assert!(snapshot.exists());

    let second = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &config).expect("restart");
    assert_eq!(second.stats().restored_entries, 4);
    let mut client = Client::connect(second.listen_addr()).expect("connect");
    for (instance, &cold_cost) in instances.iter().zip(&cold_costs) {
        match client.optimize(instance).expect("warm serve") {
            Response::Served { source, cost, .. } => {
                assert_eq!(source, dsq_service::ServeSource::CacheHit, "restart must hit");
                assert_eq!(cost.to_bits(), cold_cost.to_bits());
            }
            other => panic!("expected served, got {other:?}"),
        }
    }
    drop(client);
    second.shutdown();
    std::fs::remove_file(&snapshot).ok();
}

/// A corrupt snapshot file is refused loudly at startup.
#[test]
fn corrupt_snapshots_fail_startup() {
    let snapshot = temp_path("corrupt");
    std::fs::write(&snapshot, "dsq-plan-cache v9\n").expect("write corrupt snapshot");
    let config = ServerConfig { snapshot_path: Some(snapshot.clone()), ..quick_config() };
    let err = Server::start(&tcp(), &config).expect_err("must refuse");
    assert!(err.to_string().contains("cannot restore snapshot"), "{err}");
    std::fs::remove_file(&snapshot).ok();
}

/// Two live servers on one snapshot path would last-writer-wins each
/// other's atomic renames; the `.lock` PID file makes the second refuse
/// to start, and a clean shutdown releases the path for the next one.
#[test]
fn snapshot_paths_are_locked_against_a_second_live_server() {
    let snapshot = temp_path("locked");
    let config = ServerConfig { snapshot_path: Some(snapshot.clone()), ..quick_config() };
    let first = Server::start(&tcp(), &config).expect("first server starts");
    let err = Server::start(&tcp(), &config).expect_err("second server must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    assert!(err.to_string().contains("locked by live process"), "{err}");
    // Snapshot-free servers are unaffected.
    Server::start(&tcp(), &quick_config()).expect("no-snapshot server starts").shutdown();
    first.shutdown();
    assert!(!dsq_server::lock_path(&snapshot).exists(), "shutdown releases the lock");
    // The path is reusable once the holder is gone.
    Server::start(&tcp(), &config).expect("restart after release").shutdown();
    std::fs::remove_file(&snapshot).ok();
}

/// The background writer persists without waiting for shutdown.
#[test]
fn periodic_snapshots_are_written() {
    let snapshot = temp_path("periodic");
    let config = ServerConfig {
        snapshot_path: Some(snapshot.clone()),
        snapshot_interval: Duration::from_millis(20),
        ..quick_config()
    };
    let server = Server::start(&tcp(), &config).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    client.optimize(&generate(Family::Clustered, 6, 1)).expect("serve");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().snapshots_written == 0 {
        assert!(std::time::Instant::now() < deadline, "no periodic snapshot within 5 s");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(snapshot.exists());
    server.shutdown();
    std::fs::remove_file(&snapshot).ok();
}

/// Instance documents are framed as raw bytes: non-ASCII names (legal
/// in the `dsq-instance` format) round-trip through the socket even
/// though read timeouts can split multi-byte characters.
#[test]
fn non_ascii_instance_names_round_trip() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let base = generate(Family::Clustered, 6, 2);
    let named = dsq_core::QueryInstance::builder()
        .name("café-请求-π")
        .services(base.services().to_vec())
        .comm(base.comm().clone())
        .build()
        .expect("valid instance");
    let fresh = optimize(&named);
    for _ in 0..2 {
        match client.optimize(&named).expect("round trip") {
            Response::Served { cost, .. } => {
                assert_eq!(cost.to_bits(), fresh.cost().to_bits());
            }
            other => panic!("expected served, got {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.cache.hits, 1, "the repeat must hit");
}

/// Binding a Unix path that a live server owns is refused.
#[test]
fn live_unix_sockets_are_not_clobbered() {
    let path = temp_path("live");
    let addr = ListenAddr::Unix(path.clone());
    let server = Server::start(&addr, &quick_config()).expect("start");
    let err = Server::start(&addr, &quick_config()).expect_err("second bind must fail");
    assert!(err.to_string().contains("in use by a live server"), "{err}");
    server.shutdown();
}
