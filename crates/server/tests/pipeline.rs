//! The reactor core's behavior contract: protocol pipelining (in-order
//! responses, coalesced frames), single-thread connection scale, wire
//! compatibility with the pre-reactor server, and regression tests for
//! the four server-edge bugs fixed alongside the rewrite (the
//! `outstanding` underflow race, swallowed connection panics, ignored
//! export-rollback failures, and the late/skippable import size cap).
//!
//! The CI host is single-core, so nothing here measures wall-clock
//! parallelism — every property is asserted on observable behavior:
//! counters, thread counts, wire bytes, and per-connection read/write
//! call counts (the syscall proxy).

use dsq_server::{
    Client, ExportRequest, FaultProfile, ListenAddr, PipelineRequest, Response, Server,
    ServerConfig,
};
use dsq_workloads::{generate, Family};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn quick_config() -> ServerConfig {
    ServerConfig { poll_interval: Duration::from_millis(2), ..ServerConfig::default() }
}

fn tcp() -> ListenAddr {
    ListenAddr::Tcp("127.0.0.1:0".into())
}

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("dsq-pipeline-{tag}-{}-{id}", std::process::id()))
}

/// A raw TCP socket speaking the wire protocol directly, for the tests
/// that pin exact bytes (the typed [`Client`] would hide them).
fn raw_connect(addr: &ListenAddr) -> TcpStream {
    let ListenAddr::Tcp(spec) = addr else { panic!("expected a TCP server") };
    TcpStream::connect(spec).expect("raw connect")
}

/// The tentpole scale claim: one reactor thread (plus the fixed worker
/// and snapshot threads) holds 1000+ concurrent idle connections.
/// Asserted through [`dsq_server::hold_connections`]'s held/dropped
/// accounting — every connection answers a ping at connect time *and*
/// again at drain time, so an evicted or thread-starved connection
/// shows up as `dropped > 0` — rather than by scraping
/// `/proc/self/task`, which counted the test harness's own threads and
/// only existed on Linux.
#[test]
fn a_thousand_idle_connections_cost_no_threads() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let report = dsq_server::hold_connections(server.listen_addr(), 1050).expect("hold");
    assert_eq!(
        (report.requested, report.held, report.dropped),
        (1050, 1050, 0),
        "every parked connection must survive to drain: {}",
        report.summary_line()
    );
    assert_eq!(
        report.summary_line(),
        "drained 1050 held connections: 1050 live, 0 dropped",
        "the drain summary the CLI prints is pinned here"
    );
    let mut prober = Client::connect(server.listen_addr()).expect("probe connect");
    assert_eq!(prober.ping().expect("server still responsive"), Response::Pong);
    assert!(server.stats().connections >= 1051, "all connections accepted");
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
}

/// An N-deep pipeline is answered strictly in request order, and the
/// whole batch costs the client exactly one socket write.
#[test]
fn pipelined_requests_are_answered_in_request_order() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let instances: Vec<_> = (0..12).map(|s| generate(Family::Clustered, 7, 700 + s)).collect();

    let mut pipelined = Client::connect(server.listen_addr()).expect("connect");
    let responses = pipelined.optimize_pipelined(&instances).expect("pipeline");
    assert_eq!(responses.len(), instances.len());
    let (_, writes) = pipelined.wire_counts();
    assert_eq!(writes, 1, "a pipelined batch is one coalesced frame");

    // A second connection replays the batch one request at a time; the
    // fingerprints must line up position by position — the order proof.
    let mut sequential = Client::connect(server.listen_addr()).expect("connect");
    for (i, (instance, response)) in instances.iter().zip(&responses).enumerate() {
        let Response::Served { fingerprint: pipelined_fp, .. } = response else {
            panic!("request {i}: expected served, got {response:?}");
        };
        match sequential.optimize(instance).expect("sequential serve") {
            Response::Served { fingerprint, .. } => {
                assert_eq!(fingerprint, *pipelined_fp, "response {i} out of order");
            }
            other => panic!("expected served, got {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert!(
        stats.pipeline_peak >= 2,
        "the batch must actually overlap requests, peak {}",
        stats.pipeline_peak
    );
    assert_eq!(stats.protocol_errors, 0);
}

/// Immediate verbs (`ping`, `stats`) ride the same ordered pipeline as
/// optimize documents: answers interleave exactly where the requests
/// were.
#[test]
fn immediate_verbs_interleave_inside_a_pipeline() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let doc = dsq_core::format_instance(&generate(Family::Euclidean, 6, 811));
    let batch = vec![
        PipelineRequest::Ping,
        PipelineRequest::Optimize(doc.clone()),
        PipelineRequest::Stats,
        PipelineRequest::Optimize(doc),
        PipelineRequest::Ping,
    ];
    let responses = client.pipeline(&batch).expect("pipeline");
    assert_eq!(responses.len(), 5);
    assert_eq!(responses[0], Response::Pong);
    assert!(matches!(responses[1], Response::Served { .. }), "slot 1: {:?}", responses[1]);
    assert!(matches!(responses[2], Response::Stats(_)), "slot 2: {:?}", responses[2]);
    assert!(matches!(responses[3], Response::Served { .. }), "slot 3: {:?}", responses[3]);
    assert_eq!(responses[4], Response::Pong);
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
}

/// The syscall claim behind pipelining, asserted through per-connection
/// read/write call counts: a 64-request pipelined exchange costs one
/// write and a handful of reads, where the sequential exchange pays one
/// of each per request.
#[test]
fn pipelining_coalesces_reads_and_writes() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");

    let mut sequential = Client::connect(server.listen_addr()).expect("connect");
    for _ in 0..64 {
        assert_eq!(sequential.ping().expect("ping"), Response::Pong);
    }
    let (seq_reads, seq_writes) = sequential.wire_counts();
    assert_eq!(seq_writes, 64, "sequential: one write per request");
    assert!(seq_reads >= 64, "sequential: at least one read per request");

    let mut pipelined = Client::connect(server.listen_addr()).expect("connect");
    let responses = pipelined.pipeline(&vec![PipelineRequest::Ping; 64]).expect("pipeline");
    assert!(responses.iter().all(|r| *r == Response::Pong));
    let (pipe_reads, pipe_writes) = pipelined.wire_counts();
    assert_eq!(pipe_writes, 1, "pipelined: the batch is one write");
    assert!(
        pipe_reads * 8 <= seq_reads,
        "pipelined reads must coalesce: {pipe_reads} pipelined vs {seq_reads} sequential"
    );
    server.shutdown();
}

/// Wire compatibility: a client that sends one request at a time sees
/// byte-identical exchanges to the pre-reactor server — same single
/// response line, same bytes, nothing extra on the stream.
#[test]
fn single_request_exchanges_are_byte_identical() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut socket = raw_connect(server.listen_addr());
    socket.write_all(b"ping\n").expect("write ping");
    let mut reader = BufReader::new(socket.try_clone().expect("clone socket"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read pong");
    assert_eq!(line, "ok pong\n", "the ping exchange is pinned byte for byte");

    // An optimize exchange: exactly one line back, and rendering the
    // parsed response reproduces the line byte for byte (the response
    // grammar is its own exact inverse — unchanged by the rewrite).
    let mut doc = dsq_core::format_instance(&generate(Family::Clustered, 6, 901));
    if !doc.ends_with('\n') {
        doc.push('\n');
    }
    doc.push_str("end\n");
    socket.write_all(doc.as_bytes()).expect("write document");
    line.clear();
    reader.read_line(&mut line).expect("read served");
    let response = Response::parse(&line).expect("parses");
    assert!(matches!(response, Response::Served { .. }), "{response:?}");
    assert_eq!(format!("{}\n", response.to_line()), line, "render round-trips the exact bytes");

    // Nothing extra followed the response; the stream is in sync.
    socket.set_read_timeout(Some(Duration::from_millis(80))).expect("timeout");
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Err(e) => assert!(
            matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected error {e}"
        ),
        Ok(n) => panic!("unexpected trailing bytes ({n}) after a single-request exchange"),
    }
    server.shutdown();
}

/// Regression, bug #1: the `outstanding` gauge was incremented *after*
/// `try_send`, racing the worker's decrement — a fast worker wrapped it
/// to `usize::MAX` and pinned every later `busy` hint at the 16× cap.
/// Now the gauge must return to zero once the server drains, and busy
/// hints stay inside `[base, 16 × base]`.
#[test]
fn outstanding_gauge_cannot_underflow() {
    let config = ServerConfig { queue_capacity: 1, retry_after_ms: 7, ..quick_config() };
    let server = Server::start(&tcp(), &config).expect("start");

    // Tiny instances make workers finish as fast as possible — the
    // widest window for the old increment/decrement race.
    for round in 0..6 {
        let instances: Vec<_> =
            (0..8).map(|s| generate(Family::Euclidean, 5, 1000 + round * 8 + s)).collect();
        let mut client = Client::connect(server.listen_addr()).expect("connect");
        let responses = client.optimize_pipelined(&instances).expect("pipeline");
        for response in responses {
            match response {
                Response::Served { .. } => {}
                Response::Busy { retry_after_ms } => {
                    assert!(
                        (7..=7 * 16).contains(&retry_after_ms),
                        "busy hint {retry_after_ms} outside [base, 16 x base] — the underflow symptom"
                    );
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    // Once every response is in, nothing is outstanding. Under the old
    // race this reads ~u64::MAX.
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let outstanding = server.stats().outstanding;
        if outstanding == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "outstanding stuck at {outstanding}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.shutdown();
    assert_eq!(stats.outstanding, 0);
    assert!(
        stats.admitted >= 1 && stats.busy_rejections >= 1,
        "the burst must exercise both paths"
    );
}

/// Regression, bug #2: a panicking connection handler was silently
/// discarded. Now it is counted, logged, and isolated — the connection
/// dies, the server keeps serving.
#[test]
fn connection_panics_are_counted_and_contained() {
    let config = ServerConfig { debug_panic_verb: Some("panic-now".to_string()), ..quick_config() };
    let server = Server::start(&tcp(), &config).expect("start");

    let mut socket = raw_connect(server.listen_addr());
    socket.write_all(b"panic-now\n").expect("write trigger");
    let mut rest = Vec::new();
    // The poisoned connection is torn down: EOF, no response bytes.
    socket.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty(), "a panicked handler must not leak bytes: {rest:?}");

    // The reactor survived its connection's panic.
    let mut client = Client::connect(server.listen_addr()).expect("connect after panic");
    assert_eq!(client.ping().expect("still serving"), Response::Pong);
    match client.optimize(&generate(Family::Clustered, 6, 1100)).expect("still planning") {
        Response::Served { .. } => {}
        other => panic!("expected served, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.connection_panics, 1, "the panic must be counted, not swallowed");
    assert_eq!(stats.cache.requests(), 1);
}

/// Regression, bug #3: a failed export delivery used to discard the
/// rollback result (`let _ = cache.restore(...)`). Now an export whose
/// connection dies before delivery is rolled back into the cache and
/// the rollback is counted.
#[test]
fn undelivered_exports_roll_back_and_are_counted() {
    // Warm a clean server and persist its cache...
    let snapshot = temp_path("rollback");
    let clean = ServerConfig {
        snapshot_path: Some(snapshot.clone()),
        snapshot_interval: Duration::from_secs(3600),
        ..quick_config()
    };
    let warm = Server::start(&tcp(), &clean).expect("start warm");
    let mut client = Client::connect(warm.listen_addr()).expect("connect");
    for seed in 0..12 {
        let instance = generate(Family::Clustered, 7, 1200 + seed);
        assert!(matches!(client.optimize(&instance).expect("warm"), Response::Served { .. }));
    }
    drop(client);
    let warmed = warm.shutdown().cache.entries;
    assert!(warmed > 0);

    // ...then restart it under chaos that kills every outgoing frame:
    // the export is removed from the cache, the delivery dies on the
    // wire, and the teardown must restore it.
    let lethal = FaultProfile {
        seed: 5,
        drop_one_in: 1, // every write
        delay_one_in: 0,
        delay_ms: 0,
        truncate_one_in: 0,
    };
    let chaotic = ServerConfig {
        snapshot_path: Some(snapshot.clone()),
        snapshot_interval: Duration::from_secs(3600),
        chaos: Some(lethal),
        ..quick_config()
    };
    let server = Server::start(&tcp(), &chaotic).expect("restart");
    assert_eq!(server.stats().cache.entries, warmed, "warm restart");

    let request = ExportRequest {
        vnodes: dsq_service::DEFAULT_VNODES,
        keep: 0,
        backends: vec!["backend-a".to_string(), "backend-b".to_string()],
    };
    let mut mover = Client::connect(server.listen_addr()).expect("connect mover");
    mover.export_partition(&request).expect_err("the dropped delivery must error");

    let deadline = Instant::now() + Duration::from_secs(2);
    while server.stats().export_rollbacks == 0 {
        assert!(Instant::now() < deadline, "rollback never counted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.shutdown();
    assert_eq!(stats.export_rollbacks, 1, "the undelivered export must be rolled back");
    assert_eq!(stats.export_rollback_errors, 0);
    assert_eq!(stats.cache.entries, warmed, "no entry may be lost to a dead handoff");
    std::fs::remove_file(&snapshot).ok();
}

/// Regression, bug #4: the import size cap was enforced only *after*
/// appending a line, and never on the `end-snapshot` trailer — an
/// import could overshoot the cap by a whole line or smuggle the
/// overshoot in with the trailer. Now every line is checked before it
/// is buffered.
#[test]
fn import_cap_applies_before_every_line_including_the_trailer() {
    let config = ServerConfig { max_import_bytes: 80, ..quick_config() };
    let server = Server::start(&tcp(), &config).expect("start");

    // A body line that would blow the cap is refused before buffering.
    let mut socket = raw_connect(server.listen_addr());
    let oversized = format!("import-partition\n{}\n", "x".repeat(100));
    socket.write_all(oversized.as_bytes()).expect("write");
    let mut reader = BufReader::new(socket);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error");
    assert_eq!(line, "error partition exceeds 80 bytes\n");
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("closed"), 0, "the framing is lost: close");

    // A body under the cap whose trailer pushes past it is refused too
    // (the old check skipped the trailer line entirely).
    let mut socket = raw_connect(server.listen_addr());
    let body = "y".repeat(69); // 69 + '\n' + "end-snapshot\n" = 83 > 80
    let smuggled = format!("import-partition\n{body}\nend-snapshot\n");
    socket.write_all(smuggled.as_bytes()).expect("write");
    let mut reader = BufReader::new(socket);
    line.clear();
    reader.read_line(&mut line).expect("read error");
    assert_eq!(line, "error partition exceeds 80 bytes\n");

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 2);
}
