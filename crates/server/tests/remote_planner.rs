//! `RemotePlanner` failure-path battery: malformed `busy` lines,
//! truncated `ok` responses, and mid-response disconnects must surface
//! as typed `PlanError`s — never panics — and the busy retry/backoff
//! helper must turn a 1-slot server's rejections into eventual service.

use dsq_core::optimize;
use dsq_server::{Client, ListenAddr, RemotePlanner, Response, RetryPolicy, Server, ServerConfig};
use dsq_service::{PlanError, Planner, ServeSource};
use dsq_workloads::{generate, Family};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::num::NonZeroUsize;
use std::sync::Barrier;
use std::thread::JoinHandle;
use std::time::Duration;

/// One scripted reply of the fake server.
enum Reply {
    /// A full response line (newline appended), connection kept open.
    Line(&'static str),
    /// Partial bytes with **no** newline, then the connection closes —
    /// a response truncated mid-line.
    Truncated(&'static str),
    /// The connection closes before any response byte.
    Disconnect,
}

/// A single-connection fake daemon: reads one instance document per
/// scripted reply (up to the `end` marker), then answers exactly as
/// scripted. Malice is the point — it exercises the client's parsing
/// and framing guards.
fn fake_server(script: Vec<Reply>) -> (ListenAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = ListenAddr::Tcp(listener.local_addr().expect("local addr").to_string());
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("one connection");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        for reply in script {
            // Consume one request document.
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => return, // client gave up first
                    Ok(_) if line.trim() == "end" => break,
                    Ok(_) => {}
                }
            }
            let stream = reader.get_mut();
            match reply {
                Reply::Line(text) => {
                    stream.write_all(text.as_bytes()).expect("write line");
                    stream.write_all(b"\n").expect("write newline");
                }
                Reply::Truncated(bytes) => {
                    stream.write_all(bytes.as_bytes()).expect("write partial");
                    return; // dropping the stream closes it mid-line
                }
                Reply::Disconnect => return,
            }
        }
    });
    (addr, handle)
}

fn request() -> dsq_core::QueryInstance {
    generate(Family::Clustered, 5, 77)
}

/// A policy that never sleeps long and never retries (so scripted
/// single replies are terminal).
fn no_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        min_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(1),
    }
}

#[test]
fn malformed_busy_line_is_a_typed_protocol_error() {
    let (addr, handle) = fake_server(vec![Reply::Line("busy retry-after-ms soon")]);
    let planner = RemotePlanner::new(addr).with_policy(no_retry());
    let error = planner.plan(&request()).expect_err("malformed line must not serve");
    match &error {
        PlanError::Protocol(message) => {
            assert!(message.contains("malformed protocol line"), "{message}")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert_eq!(planner.stats().errors, 1);
    handle.join().expect("fake server exits");
}

#[test]
fn truncated_ok_response_is_a_typed_protocol_error() {
    let (addr, handle) = fake_server(vec![Reply::Truncated("ok source hit cost 1.0 finge")]);
    let planner = RemotePlanner::new(addr).with_policy(no_retry());
    let error = planner.plan(&request()).expect_err("truncated response must not serve");
    assert!(matches!(error, PlanError::Protocol(_)), "got {error:?}");
    handle.join().expect("fake server exits");
}

#[test]
fn disconnect_before_the_response_is_a_typed_transport_error() {
    let (addr, handle) = fake_server(vec![Reply::Disconnect]);
    let planner = RemotePlanner::new(addr).with_policy(no_retry());
    let error = planner.plan(&request()).expect_err("mid-request disconnect must not serve");
    match &error {
        PlanError::Transport(message) => {
            assert!(message.contains("before responding"), "{message}")
        }
        other => panic!("expected a transport error, got {other:?}"),
    }
    handle.join().expect("fake server exits");
}

#[test]
fn backend_error_replies_surface_verbatim() {
    let (addr, handle) = fake_server(vec![Reply::Line("error cannot parse instance: nope")]);
    let planner = RemotePlanner::new(addr).with_policy(no_retry());
    let error = planner.plan(&request()).expect_err("error reply is an error");
    assert_eq!(error, PlanError::Backend("cannot parse instance: nope".into()));
    handle.join().expect("fake server exits");
}

#[test]
fn non_permutation_served_plans_are_protocol_errors() {
    let (addr, handle) =
        fake_server(vec![Reply::Line("ok source hit cost 1 fingerprint 0 plan 0,0,1,2,3")]);
    let planner = RemotePlanner::new(addr).with_policy(no_retry());
    let error = planner.plan(&request()).expect_err("duplicate indices are not a plan");
    match &error {
        PlanError::Protocol(message) => {
            assert!(message.contains("served plan is invalid"), "{message}")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    handle.join().expect("fake server exits");
}

#[test]
fn out_of_sync_response_verbs_are_protocol_errors() {
    let (addr, handle) = fake_server(vec![Reply::Line("ok pong")]);
    let planner = RemotePlanner::new(addr).with_policy(no_retry());
    let error = planner.plan(&request()).expect_err("pong is not a plan");
    match &error {
        PlanError::Protocol(message) => {
            assert!(message.contains("unexpected response to an optimize request"), "{message}")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    handle.join().expect("fake server exits");
}

#[test]
fn busy_beyond_the_retry_budget_is_a_typed_busy_error() {
    let (addr, handle) = fake_server(vec![
        Reply::Line("busy retry-after-ms 7"),
        Reply::Line("busy retry-after-ms 9"),
    ]);
    let policy = RetryPolicy { max_attempts: 2, ..no_retry() };
    let planner = RemotePlanner::new(addr).with_policy(policy);
    let error = planner.plan(&request()).expect_err("budget exhausted");
    assert_eq!(error, PlanError::Busy { retry_after_ms: 9 }, "the LAST hint is reported");
    let stats = planner.stats();
    assert_eq!(stats.retries, 1, "one busy was absorbed by retrying");
    assert_eq!(stats.errors, 1);
    handle.join().expect("fake server exits");
}

#[test]
fn unreachable_backends_are_transport_errors() {
    let planner = RemotePlanner::new(ListenAddr::Unix("/nonexistent/dsq-fleet.sock".into()));
    let error = planner.plan(&request()).expect_err("nothing listens there");
    match &error {
        PlanError::Transport(message) => assert!(message.contains("cannot connect"), "{message}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn planner_reconnects_after_a_backend_restart() {
    let path = std::env::temp_dir().join(format!("dsq-remote-restart-{}.sock", std::process::id()));
    let addr = ListenAddr::Unix(path.clone());
    let config =
        ServerConfig { poll_interval: Duration::from_millis(2), ..ServerConfig::default() };
    let planner = RemotePlanner::new(addr.clone());
    let instance = request();
    let fresh = optimize(&instance);

    let server = Server::start(&addr, &config).expect("first server starts");
    let served = planner.plan(&instance).expect("serves through the live backend");
    assert_eq!(served.cost.to_bits(), fresh.cost().to_bits());
    server.shutdown();

    // Dead backend: the held connection fails, typed, not a panic.
    let error = planner.plan(&instance).expect_err("backend is down");
    assert!(matches!(error, PlanError::Transport(_)), "got {error:?}");

    // Restarted backend on the same path: the next request redials.
    let server = Server::start(&addr, &config).expect("second server starts");
    let served = planner.plan(&instance).expect("reconnects by itself");
    assert_eq!(served.cost.to_bits(), fresh.cost().to_bits());
    assert_eq!(served.source, ServeSource::Cold, "the restarted cache is cold");
    server.shutdown();

    let stats = planner.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.errors, 1);
    assert!(planner.drain().is_ok());
}

/// The ROADMAP satellite: `request_with_retry` against a 1-slot server.
/// A simultaneous burst into 1 worker × 1 queue slot must overflow, and
/// the retry/backoff helper must turn every rejection into eventual
/// service — no request is lost, every plan is exact.
#[test]
fn retry_helper_rides_out_a_one_slot_server() {
    let config = ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"),
        queue_capacity: 1,
        retry_after_ms: 5,
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &config).expect("starts");
    let addr = server.listen_addr().clone();
    let policy = RetryPolicy {
        max_attempts: 64,
        min_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
    };

    let burst = 6usize;
    let instances: Vec<_> =
        (0..burst).map(|seed| generate(Family::BtspHard, 10, 80 + seed as u64)).collect();
    let barrier = Barrier::new(burst);
    let outcomes: Vec<(Response, u32)> = std::thread::scope(|scope| {
        let handles: Vec<_> = instances
            .iter()
            .map(|instance| {
                let addr = &addr;
                let barrier = &barrier;
                let policy = &policy;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client.request_with_retry(instance, policy).expect("retries never error")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("burst thread")).collect()
    });

    let mut retried = 0u64;
    for (instance, (response, busy_replies)) in instances.iter().zip(&outcomes) {
        match response {
            Response::Served { cost, .. } => {
                assert_eq!(cost.to_bits(), optimize(instance).cost().to_bits(), "exact");
            }
            other => panic!("every request must eventually be served, got {other:?}"),
        }
        retried += u64::from(*busy_replies);
    }
    let stats = server.shutdown();
    assert_eq!(stats.cache.requests(), burst as u64, "all {burst} requests were served");
    assert_eq!(stats.busy_rejections, retried, "every rejection was absorbed by a retry");
    assert!(retried >= 1, "a {burst}-wide burst into one slot must overflow at least once");
}

/// Load-aware hints over the wire: a rejected request's hint is never
/// below the configured base and never beyond the 16× cap.
#[test]
fn busy_hints_scale_with_load_but_stay_bounded() {
    let base = 25u64;
    let config = ServerConfig {
        workers: NonZeroUsize::new(1).expect("non-zero"),
        queue_capacity: 1,
        retry_after_ms: base,
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server = Server::start(&ListenAddr::Tcp("127.0.0.1:0".into()), &config).expect("starts");
    let addr = server.listen_addr().clone();

    let burst = 8usize;
    let instances: Vec<_> =
        (0..burst).map(|seed| generate(Family::BtspHard, 10, 90 + seed as u64)).collect();
    let barrier = Barrier::new(burst);
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = instances
            .iter()
            .map(|instance| {
                let addr = &addr;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client.optimize(instance).expect("busy or served")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("burst thread")).collect()
    });

    let mut busy = 0u64;
    for response in &responses {
        if let Response::Busy { retry_after_ms } = response {
            busy += 1;
            assert!(
                (base..=base * 16).contains(retry_after_ms),
                "hint {retry_after_ms} outside [{base}, {}]",
                base * 16
            );
        }
    }
    assert!(busy >= 1, "an {burst}-wide burst into one slot must be partially rejected");
    server.shutdown();
}
