//! Resilience battery: warm partition handoff between live daemons,
//! and fault-injection chaos runs asserting the failure surface stays
//! typed — clients see `PlanError`s / `io::Error`s, never panics, and
//! the server's own request parsing stays clean (zero protocol errors)
//! because faults are injected on the response path only.

use dsq_server::{
    Client, ExportRequest, FaultProfile, ListenAddr, RemotePlanner, Response, Server, ServerConfig,
};
use dsq_service::{HashRing, PlanError, Planner, DEFAULT_VNODES};
use dsq_workloads::{generate, Family};
use std::time::Duration;

fn quick_config() -> ServerConfig {
    ServerConfig { poll_interval: Duration::from_millis(2), ..ServerConfig::default() }
}

fn tcp() -> ListenAddr {
    ListenAddr::Tcp("127.0.0.1:0".into())
}

/// The tentpole path end to end over real sockets: warm one daemon,
/// announce a two-backend layout, export the partition it no longer
/// owns, import it into the inheritor — moved keys hit warm on the new
/// owner, kept keys still hit on the old one, and a re-export is empty
/// (the handoff moved entries, it did not copy them).
#[test]
fn partition_handoff_moves_warm_entries_between_servers() {
    let donor = Server::start(&tcp(), &quick_config()).expect("start donor");
    let inheritor = Server::start(&tcp(), &quick_config()).expect("start inheritor");
    let backends = vec!["backend-a".to_string(), "backend-b".to_string()];
    let ring = HashRing::new(&backends);

    // Warm the donor and record every key's cold answer.
    let mut served: Vec<(dsq_core::QueryInstance, u64, f64)> = Vec::new();
    let mut client = Client::connect(donor.listen_addr()).expect("connect donor");
    for seed in 0..12 {
        let instance = generate(Family::Clustered, 7, 100 + seed);
        match client.optimize(&instance).expect("cold serve") {
            Response::Served { fingerprint, cost, .. } => {
                served.push((instance, fingerprint, cost));
            }
            other => panic!("expected served, got {other:?}"),
        }
    }
    let moved: Vec<&(dsq_core::QueryInstance, u64, f64)> =
        served.iter().filter(|(_, fp, _)| ring.route(*fp) != 0).collect();
    let kept: Vec<&(dsq_core::QueryInstance, u64, f64)> =
        served.iter().filter(|(_, fp, _)| ring.route(*fp) == 0).collect();
    assert!(!moved.is_empty() && !kept.is_empty(), "12 keys must straddle a 2-way split");

    // Handoff: the donor keeps slot 0, hands slot 1's keys over.
    let request = ExportRequest { vnodes: DEFAULT_VNODES, keep: 0, backends: backends.clone() };
    let partition = client.export_partition(&request).expect("export");
    let mut exported: Vec<u64> = partition.entries.iter().map(|e| e.fingerprint).collect();
    let mut expected: Vec<u64> = moved.iter().map(|(_, fp, _)| *fp).collect();
    exported.sort_unstable();
    expected.sort_unstable();
    assert_eq!(exported, expected, "exactly the un-owned keys are exported");

    let mut receiver = Client::connect(inheritor.listen_addr()).expect("connect inheritor");
    let restored = receiver.import_partition(&partition).expect("import");
    assert_eq!(restored, partition.entries.len() as u64);

    // Moved keys are warm on the inheritor: validated hits, same bits,
    // no recomputation.
    for (instance, _, cold_cost) in &moved {
        match receiver.optimize(instance).expect("warm serve") {
            Response::Served { source, cost, .. } => {
                assert_eq!(source, dsq_service::ServeSource::CacheHit, "handoff must stay warm");
                assert_eq!(cost.to_bits(), cold_cost.to_bits());
            }
            other => panic!("expected a hit, got {other:?}"),
        }
    }
    // Kept keys still hit on the donor.
    for (instance, _, cold_cost) in &kept {
        match client.optimize(instance).expect("kept serve") {
            Response::Served { source, cost, .. } => {
                assert_eq!(source, dsq_service::ServeSource::CacheHit);
                assert_eq!(cost.to_bits(), cold_cost.to_bits());
            }
            other => panic!("expected a hit, got {other:?}"),
        }
    }
    // The export was a move: repeating it finds nothing left to hand
    // over.
    let again = client.export_partition(&request).expect("re-export");
    assert!(again.entries.is_empty(), "a second export must be empty");

    let donor_stats = donor.shutdown();
    let inheritor_stats = inheritor.shutdown();
    assert_eq!(donor_stats.protocol_errors, 0);
    assert_eq!(inheritor_stats.protocol_errors, 0);
    assert_eq!(inheritor_stats.cache.misses, 0, "the inheritor never recomputed a moved key");
}

/// Malformed or degenerate layouts are refused with one error line and
/// the connection stays usable — the operator gets the exact
/// duplicate-endpoint message the fleet-config validator pins.
#[test]
fn export_rejects_bad_layouts_and_keeps_the_connection() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let dup = ExportRequest {
        vnodes: 8,
        keep: 0,
        backends: vec!["a".to_string(), "b".to_string(), "a".to_string()],
    };
    let err = client.export_partition(&dup).expect_err("duplicate backends must be refused");
    assert_eq!(err.to_string(), "duplicate backend address `a` in fleet config");
    assert_eq!(client.ping().expect("still usable"), Response::Pong);

    // A malformed export line is a protocol error, not a hangup.
    let solo = ExportRequest { vnodes: 1, keep: 0, backends: vec!["only".to_string()] };
    let empty = client.export_partition(&solo).expect("single-backend layout");
    assert!(empty.entries.is_empty(), "a one-slot ring owns everything");
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

/// An import the receiving cache cannot restore (wrong quantization
/// resolution) earns a typed error reply; the stream stays in sync.
#[test]
fn import_rejects_mismatched_snapshots() {
    let server = Server::start(&tcp(), &quick_config()).expect("start");
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let alien = dsq_core::PlanSnapshot { resolution: 0.125, entries: Vec::new() };
    let err = client.import_partition(&alien).expect_err("mismatched resolution must be refused");
    assert!(err.to_string().starts_with("cannot restore partition:"), "{err}");
    assert_eq!(client.ping().expect("still usable"), Response::Pong);
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

/// The chaos battery: a server dropping, delaying, and truncating its
/// own response frames on a deterministic schedule, driven by
/// reconnecting `RemotePlanner`s. Every outcome must be a served plan
/// or a **typed** `PlanError` — no panic anywhere — and because faults
/// hit only the egress path, the server's request parsing stays
/// pristine: zero protocol errors.
#[test]
fn chaos_battery_yields_typed_errors_and_zero_protocol_errors() {
    for chaos_seed in [7u64, 1234] {
        let config =
            ServerConfig { chaos: Some(FaultProfile::moderate(chaos_seed)), ..quick_config() };
        let server = Server::start(&tcp(), &config).expect("start chaotic server");
        let planner = RemotePlanner::new(server.listen_addr().clone());
        let mut outcomes = [0u64; 2]; // [served, typed errors]
        for seed in 0..40 {
            // A small working set: repeats should hit once cached, and a
            // dropped response must not poison the next attempt.
            let instance = generate(Family::Clustered, 6, 300 + seed % 8);
            match planner.plan(&instance) {
                Ok(served) => {
                    assert!(served.cost.is_finite());
                    outcomes[0] += 1;
                }
                Err(
                    PlanError::Transport(_)
                    | PlanError::Protocol(_)
                    | PlanError::Busy { .. }
                    | PlanError::Backend(_),
                ) => outcomes[1] += 1,
            }
        }
        assert!(outcomes[0] > 0, "seed {chaos_seed}: chaos must not starve serving entirely");
        assert!(outcomes[1] > 0, "seed {chaos_seed}: moderate chaos must surface some faults");
        let stats = server.shutdown();
        assert_eq!(
            stats.protocol_errors, 0,
            "seed {chaos_seed}: egress-only faults must leave request parsing clean"
        );
    }
}

/// Chaos replays deterministically: the same seed produces the same
/// per-connection fault schedule, so a failing chaos run can be
/// reproduced exactly.
#[test]
fn chaos_schedule_is_deterministic_per_seed() {
    let run = |chaos_seed: u64| -> Vec<bool> {
        let config =
            ServerConfig { chaos: Some(FaultProfile::moderate(chaos_seed)), ..quick_config() };
        let server = Server::start(&tcp(), &config).expect("start");
        // One connection, a fixed request sequence: the fault pattern is
        // a pure function of the seed and the accept index.
        let mut client = Client::connect(server.listen_addr()).expect("connect");
        let outcomes: Vec<bool> = (0..16)
            .map(|seed| {
                let instance = generate(Family::Euclidean, 5, 400 + seed % 4);
                match client.optimize(&instance) {
                    Ok(Response::Served { .. }) => true,
                    _ => {
                        // The stream may be dead after a fault; dial
                        // fresh like a real client would.
                        client = Client::connect(server.listen_addr()).expect("reconnect");
                        false
                    }
                }
            })
            .collect();
        drop(client);
        server.shutdown();
        outcomes
    };
    let first = run(99);
    let second = run(99);
    assert_eq!(first, second, "same seed, same fault schedule");
}
