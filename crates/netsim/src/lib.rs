//! Network topology models for decentralized service queries.
//!
//! The optimizer only ever observes the per-tuple transfer matrix
//! `t_{i,j}`; this crate generates such matrices from parametric host
//! topologies, standing in for the testbed networks of the paper's
//! evaluation (see DESIGN.md, substitution table). Four families cover the
//! heterogeneity regimes that separate the decentralized problem from the
//! uniform-cost special case of Srivastava et al.:
//!
//! * [`euclidean`] — hosts on a plane, latency proportional to distance
//!   (wide-area deployments, triangle inequality holds);
//! * [`clustered`] — few data centers with cheap intra- and expensive
//!   inter-cluster links (the sharpest win for decentralized-aware plans);
//! * [`hub_spoke`] — spokes route through their hub (star/ISP-like);
//! * [`last_mile`] — per-host uplink + downlink costs,
//!   `t_{i,j} = up_i + down_j` (consumer-broadband asymmetry);
//! * [`uniform_random`] — i.i.d. entries, optionally asymmetric (an
//!   adversarial, structure-free regime).
//!
//! All generators are deterministic in their seed. [`heterogeneity`]
//! quantifies a matrix's spread and [`scale_spread`] interpolates between
//! a matrix and its uniform mean — the knob of experiment E6.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use dsq_core::CommMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated topology: the transfer matrix plus whatever structure the
/// generator knows about (host coordinates, cluster assignment).
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    comm: CommMatrix,
    positions: Option<Vec<(f64, f64)>>,
    cluster_of: Option<Vec<usize>>,
}

impl Topology {
    /// Descriptive name of the generating family.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-tuple transfer cost matrix.
    pub fn comm(&self) -> &CommMatrix {
        &self.comm
    }

    /// Consumes the topology, returning the matrix.
    pub fn into_comm(self) -> CommMatrix {
        self.comm
    }

    /// Host coordinates, if the family is geometric.
    pub fn positions(&self) -> Option<&[(f64, f64)]> {
        self.positions.as_deref()
    }

    /// Cluster assignment, if the family is clustered.
    pub fn cluster_of(&self) -> Option<&[usize]> {
        self.cluster_of.as_deref()
    }
}

/// Hosts placed uniformly at random on a `side × side` plane; transfer
/// cost `base + rate · distance`, symmetric.
///
/// # Panics
///
/// Panics if `n == 0` or any parameter is negative/non-finite.
pub fn euclidean(n: usize, side: f64, base: f64, rate: f64, seed: u64) -> Topology {
    assert!(n > 0, "topology needs at least one host");
    assert!(side >= 0.0 && base >= 0.0 && rate >= 0.0, "parameters must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let positions: Vec<(f64, f64)> =
        (0..n).map(|_| (rng.gen_range(0.0..=side), rng.gen_range(0.0..=side))).collect();
    let comm = CommMatrix::from_fn(n, |i, j| {
        if i == j {
            0.0
        } else {
            let (xi, yi) = positions[i];
            let (xj, yj) = positions[j];
            base + rate * ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
        }
    });
    Topology { name: "euclidean".into(), comm, positions: Some(positions), cluster_of: None }
}

/// Hosts assigned uniformly to `clusters` data centers; `intra` cost
/// within a cluster, `inter` across clusters, each perturbed by a
/// multiplicative jitter drawn from `[1-jitter, 1+jitter]` (asymmetric).
///
/// # Panics
///
/// Panics if `n == 0`, `clusters == 0`, or `jitter` is outside `[0, 1)`.
pub fn clustered(
    n: usize,
    clusters: usize,
    intra: f64,
    inter: f64,
    jitter: f64,
    seed: u64,
) -> Topology {
    assert!(n > 0 && clusters > 0, "need hosts and clusters");
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let cluster_of: Vec<usize> = (0..n).map(|_| rng.gen_range(0..clusters)).collect();
    let comm = CommMatrix::from_fn(n, |i, j| {
        if i == j {
            0.0
        } else {
            let nominal = if cluster_of[i] == cluster_of[j] { intra } else { inter };
            nominal * rng.gen_range(1.0 - jitter..=1.0 + jitter)
        }
    });
    Topology { name: "clustered".into(), comm, positions: None, cluster_of: Some(cluster_of) }
}

/// Star-of-stars: every host hangs off one of `hubs` hubs; traffic costs
/// `spoke_leg` to reach the hub, `hub_leg` between distinct hubs, and
/// `spoke_leg` down to the destination (intra-hub pairs skip the hub leg).
///
/// # Panics
///
/// Panics if `n == 0` or `hubs == 0`.
pub fn hub_spoke(n: usize, hubs: usize, spoke_leg: f64, hub_leg: f64, seed: u64) -> Topology {
    assert!(n > 0 && hubs > 0, "need hosts and hubs");
    let mut rng = StdRng::seed_from_u64(seed);
    let hub_of: Vec<usize> = (0..n).map(|_| rng.gen_range(0..hubs)).collect();
    let comm = CommMatrix::from_fn(n, |i, j| {
        if i == j {
            0.0
        } else if hub_of[i] == hub_of[j] {
            2.0 * spoke_leg
        } else {
            2.0 * spoke_leg + hub_leg
        }
    });
    Topology { name: "hub-spoke".into(), comm, positions: None, cluster_of: Some(hub_of) }
}

/// I.i.d. transfer costs in `[lo, hi]`; `symmetric` mirrors the upper
/// triangle.
///
/// # Panics
///
/// Panics if `n == 0` or the range is invalid.
pub fn uniform_random(n: usize, lo: f64, hi: f64, symmetric: bool, seed: u64) -> Topology {
    assert!(n > 0, "topology needs at least one host");
    assert!(lo >= 0.0 && hi >= lo, "invalid cost range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = vec![vec![0.0; n]; n];
    // Indexed loops: the symmetric branch reads across rows (`rows[j][i]`
    // while filling row `i`), which iterator adapters cannot express.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if symmetric && j < i {
                rows[i][j] = rows[j][i];
            } else {
                rows[i][j] = rng.gen_range(lo..=hi);
            }
        }
    }
    let comm = CommMatrix::from_rows(rows).expect("generated rows are square and valid");
    Topology { name: "uniform-random".into(), comm, positions: None, cluster_of: None }
}

/// Last-mile decomposition: every host has an uplink cost and a downlink
/// cost drawn from the given ranges, and `t_{i,j} = up_i + down_j`
/// (asymmetric whenever uplinks and downlinks differ — the
/// consumer-broadband shape where send capacity, not distance, dominates).
///
/// # Panics
///
/// Panics if `n == 0` or a range is invalid (`lo > hi` or negative).
pub fn last_mile(n: usize, up: (f64, f64), down: (f64, f64), seed: u64) -> Topology {
    assert!(n > 0, "topology needs at least one host");
    for (lo, hi) in [up, down] {
        assert!(lo >= 0.0 && hi >= lo, "invalid cost range");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let ups: Vec<f64> = (0..n).map(|_| rng.gen_range(up.0..=up.1)).collect();
    let downs: Vec<f64> = (0..n).map(|_| rng.gen_range(down.0..=down.1)).collect();
    let comm = CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { ups[i] + downs[j] });
    Topology { name: "last-mile".into(), comm, positions: None, cluster_of: None }
}

/// Coefficient of variation (std-dev / mean) of the off-diagonal entries —
/// the heterogeneity measure swept in experiment E6. Zero for uniform
/// matrices and matrices smaller than 2×2.
pub fn heterogeneity(comm: &CommMatrix) -> f64 {
    let n = comm.len();
    if n < 2 {
        return 0.0;
    }
    let entries: Vec<f64> =
        (0..n).flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| comm.get(i, j))).collect();
    let mean = entries.iter().sum::<f64>() / entries.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = entries.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / entries.len() as f64;
    var.sqrt() / mean
}

/// Interpolates every off-diagonal entry between the matrix mean and its
/// original value: `factor = 0` collapses to the uniform mean, `1` is the
/// identity, `> 1` exaggerates the spread (clamped at zero). The diagonal
/// stays zero. This is the heterogeneity knob of experiment E6.
///
/// # Panics
///
/// Panics if `factor` is negative or non-finite.
pub fn scale_spread(comm: &CommMatrix, factor: f64) -> CommMatrix {
    assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
    let mean = comm.mean_off_diagonal();
    CommMatrix::from_fn(comm.len(), |i, j| {
        if i == j {
            0.0
        } else {
            (mean + factor * (comm.get(i, j) - mean)).max(0.0)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_symmetric_and_metric_like() {
        let topo = euclidean(12, 100.0, 1.0, 0.1, 7);
        assert_eq!(topo.comm().len(), 12);
        assert!(topo.comm().is_symmetric(1e-12));
        assert_eq!(topo.positions().unwrap().len(), 12);
        // base > 0 ⇒ strictly positive off-diagonal.
        assert!(topo.comm().min_off_diagonal() >= 1.0);
        // Triangle inequality holds up to the base constant:
        // t(i,k) ≤ t(i,j) + t(j,k) since dist is a metric and base ≥ 0.
        let c = topo.comm();
        for i in 0..12 {
            for j in 0..12 {
                for k in 0..12 {
                    if i != j && j != k && i != k {
                        assert!(c.get(i, k) <= c.get(i, j) + c.get(j, k) + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = euclidean(8, 50.0, 0.5, 0.2, 3);
        let b = euclidean(8, 50.0, 0.5, 0.2, 3);
        assert_eq!(a.comm(), b.comm());
        let c = euclidean(8, 50.0, 0.5, 0.2, 4);
        assert_ne!(a.comm(), c.comm());
    }

    #[test]
    fn clustered_separates_intra_and_inter() {
        let topo = clustered(20, 3, 1.0, 10.0, 0.0, 1);
        let clusters = topo.cluster_of().unwrap();
        let c = topo.comm();
        for i in 0..20 {
            for j in 0..20 {
                if i == j {
                    continue;
                }
                if clusters[i] == clusters[j] {
                    assert_eq!(c.get(i, j), 1.0);
                } else {
                    assert_eq!(c.get(i, j), 10.0);
                }
            }
        }
    }

    #[test]
    fn clustered_jitter_stays_in_band() {
        let topo = clustered(15, 2, 2.0, 8.0, 0.25, 9);
        let c = topo.comm();
        for i in 0..15 {
            for j in 0..15 {
                if i != j {
                    let v = c.get(i, j);
                    assert!(
                        (1.5..=2.5).contains(&v) || (6.0..=10.0).contains(&v),
                        "value {v} outside jitter bands"
                    );
                }
            }
        }
    }

    #[test]
    fn hub_spoke_costs_compose() {
        let topo = hub_spoke(10, 2, 1.0, 5.0, 2);
        let hubs = topo.cluster_of().unwrap();
        let c = topo.comm();
        for i in 0..10 {
            for j in 0..10 {
                if i != j {
                    let expected = if hubs[i] == hubs[j] { 2.0 } else { 7.0 };
                    assert_eq!(c.get(i, j), expected);
                }
            }
        }
    }

    #[test]
    fn uniform_random_symmetry_flag() {
        let sym = uniform_random(9, 0.5, 2.0, true, 5);
        assert!(sym.comm().is_symmetric(1e-12));
        let asym = uniform_random(9, 0.5, 2.0, false, 5);
        assert!(!asym.comm().is_symmetric(1e-9));
        assert!(asym.comm().min_off_diagonal() >= 0.5);
        assert!(asym.comm().max_off_diagonal() <= 2.0);
    }

    #[test]
    fn heterogeneity_orders_regimes() {
        let uniform = CommMatrix::uniform(10, 3.0);
        assert_eq!(heterogeneity(&uniform), 0.0);
        let mild = clustered(10, 2, 2.0, 3.0, 0.0, 1).into_comm();
        let harsh = clustered(10, 2, 0.1, 30.0, 0.0, 1).into_comm();
        assert!(heterogeneity(&mild) < heterogeneity(&harsh));
        assert_eq!(heterogeneity(&CommMatrix::zeros(1)), 0.0);
    }

    #[test]
    fn scale_spread_endpoints() {
        let base = uniform_random(6, 1.0, 9.0, false, 11).into_comm();
        let collapsed = scale_spread(&base, 0.0);
        assert!(heterogeneity(&collapsed) < 1e-12);
        assert!((collapsed.mean_off_diagonal() - base.mean_off_diagonal()).abs() < 1e-9);
        let same = scale_spread(&base, 1.0);
        for i in 0..6 {
            for j in 0..6 {
                assert!((same.get(i, j) - base.get(i, j)).abs() < 1e-12);
            }
        }
        let wider = scale_spread(&base, 2.0);
        assert!(heterogeneity(&wider) > heterogeneity(&base) - 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_panics() {
        euclidean(0, 1.0, 0.0, 1.0, 0);
    }

    #[test]
    fn last_mile_decomposes_into_up_plus_down() {
        let topo = last_mile(8, (1.0, 5.0), (0.1, 0.5), 4);
        let c = topo.comm();
        // t(i,j) - t(i,k) must be independent of i (pure downlink delta).
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    if i == j || i == k || j == k {
                        continue;
                    }
                    let delta_from_i = c.get(i, j) - c.get(i, k);
                    // Pick another sender m and check the same delta.
                    let m = (0..8).find(|&m| m != i && m != j && m != k).unwrap();
                    let delta_from_m = c.get(m, j) - c.get(m, k);
                    assert!(
                        (delta_from_i - delta_from_m).abs() < 1e-9,
                        "downlink delta must be sender-independent"
                    );
                }
            }
        }
        // Uplink-dominated ranges produce asymmetry.
        assert!(!c.is_symmetric(1e-6));
    }

    #[test]
    fn scale_spread_never_goes_negative() {
        // A bimodal matrix with entries far below the mean: exaggerating
        // the spread would push them negative without the clamp.
        let base = clustered(8, 2, 0.1, 20.0, 0.0, 3).into_comm();
        let wide = scale_spread(&base, 10.0);
        for i in 0..8 {
            for j in 0..8 {
                assert!(wide.get(i, j) >= 0.0, "negative transfer at ({i},{j})");
            }
        }
    }

    #[test]
    fn single_hub_collapses_to_two_legs() {
        let topo = hub_spoke(6, 1, 1.5, 99.0, 0);
        let c = topo.comm();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    // Everyone shares the hub: never pays the hub leg.
                    assert_eq!(c.get(i, j), 3.0);
                }
            }
        }
    }

    #[test]
    fn topology_accessors_expose_structure() {
        let topo = euclidean(5, 10.0, 0.1, 1.0, 2);
        assert_eq!(topo.name(), "euclidean");
        assert!(topo.cluster_of().is_none());
        assert_eq!(topo.positions().unwrap().len(), 5);
        let clustered = clustered(5, 2, 1.0, 2.0, 0.0, 2);
        assert!(clustered.positions().is_none());
        assert!(clustered.cluster_of().unwrap().iter().all(|&c| c < 2));
    }
}
