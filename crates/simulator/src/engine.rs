//! The discrete-event engine.
//!
//! Each plan position is a *stage*: a single-threaded server that
//! alternates between processing one input tuple (for a sampled service
//! time) and transmitting output blocks downstream (occupying the thread
//! for `count · t_{i,next}`, per the paper's sequential process-and-send
//! model). Input queues are tuple *counts* — tuples are indistinguishable
//! — so memory stays constant regardless of backlog.
//!
//! The event heap holds stage wake-ups and (for paced arrivals) source
//! events; every event does O(1) work, and a run generates roughly
//! `tuples × stages × 2` events.

use crate::config::{ArrivalProcess, SelectivityModel, ServiceTimeModel, SimConfig};
use crate::report::{LatencyStats, SimReport, StageStats};
use dsq_core::{Plan, QueryInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Simulates the decentralized pipelined execution of `plan` and returns
/// the run's telemetry.
///
/// # Panics
///
/// Panics if the plan does not match the instance or the configuration is
/// invalid (see [`SimConfig::assert_valid`]).
///
/// # Examples
///
/// ```
/// use dsq_core::{CommMatrix, Plan, QueryInstance, Service};
/// use dsq_simulator::{simulate, SimConfig};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(0.002, 0.5), Service::new(0.003, 1.0)],
///     CommMatrix::uniform(2, 0.001),
/// )?;
/// let plan = Plan::new(vec![0, 1])?;
/// let report = simulate(&inst, &plan, &SimConfig { tuples: 1_000, ..SimConfig::default() });
/// assert_eq!(report.tuples_in, 1_000);
/// assert_eq!(report.tuples_delivered, 500);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(instance: &QueryInstance, plan: &Plan, config: &SimConfig) -> SimReport {
    assert_eq!(plan.len(), instance.len(), "plan must cover the instance");
    config.assert_valid();
    Engine::new(instance, plan, config).run()
}

const SOURCE: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    stage: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first, ties by
    // insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum StageState {
    Idle,
    Processing,
    Sending(u64),
    Finished,
}

struct Stage {
    service: usize,
    mean_cost: f64,
    selectivity: f64,
    /// Per-tuple transfer cost to the next stage (sink cost for the last).
    transfer_out: f64,
    queue: u64,
    out_buffer: u64,
    upstream_done: bool,
    state: StageState,
    /// Deterministic selectivity accumulator (Expected mode).
    acc: f64,
    busy: f64,
    tuples_in: u64,
    tuples_out: u64,
    blocks_sent: u64,
    peak_queue: u64,
    // --- latency tracking (populated only when enabled): birth times of
    // queued tuples, of buffered outputs, and of an in-flight block.
    queue_tags: VecDeque<f64>,
    buffer_tags: Vec<f64>,
    inflight_tags: Vec<f64>,
    processing_tag: f64,
}

struct Engine<'a> {
    config: &'a SimConfig,
    stages: Vec<Stage>,
    heap: BinaryHeap<Event>,
    seq: u64,
    rng: StdRng,
    now: f64,
    deliveries: Vec<(f64, u64)>,
    /// End-to-end sojourn samples (latency tracking only).
    sojourns: Vec<f64>,
    arrivals_remaining: u64,
}

impl<'a> Engine<'a> {
    fn new(instance: &QueryInstance, plan: &Plan, config: &'a SimConfig) -> Self {
        let order = plan.indices();
        let n = order.len();
        let stages = order
            .iter()
            .enumerate()
            .map(|(pos, &s)| Stage {
                service: s,
                mean_cost: instance.cost(s),
                selectivity: instance.selectivity(s),
                transfer_out: if pos + 1 < n {
                    instance.transfer(s, order[pos + 1])
                } else {
                    instance.sink_cost(s)
                },
                queue: 0,
                out_buffer: 0,
                upstream_done: false,
                state: StageState::Idle,
                acc: 0.0,
                busy: 0.0,
                tuples_in: 0,
                tuples_out: 0,
                blocks_sent: 0,
                peak_queue: 0,
                queue_tags: VecDeque::new(),
                buffer_tags: Vec::new(),
                inflight_tags: Vec::new(),
                processing_tag: 0.0,
            })
            .collect();
        Engine {
            config,
            stages,
            heap: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            now: 0.0,
            deliveries: Vec::new(),
            sojourns: Vec::new(),
            arrivals_remaining: config.tuples,
        }
    }

    fn run(mut self) -> SimReport {
        match self.config.arrivals {
            ArrivalProcess::AllAtStart => {
                self.stages[0].queue = self.config.tuples;
                self.stages[0].peak_queue = self.config.tuples;
                if self.config.track_latency {
                    self.stages[0].queue_tags =
                        std::iter::repeat_n(0.0, self.config.tuples as usize).collect();
                }
                self.stages[0].upstream_done = true;
                self.arrivals_remaining = 0;
                self.start_if_idle(0);
            }
            ArrivalProcess::Paced { .. } => self.schedule(0.0, SOURCE),
        }

        while let Some(event) = self.heap.pop() {
            debug_assert!(event.time >= self.now, "time must not run backwards");
            self.now = event.time;
            if event.stage == SOURCE {
                self.source_arrival();
            } else {
                self.wake(event.stage);
            }
        }

        let tuples_in = self.config.tuples;
        let makespan = self.now;
        let delivered: u64 = self.deliveries.iter().map(|&(_, c)| c).sum();
        let realized_sel = delivered as f64 / tuples_in as f64;
        let steady = steady_rate(&self.deliveries).map(|sink_rate| {
            if realized_sel > 0.0 {
                sink_rate / realized_sel
            } else {
                0.0
            }
        });
        SimReport {
            tuples_in,
            tuples_delivered: delivered,
            makespan,
            throughput: if makespan > 0.0 { tuples_in as f64 / makespan } else { f64::INFINITY },
            steady_throughput: steady,
            stages: self
                .stages
                .iter()
                .enumerate()
                .map(|(position, s)| StageStats {
                    position,
                    service: s.service,
                    tuples_in: s.tuples_in,
                    tuples_out: s.tuples_out,
                    blocks_sent: s.blocks_sent,
                    busy_time: s.busy,
                    peak_queue: s.peak_queue,
                })
                .collect(),
            latency: LatencyStats::from_samples(self.sojourns),
        }
    }

    fn schedule(&mut self, time: f64, stage: usize) {
        self.seq += 1;
        self.heap.push(Event { time, seq: self.seq, stage });
    }

    fn source_arrival(&mut self) {
        self.arrivals_remaining -= 1;
        self.stages[0].queue += 1;
        if self.config.track_latency {
            let now = self.now;
            self.stages[0].queue_tags.push_back(now);
        }
        self.stages[0].peak_queue = self.stages[0].peak_queue.max(self.stages[0].queue);
        if self.arrivals_remaining == 0 {
            self.stages[0].upstream_done = true;
        } else if let ArrivalProcess::Paced { interval } = self.config.arrivals {
            self.schedule(self.now + interval, SOURCE);
        }
        self.start_if_idle(0);
    }

    /// The stage finished its current activity; account for it and start
    /// the next one.
    fn wake(&mut self, s: usize) {
        match self.stages[s].state {
            StageState::Processing => {
                let k = self.realize_outputs(s);
                let stage = &mut self.stages[s];
                stage.tuples_out += k;
                stage.out_buffer += k;
                if self.config.track_latency {
                    let tag = stage.processing_tag;
                    stage.buffer_tags.extend(std::iter::repeat_n(tag, k as usize));
                }
                stage.state = StageState::Idle;
            }
            StageState::Sending(count) => {
                let stage = &mut self.stages[s];
                stage.blocks_sent += 1;
                stage.state = StageState::Idle;
                self.deliver(s, count);
            }
            StageState::Idle | StageState::Finished => {
                // Spurious wake (e.g. raced with an upstream EOS); ignore.
            }
        }
        self.start_if_idle(s);
    }

    fn deliver(&mut self, from: usize, count: u64) {
        let tags = if self.config.track_latency {
            std::mem::take(&mut self.stages[from].inflight_tags)
        } else {
            Vec::new()
        };
        if from + 1 < self.stages.len() {
            let next = &mut self.stages[from + 1];
            next.queue += count;
            next.queue_tags.extend(tags);
            next.peak_queue = next.peak_queue.max(next.queue);
            self.start_if_idle(from + 1);
        } else {
            self.deliveries.push((self.now, count));
            let now = self.now;
            self.sojourns.extend(tags.into_iter().map(|birth| now - birth));
        }
    }

    /// Decision procedure of the single service thread: send a full block
    /// if one is ready, else process the next tuple, else flush / finish
    /// once upstream is drained.
    fn start_if_idle(&mut self, s: usize) {
        if self.stages[s].state != StageState::Idle {
            return;
        }
        let block = self.config.block_size;
        let stage = &self.stages[s];
        if stage.out_buffer >= block {
            self.begin_send(s, block);
        } else if stage.queue > 0 {
            self.begin_processing(s);
        } else if stage.upstream_done {
            if stage.out_buffer > 0 {
                let rest = stage.out_buffer;
                self.begin_send(s, rest);
            } else {
                self.stages[s].state = StageState::Finished;
                if s + 1 < self.stages.len() {
                    self.stages[s + 1].upstream_done = true;
                    self.start_if_idle(s + 1);
                }
            }
        }
        // else: idle, waiting for upstream deliveries.
    }

    fn begin_processing(&mut self, s: usize) {
        let dt = self.sample_service_time(s);
        let track = self.config.track_latency;
        let stage = &mut self.stages[s];
        stage.queue -= 1;
        if track {
            stage.processing_tag =
                stage.queue_tags.pop_front().expect("tags mirror the queue count");
        }
        stage.tuples_in += 1;
        stage.busy += dt;
        stage.state = StageState::Processing;
        self.schedule(self.now + dt, s);
    }

    fn begin_send(&mut self, s: usize, count: u64) {
        let track = self.config.track_latency;
        let stage = &mut self.stages[s];
        let dt = count as f64 * stage.transfer_out;
        stage.out_buffer -= count;
        if track {
            stage.inflight_tags = stage.buffer_tags.drain(..count as usize).collect();
        }
        stage.busy += dt;
        stage.state = StageState::Sending(count);
        self.schedule(self.now + dt, s);
    }

    fn sample_service_time(&mut self, s: usize) -> f64 {
        let mean = self.stages[s].mean_cost;
        match self.config.service_time {
            ServiceTimeModel::Deterministic => mean,
            ServiceTimeModel::Exponential => {
                if mean == 0.0 {
                    0.0
                } else {
                    let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    -mean * u.ln()
                }
            }
            ServiceTimeModel::Uniform { spread } => {
                if mean == 0.0 || spread == 0.0 {
                    mean
                } else {
                    self.rng.gen_range(mean * (1.0 - spread)..=mean * (1.0 + spread))
                }
            }
        }
    }

    fn realize_outputs(&mut self, s: usize) -> u64 {
        let sigma = self.stages[s].selectivity;
        match self.config.selectivity {
            SelectivityModel::Expected => {
                let stage = &mut self.stages[s];
                stage.acc += sigma;
                let k = stage.acc.floor();
                stage.acc -= k;
                k as u64
            }
            SelectivityModel::Stochastic => {
                let whole = sigma.floor();
                let frac = sigma - whole;
                let extra = u64::from(frac > 0.0 && self.rng.gen_bool(frac));
                whole as u64 + extra
            }
        }
    }
}

/// Input-agnostic steady-state rate at the sink: deliveries per second
/// over the middle half (by cumulative count) of the delivery log.
fn steady_rate(deliveries: &[(f64, u64)]) -> Option<f64> {
    if deliveries.len() < 4 {
        return None;
    }
    let total: u64 = deliveries.iter().map(|&(_, c)| c).sum();
    let (lo, hi) = (total / 4, total * 3 / 4);
    let mut cumulative = 0u64;
    let mut t_lo = None;
    let mut t_hi = None;
    let mut c_lo = 0u64;
    let mut c_hi = 0u64;
    for &(t, c) in deliveries {
        cumulative += c;
        if t_lo.is_none() && cumulative >= lo {
            t_lo = Some(t);
            c_lo = cumulative;
        }
        if cumulative >= hi {
            t_hi = Some(t);
            c_hi = cumulative;
            break;
        }
    }
    match (t_lo, t_hi) {
        (Some(a), Some(b)) if b > a && c_hi > c_lo => Some((c_hi - c_lo) as f64 / (b - a)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{bottleneck_cost, cost_terms, CommMatrix, Service};

    fn two_stage() -> (QueryInstance, Plan) {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.01, 1.0), Service::new(0.02, 1.0)],
            CommMatrix::uniform(2, 0.0),
        )
        .unwrap();
        (inst, Plan::new(vec![0, 1]).unwrap())
    }

    #[test]
    fn hand_computed_two_stage_makespan() {
        // No transfers: stage 0 takes 0.01/tuple, stage 1 0.02/tuple.
        // 100 tuples: stage 1 is the bottleneck. It can only start after
        // the first block (32) is ready, then runs continuously:
        // makespan = 0.01·32 + 100·0.02 = 2.32.
        let (inst, plan) = two_stage();
        let report = simulate(&inst, &plan, &SimConfig { tuples: 100, ..SimConfig::default() });
        assert_eq!(report.tuples_delivered, 100);
        assert!((report.makespan - 2.32).abs() < 1e-9, "makespan {}", report.makespan);
        assert_eq!(report.bottleneck_position(), 1);
        assert!((report.stages[0].busy_time - 1.0).abs() < 1e-9);
        assert!((report.stages[1].busy_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn expected_selectivity_is_exact() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.001, 0.5), Service::new(0.001, 0.25)],
            CommMatrix::uniform(2, 0.0),
        )
        .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        let report = simulate(&inst, &plan, &SimConfig { tuples: 1_000, ..SimConfig::default() });
        assert_eq!(report.stages[0].tuples_out, 500);
        assert_eq!(report.stages[1].tuples_in, 500);
        assert_eq!(report.tuples_delivered, 125);
    }

    #[test]
    fn proliferative_services_multiply() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.001, 3.0), Service::new(0.001, 1.0)],
            CommMatrix::uniform(2, 0.0),
        )
        .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        let report = simulate(&inst, &plan, &SimConfig { tuples: 200, ..SimConfig::default() });
        assert_eq!(report.stages[0].tuples_out, 600);
        assert_eq!(report.tuples_delivered, 600);
    }

    #[test]
    fn throughput_matches_eq1_prediction() {
        // A saturated heterogeneous pipeline: measured input throughput
        // must approach 1 / bottleneck_cost.
        let inst = QueryInstance::from_parts(
            vec![
                Service::new(0.004, 0.7),
                Service::new(0.006, 0.5),
                Service::new(0.012, 0.9),
                Service::new(0.002, 1.0),
            ],
            CommMatrix::from_fn(
                4,
                |i, j| if i == j { 0.0 } else { 0.001 * (1 + (i + j) % 3) as f64 },
            ),
        )
        .unwrap();
        for order in [vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![1, 0, 3, 2]] {
            let plan = Plan::new(order).unwrap();
            let predicted = bottleneck_cost(&inst, &plan);
            let report = simulate(
                &inst,
                &plan,
                &SimConfig { tuples: 20_000, block_size: 16, ..SimConfig::default() },
            );
            let measured = report.throughput;
            let ratio = measured * predicted;
            assert!(
                (0.9..=1.02).contains(&ratio),
                "throughput {measured} vs predicted {} (ratio {ratio})",
                1.0 / predicted
            );
        }
    }

    #[test]
    fn per_stage_busy_time_matches_cost_terms() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.003, 0.6), Service::new(0.005, 0.8), Service::new(0.002, 1.0)],
            CommMatrix::uniform(3, 0.002),
        )
        .unwrap();
        let plan = Plan::new(vec![2, 0, 1]).unwrap();
        let report = simulate(
            &inst,
            &plan,
            &SimConfig { tuples: 10_000, block_size: 8, ..SimConfig::default() },
        );
        for (term, stage) in cost_terms(&inst, &plan).iter().zip(&report.stages) {
            let measured = stage.unit_busy_time(report.tuples_in);
            assert!(
                (measured - term.term).abs() <= 0.05 * term.term.max(1e-9),
                "position {}: measured {measured} vs term {}",
                term.position,
                term.term
            );
        }
    }

    #[test]
    fn stochastic_mode_is_seeded_and_plausible() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.001, 0.5), Service::new(0.001, 1.0)],
            CommMatrix::uniform(2, 0.0),
        )
        .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        let cfg = SimConfig {
            tuples: 5_000,
            selectivity: SelectivityModel::Stochastic,
            service_time: ServiceTimeModel::Exponential,
            seed: 9,
            ..SimConfig::default()
        };
        let a = simulate(&inst, &plan, &cfg);
        let b = simulate(&inst, &plan, &cfg);
        assert_eq!(a, b, "same seed, same run");
        let sel = a.stages[0].realized_selectivity();
        assert!((0.45..0.55).contains(&sel), "Bernoulli(0.5) realized {sel}");
        let c = simulate(&inst, &plan, &SimConfig { seed: 10, ..cfg });
        assert_ne!(a.tuples_delivered, c.tuples_delivered);
    }

    #[test]
    fn paced_arrivals_cap_throughput() {
        let (inst, plan) = two_stage();
        // Arrivals every 0.05s ≫ bottleneck 0.02s: the pipeline is idle
        // most of the time and throughput tracks the arrival rate.
        let report = simulate(
            &inst,
            &plan,
            &SimConfig {
                tuples: 500,
                arrivals: ArrivalProcess::Paced { interval: 0.05 },
                block_size: 1,
                ..SimConfig::default()
            },
        );
        assert!((report.throughput - 20.0).abs() / 20.0 < 0.05, "got {}", report.throughput);
    }

    #[test]
    fn block_size_one_disables_batching() {
        let (inst, plan) = two_stage();
        let report = simulate(
            &inst,
            &plan,
            &SimConfig { tuples: 50, block_size: 1, ..SimConfig::default() },
        );
        assert_eq!(report.stages[0].blocks_sent, 50);
        assert_eq!(report.tuples_delivered, 50);
    }

    #[test]
    fn zero_selectivity_starves_downstream() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.001, 0.0), Service::new(1.0, 1.0)],
            CommMatrix::uniform(2, 0.0),
        )
        .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        let report = simulate(&inst, &plan, &SimConfig { tuples: 100, ..SimConfig::default() });
        assert_eq!(report.tuples_delivered, 0);
        assert_eq!(report.stages[1].tuples_in, 0);
        assert!((report.makespan - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sink_costs_occupy_the_last_stage() {
        let inst = QueryInstance::builder()
            .services(vec![Service::new(0.001, 1.0)])
            .comm(CommMatrix::zeros(1))
            .sink(vec![0.01])
            .build()
            .unwrap();
        let plan = Plan::new(vec![0]).unwrap();
        let report = simulate(&inst, &plan, &SimConfig { tuples: 100, ..SimConfig::default() });
        // busy = 100·0.001 processing + 100·0.01 sending.
        assert!((report.stages[0].busy_time - 1.1).abs() < 1e-9);
    }

    #[test]
    fn latency_of_an_unloaded_deterministic_pipeline_is_exact() {
        // One tuple every 1s through two stages (c = 0.01 and 0.02,
        // transfer 0.005/tuple, blocks of 1): the pipeline is idle when
        // each tuple arrives, so every sojourn is exactly
        // 0.01 + 0.005 + 0.02 + 0.005 = 0.04.
        let inst = QueryInstance::builder()
            .services(vec![Service::new(0.01, 1.0), Service::new(0.02, 1.0)])
            .comm(CommMatrix::uniform(2, 0.005))
            .sink(vec![0.0, 0.005])
            .build()
            .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        let report = simulate(
            &inst,
            &plan,
            &SimConfig {
                tuples: 50,
                block_size: 1,
                arrivals: ArrivalProcess::Paced { interval: 1.0 },
                track_latency: true,
                ..SimConfig::default()
            },
        );
        let latency = report.latency.expect("tracking enabled, tuples delivered");
        assert_eq!(latency.count, 50);
        assert!((latency.mean - 0.04).abs() < 1e-9, "mean {}", latency.mean);
        assert!((latency.max - 0.04).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_with_load() {
        // Queueing delay needs service-time variance: a deterministic
        // pipeline fed below saturation never queues (D/D/1), so this
        // test uses exponential service times (M-like servers).
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.01, 1.0), Service::new(0.02, 1.0)],
            CommMatrix::uniform(2, 0.0),
        )
        .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        let run = |interval: f64| {
            simulate(
                &inst,
                &plan,
                &SimConfig {
                    tuples: 4_000,
                    block_size: 1,
                    arrivals: ArrivalProcess::Paced { interval },
                    service_time: ServiceTimeModel::Exponential,
                    track_latency: true,
                    seed: 42,
                    ..SimConfig::default()
                },
            )
            .latency
            .expect("delivered")
        };
        // Bottleneck mean rate = 50/s; load 0.4 vs 0.95.
        let light = run(0.05);
        let heavy = run(0.021);
        assert!(
            heavy.p95 > 1.5 * light.p95,
            "p95 should grow sharply with load: light {} vs heavy {}",
            light.p95,
            heavy.p95
        );
        assert!(heavy.mean > light.mean);
        // Sojourn can never beat zero and rarely beats the mean service
        // demand by much under exponential draws.
        assert!(light.mean > 0.02);
    }

    #[test]
    fn latency_tracking_does_not_change_dynamics() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.004, 0.7), Service::new(0.006, 0.5)],
            CommMatrix::uniform(2, 0.001),
        )
        .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        let base = SimConfig { tuples: 3_000, ..SimConfig::default() };
        let plain = simulate(&inst, &plan, &base);
        let tracked = simulate(&inst, &plan, &SimConfig { track_latency: true, ..base });
        assert_eq!(plain.makespan, tracked.makespan);
        assert_eq!(plain.tuples_delivered, tracked.tuples_delivered);
        assert_eq!(plain.stages, tracked.stages);
        assert!(plain.latency.is_none());
        assert!(tracked.latency.is_some());
    }

    #[test]
    fn filtered_out_tuples_leave_no_latency_samples() {
        let inst = QueryInstance::from_parts(vec![Service::new(0.001, 0.0)], CommMatrix::zeros(1))
            .unwrap();
        let plan = Plan::new(vec![0]).unwrap();
        let report = simulate(
            &inst,
            &plan,
            &SimConfig { tuples: 100, track_latency: true, ..SimConfig::default() },
        );
        assert!(report.latency.is_none());
    }

    #[test]
    fn steady_rate_needs_enough_deliveries() {
        assert_eq!(steady_rate(&[(0.0, 1)]), None);
        // 8 deliveries of 10 tuples every 0.5s ⇒ middle half ≈ 20/s.
        let log: Vec<(f64, u64)> = (0..8).map(|i| (0.5 * (i + 1) as f64, 10)).collect();
        let rate = steady_rate(&log).unwrap();
        assert!((rate - 20.0).abs() < 1.0, "rate {rate}");
    }
}
