//! Discrete-event simulation of decentralized pipelined query execution.
//!
//! This crate is the "simulation experiments" substrate of the
//! reproduction (DESIGN.md, system inventory #9): it executes a concrete
//! plan under the paper's execution model — every service a single thread
//! on its own host, processing input tuples and transmitting output
//! blocks to the next service, with the transmission occupying the
//! sender's thread — and reports makespan, throughput, and per-stage busy
//! times.
//!
//! Its purpose is to *validate the cost model*: under deterministic
//! service times and expectation-exact selectivities, the measured input
//! throughput of a saturated pipeline converges to
//! `1 / bottleneck_cost(plan)` and each stage's busy time per input tuple
//! converges to its Eq. 1 term (experiments E5 and E10; the engine tests
//! assert both within a few percent).
//!
//! # Examples
//!
//! ```
//! use dsq_core::{bottleneck_cost, optimize};
//! use dsq_simulator::{simulate, SimConfig};
//! use dsq_workloads::credit_pipeline;
//!
//! let inst = credit_pipeline();
//! let best = optimize(&inst).into_plan();
//! let report = simulate(&inst, &best, &SimConfig::default());
//! // The simulated throughput is close to the model's prediction.
//! let predicted = 1.0 / bottleneck_cost(&inst, &best);
//! assert!((report.throughput - predicted).abs() / predicted < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod report;

pub use config::{ArrivalProcess, SelectivityModel, ServiceTimeModel, SimConfig};
pub use engine::simulate;
pub use report::{LatencyStats, SimReport, StageStats};
