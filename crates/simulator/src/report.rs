//! Simulation outputs.

use std::fmt;

/// Per-stage telemetry of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Plan position of the stage.
    pub position: usize,
    /// Service index occupying the position.
    pub service: usize,
    /// Tuples consumed from the input queue.
    pub tuples_in: u64,
    /// Tuples produced (before blocking).
    pub tuples_out: u64,
    /// Blocks transmitted downstream (including the final flush).
    pub blocks_sent: u64,
    /// Total busy time (processing + sending), in simulated seconds.
    pub busy_time: f64,
    /// Largest input-queue backlog observed.
    pub peak_queue: u64,
}

impl StageStats {
    /// Busy seconds per *pipeline input* tuple — the simulated counterpart
    /// of this position's Eq. 1 term.
    pub fn unit_busy_time(&self, pipeline_inputs: u64) -> f64 {
        self.busy_time / pipeline_inputs as f64
    }

    /// Realized selectivity (output/input), `0` when starved.
    pub fn realized_selectivity(&self) -> f64 {
        if self.tuples_in == 0 {
            0.0
        } else {
            self.tuples_out as f64 / self.tuples_in as f64
        }
    }
}

/// End-to-end tuple latency statistics (enabled by
/// [`SimConfig::track_latency`](crate::SimConfig)).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Tuples that reached the sink (the sample count).
    pub count: u64,
    /// Mean sojourn time from source arrival to sink delivery.
    pub mean: f64,
    /// Median sojourn time.
    pub p50: f64,
    /// 95th-percentile sojourn time.
    pub p95: f64,
    /// 99th-percentile sojourn time.
    pub p99: f64,
    /// Worst sojourn time.
    pub max: f64,
}

impl LatencyStats {
    /// Computes the statistics from raw sojourn samples; `None` when no
    /// tuple reached the sink.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len();
        let at = |q: f64| samples[((count - 1) as f64 * q).round() as usize];
        Some(LatencyStats {
            count: count as u64,
            mean: samples.iter().sum::<f64>() / count as f64,
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: *samples.last().expect("non-empty"),
        })
    }
}

/// Result of one pipeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Input tuples fed to the pipeline.
    pub tuples_in: u64,
    /// Tuples delivered to the sink.
    pub tuples_delivered: u64,
    /// Time of the last event (all stages drained).
    pub makespan: f64,
    /// `tuples_in / makespan`: end-to-end input consumption rate.
    pub throughput: f64,
    /// Input-rate estimate over the middle half of sink deliveries,
    /// re-expressed in *input* tuples per second (deliveries divided by
    /// the realized end-to-end selectivity). `None` when fewer than four
    /// deliveries reached the sink.
    pub steady_throughput: Option<f64>,
    /// Per-stage telemetry, in plan order.
    pub stages: Vec<StageStats>,
    /// End-to-end latency statistics, when tracking was enabled and at
    /// least one tuple reached the sink.
    pub latency: Option<LatencyStats>,
}

impl SimReport {
    /// The plan position with the largest busy time — the simulated
    /// bottleneck.
    pub fn bottleneck_position(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.stages.iter().enumerate() {
            if s.busy_time > self.stages[best].busy_time {
                best = i;
            }
        }
        best
    }

    /// The bottleneck stage's busy seconds per input tuple — the measured
    /// counterpart of the plan's bottleneck cost (Eq. 1).
    pub fn measured_unit_cost(&self) -> f64 {
        self.stages[self.bottleneck_position()].unit_busy_time(self.tuples_in)
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} tuples in, {} delivered, makespan {:.4}s, throughput {:.4}/s",
            self.tuples_in, self.tuples_delivered, self.makespan, self.throughput
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  #{} WS{}: in {:>8} out {:>8} busy {:>10.4}s ({} blocks, peak queue {})",
                s.position,
                s.service,
                s.tuples_in,
                s.tuples_out,
                s.busy_time,
                s.blocks_sent,
                s.peak_queue
            )?;
        }
        if let Some(latency) = &self.latency {
            writeln!(
                f,
                "latency: mean {:.4}s p50 {:.4}s p95 {:.4}s p99 {:.4}s max {:.4}s ({} samples)",
                latency.mean, latency.p50, latency.p95, latency.p99, latency.max, latency.count
            )?;
        }
        write!(f, "bottleneck at position {}", self.bottleneck_position())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(position: usize, busy: f64) -> StageStats {
        StageStats {
            position,
            service: position,
            tuples_in: 100,
            tuples_out: 50,
            blocks_sent: 4,
            busy_time: busy,
            peak_queue: 10,
        }
    }

    #[test]
    fn bottleneck_is_busiest() {
        let report = SimReport {
            tuples_in: 100,
            tuples_delivered: 25,
            makespan: 10.0,
            throughput: 10.0,
            steady_throughput: None,
            stages: vec![stage(0, 1.0), stage(1, 9.0), stage(2, 3.0)],
            latency: None,
        };
        assert_eq!(report.bottleneck_position(), 1);
        assert!((report.measured_unit_cost() - 0.09).abs() < 1e-12);
    }

    #[test]
    fn stage_derived_quantities() {
        let s = stage(0, 5.0);
        assert!((s.unit_busy_time(100) - 0.05).abs() < 1e-12);
        assert!((s.realized_selectivity() - 0.5).abs() < 1e-12);
        let starved = StageStats { tuples_in: 0, ..stage(1, 0.0) };
        assert_eq!(starved.realized_selectivity(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let report = SimReport {
            tuples_in: 10,
            tuples_delivered: 5,
            makespan: 2.0,
            throughput: 5.0,
            steady_throughput: Some(4.8),
            stages: vec![stage(0, 1.0)],
            latency: LatencyStats::from_samples(vec![0.5, 1.0, 1.5]),
        };
        let text = report.to_string();
        assert!(text.contains("10 tuples in"));
        assert!(text.contains("WS0"));
        assert!(text.contains("bottleneck"));
        assert!(text.contains("latency"));
        assert!(text.contains("p95"));
    }

    #[test]
    fn latency_stats_from_samples() {
        assert_eq!(LatencyStats::from_samples(vec![]), None);
        let stats = LatencyStats::from_samples(vec![3.0, 1.0, 2.0]).expect("non-empty");
        assert_eq!(stats.count, 3);
        assert!((stats.mean - 2.0).abs() < 1e-12);
        assert_eq!(stats.p50, 2.0);
        assert_eq!(stats.max, 3.0);
        // Percentiles of a 100-sample 1..=100 ramp.
        let ramp: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = LatencyStats::from_samples(ramp).expect("non-empty");
        assert_eq!(stats.p50, 51.0);
        assert_eq!(stats.p95, 95.0);
        assert_eq!(stats.p99, 99.0);
        assert_eq!(stats.max, 100.0);
    }
}
