//! Simulation configuration.

/// How tuples enter the first service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// The whole input is queued at time zero — measures the pipeline's
    /// maximum sustainable throughput (the regime Eq. 1 models).
    AllAtStart,
    /// One tuple every `interval` seconds — an open-loop feed for studying
    /// under-saturated pipelines.
    Paced {
        /// Seconds between consecutive arrivals.
        interval: f64,
    },
}

/// Per-tuple service time randomness around the mean cost `c_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceTimeModel {
    /// Every tuple takes exactly `c_i`.
    Deterministic,
    /// Exponential with mean `c_i` (memoryless server).
    Exponential,
    /// Uniform on `[c_i(1-spread), c_i(1+spread)]`.
    Uniform {
        /// Half-width as a fraction of the mean, in `[0, 1]`.
        spread: f64,
    },
}

/// How a service's selectivity is realized tuple by tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectivityModel {
    /// Deterministic accumulator: after `m` inputs a service has emitted
    /// `⌊m·σ⌉`-accurate output counts. Matches the expectation exactly —
    /// the right mode for validating the cost model.
    Expected,
    /// Per-tuple randomness: `⌊σ⌋` copies plus one more with probability
    /// `frac(σ)` (Bernoulli filtering when `σ < 1`).
    Stochastic,
}

/// Full configuration of a simulation run. Passive struct; fields are
/// public.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of input tuples fed to the first service.
    pub tuples: u64,
    /// Tuples per transfer block; the per-tuple transfer cost `t_{i,j}`
    /// is charged per tuple, a block send occupying the sender for
    /// `count · t` (§2: "tuples are transmitted in blocks … t is the cost
    /// to transmit a block divided by the number of tuples it contains").
    pub block_size: u64,
    /// Arrival process at the first service.
    pub arrivals: ArrivalProcess,
    /// Service time randomness.
    pub service_time: ServiceTimeModel,
    /// Selectivity realization.
    pub selectivity: SelectivityModel,
    /// RNG seed (used by the stochastic models).
    pub seed: u64,
    /// Tag every tuple with its arrival time and report end-to-end
    /// latency statistics at the sink (small extra memory per queued
    /// tuple). Most useful with [`ArrivalProcess::Paced`], where sojourn
    /// time reflects load rather than the initial backlog.
    pub track_latency: bool,
}

impl Default for SimConfig {
    /// Deterministic, expectation-exact run of 10 000 tuples in blocks of
    /// 32 — the validation configuration.
    fn default() -> Self {
        SimConfig {
            tuples: 10_000,
            block_size: 32,
            arrivals: ArrivalProcess::AllAtStart,
            service_time: ServiceTimeModel::Deterministic,
            selectivity: SelectivityModel::Expected,
            seed: 0,
            track_latency: false,
        }
    }
}

impl SimConfig {
    /// Validates ranges (positive tuple count and block size, sane
    /// spread/interval).
    ///
    /// # Panics
    ///
    /// Panics on invalid values; configurations are programmer inputs.
    pub fn assert_valid(&self) {
        assert!(self.tuples > 0, "simulate at least one tuple");
        assert!(self.block_size > 0, "block size must be positive");
        if let ArrivalProcess::Paced { interval } = self.arrivals {
            assert!(interval.is_finite() && interval >= 0.0, "invalid arrival interval");
        }
        if let ServiceTimeModel::Uniform { spread } = self.service_time {
            assert!((0.0..=1.0).contains(&spread), "spread must be in [0, 1]");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().assert_valid();
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        SimConfig { block_size: 0, ..SimConfig::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_tuples_rejected() {
        SimConfig { tuples: 0, ..SimConfig::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn bad_spread_rejected() {
        SimConfig {
            service_time: ServiceTimeModel::Uniform { spread: 2.0 },
            ..SimConfig::default()
        }
        .assert_valid();
    }
}
