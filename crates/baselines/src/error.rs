//! Errors raised by the baseline algorithms.

use std::error::Error;
use std::fmt;

/// Error raised by a baseline ordering algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The instance exceeds the algorithm's tractable size.
    TooLarge {
        /// Number of services in the instance.
        n: usize,
        /// The algorithm's limit.
        max: usize,
        /// Which algorithm refused.
        algorithm: &'static str,
    },
    /// The uniform-communication algorithm requires selective services
    /// (`σ ≤ 1`); use the subset DP on the uniformized instance instead.
    Proliferative,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::TooLarge { n, max, algorithm } => {
                write!(f, "{algorithm} handles at most {max} services, instance has {n}")
            }
            BaselineError::Proliferative => {
                write!(f, "uniform-communication ordering requires selectivities of at most one")
            }
        }
    }
}

impl Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = BaselineError::TooLarge { n: 30, max: 12, algorithm: "exhaustive search" };
        assert!(e.to_string().contains("30"));
        assert!(e.to_string().contains("12"));
        assert!(BaselineError::Proliferative.to_string().contains("selectivities"));
    }
}
