//! Greedy construction heuristics.
//!
//! Fast `O(n³)` comparators for the plan-quality experiment (E4). All
//! variants build the plan left to right over every feasible starting
//! service and keep the best chain.

use dsq_core::{bottleneck_cost, BitSet, Plan, QueryInstance};

/// The rule a greedy chain uses to pick the next service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GreedyKind {
    /// Append the service with the cheapest transfer from the current last
    /// service — the expansion order of the branch-and-bound search run
    /// without any backtracking.
    MinTransfer,
    /// Append the service minimizing the term it finalizes for the current
    /// last service, `prefix · (c_u + σ_u · t_{u,j})`. Coincides with
    /// [`GreedyKind::MinTransfer`] except for tie handling, since `j`
    /// enters only through `t_{u,j}`; kept separate for documentation
    /// value in reports.
    MinCompletedTerm,
    /// Append the service whose own tentative term
    /// `prefix · σ_u · (c_j + σ_j · min_l t_{j,l})` is smallest — a
    /// look-ahead flavour charging the newcomer its optimistic future.
    MinTentativeTerm,
}

impl GreedyKind {
    /// All variants, for sweeps.
    pub const ALL: [GreedyKind; 3] =
        [GreedyKind::MinTransfer, GreedyKind::MinCompletedTerm, GreedyKind::MinTentativeTerm];

    /// The cubic variants only. [`GreedyKind::MinTentativeTerm`]'s
    /// look-ahead scans every unplaced successor per candidate, an extra
    /// factor of `n`, which makes it the dominant cost of
    /// [`best_greedy`]; latency-critical callers (the tiered serving
    /// path) restrict themselves to this subset via [`fast_greedy`].
    pub const FAST: [GreedyKind; 2] = [GreedyKind::MinTransfer, GreedyKind::MinCompletedTerm];
}

/// Result of a greedy construction.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    plan: Plan,
    cost: f64,
    kind: GreedyKind,
}

impl GreedyResult {
    /// The constructed plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its bottleneck cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Which rule produced it.
    pub fn kind(&self) -> GreedyKind {
        self.kind
    }
}

/// Builds a plan greedily with the given rule, trying every feasible
/// starting service and returning the cheapest complete chain.
///
/// # Examples
///
/// ```
/// use dsq_baselines::{greedy, GreedyKind};
/// use dsq_core::{CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(1.0, 0.5), Service::new(2.0, 0.5), Service::new(3.0, 0.5)],
///     CommMatrix::uniform(3, 0.1),
/// )?;
/// let result = greedy(&inst, GreedyKind::MinTransfer);
/// assert_eq!(result.plan().len(), 3);
/// assert!(result.cost().is_finite());
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn greedy(instance: &QueryInstance, kind: GreedyKind) -> GreedyResult {
    let n = instance.len();
    let mut best: Option<(Vec<usize>, f64)> = None;
    for start in 0..n {
        if let Some(dag) = instance.precedence() {
            if !dag.predecessors(start).is_empty() {
                continue;
            }
        }
        let order = chain_from(instance, start, kind);
        let plan = Plan::new(order.clone()).expect("chain is a permutation");
        let cost = bottleneck_cost(instance, &plan);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((order, cost));
        }
    }
    let (order, cost) = best.expect("acyclic precedence admits a start");
    GreedyResult { plan: Plan::new(order).expect("permutation"), cost, kind }
}

/// The best result across [`GreedyKind::ALL`].
pub fn best_greedy(instance: &QueryInstance) -> GreedyResult {
    GreedyKind::ALL
        .into_iter()
        .map(|kind| greedy(instance, kind))
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .expect("ALL is non-empty")
}

/// The best result across [`GreedyKind::FAST`] — strictly `O(n³)`,
/// roughly half the latency of [`best_greedy`] at n = 12. This is the
/// tier-1 heuristic of the serving layer's tiered planner; E16 measures
/// its optimality gap.
pub fn fast_greedy(instance: &QueryInstance) -> GreedyResult {
    GreedyKind::FAST
        .into_iter()
        .map(|kind| greedy(instance, kind))
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .expect("FAST is non-empty")
}

fn chain_from(instance: &QueryInstance, start: usize, kind: GreedyKind) -> Vec<usize> {
    let n = instance.len();
    let mut order = vec![start];
    let mut placed = BitSet::new(n);
    placed.insert(start);
    let mut prefix = 1.0;
    while order.len() < n {
        let u = *order.last().expect("chain non-empty");
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if placed.contains(j) {
                continue;
            }
            if let Some(dag) = instance.precedence() {
                if !dag.is_ready(j, &placed) {
                    continue;
                }
            }
            let score = match kind {
                GreedyKind::MinTransfer => instance.transfer(u, j),
                GreedyKind::MinCompletedTerm => {
                    prefix * (instance.cost(u) + instance.selectivity(u) * instance.transfer(u, j))
                }
                GreedyKind::MinTentativeTerm => {
                    let min_out = (0..n)
                        .filter(|&l| l != j && !placed.contains(l))
                        .map(|l| instance.transfer(j, l))
                        .fold(instance.sink_cost(j), f64::min);
                    prefix
                        * instance.selectivity(u)
                        * (instance.cost(j) + instance.selectivity(j) * min_out)
                }
            };
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((j, score));
            }
        }
        let (j, _) = best.expect("acyclic precedence always leaves a ready service");
        prefix *= instance.selectivity(u);
        order.push(j);
        placed.insert(j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use dsq_core::{CommMatrix, PrecedenceDag, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize) -> QueryInstance {
        QueryInstance::from_parts(
            (0..n)
                .map(|_| Service::new(rng.gen_range(0.01..4.0), rng.gen_range(0.05..1.5)))
                .collect(),
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..3.0) }),
        )
        .unwrap()
    }

    #[test]
    fn greedy_never_beats_the_optimum() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..60 {
            let n = rng.gen_range(2..8);
            let inst = random_instance(&mut rng, n);
            let opt = exhaustive(&inst).unwrap().cost();
            for kind in GreedyKind::ALL {
                let g = greedy(&inst, kind);
                assert!(g.cost() >= opt - 1e-9, "{kind:?} cost {} below optimum {opt}", g.cost());
                assert_eq!(g.kind(), kind);
            }
            let best = best_greedy(&inst);
            assert!(best.cost() >= opt - 1e-9);
            // fast_greedy drops one kind, so it sits between best_greedy
            // and the worst single kind: an upper bound on the optimum,
            // never better than the three-way minimum.
            let fast = fast_greedy(&inst);
            assert!(fast.cost() >= best.cost() - 1e-12);
            assert!(GreedyKind::FAST.contains(&fast.kind()));
        }
    }

    #[test]
    fn reported_cost_matches_plan() {
        let mut rng = StdRng::seed_from_u64(29);
        let inst = random_instance(&mut rng, 7);
        for kind in GreedyKind::ALL {
            let g = greedy(&inst, kind);
            let actual = dsq_core::bottleneck_cost(&inst, g.plan());
            assert!((g.cost() - actual).abs() < 1e-12);
        }
    }

    #[test]
    fn respects_precedence() {
        let mut dag = PrecedenceDag::new(4).unwrap();
        dag.add_edge(3, 0).unwrap();
        dag.add_edge(3, 1).unwrap();
        let inst = QueryInstance::builder()
            .services((0..4).map(|i| Service::new(1.0 + i as f64, 0.5)))
            .comm(CommMatrix::uniform(4, 0.2))
            .precedence(dag)
            .build()
            .unwrap();
        for kind in GreedyKind::ALL {
            let g = greedy(&inst, kind);
            assert!(g.plan().satisfies(inst.precedence().unwrap()), "{kind:?}");
            // Only WS2 and WS3 have no predecessors.
            assert!([2, 3].contains(&g.plan().indices()[0]), "{kind:?}");
        }
    }

    #[test]
    fn min_transfer_follows_cheap_edges() {
        // A ring where consecutive transfers are free in one direction.
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 1.0), Service::new(1.0, 1.0), Service::new(1.0, 1.0)],
            CommMatrix::from_rows(vec![
                vec![0.0, 0.0, 9.0],
                vec![9.0, 0.0, 0.0],
                vec![0.0, 9.0, 0.0],
            ])
            .unwrap(),
        )
        .unwrap();
        let g = greedy(&inst, GreedyKind::MinTransfer);
        // Some rotation of 0→1→2 avoids every 9.0 edge; cost 1.0.
        assert!((g.cost() - 1.0).abs() < 1e-12);
    }
}
