//! The bottleneck traveling-salesman connection (§1 of the paper).
//!
//! Setting every selectivity to 1 and every processing cost to 0 turns
//! Eq. 1 into `max` over the transfer edges a plan uses — the **bottleneck
//! Hamiltonian path** problem, which is NP-hard. This module provides
//!
//! * [`btsp_query_instance`] — the reduction constructor,
//! * [`btsp_path_exact`] — an independent exact solver (binary search over
//!   edge thresholds + Hamiltonian-path reachability DP), used to
//!   cross-validate the branch-and-bound on the hard core of the problem
//!   (experiment E9),
//! * [`btsp_lower_bound`] — a cheap degree-based bound.

use crate::error::BaselineError;
use dsq_core::{CommMatrix, QueryInstance, Service};

/// Default size limit of [`btsp_path_exact`].
pub const BTSP_MAX_N: usize = 16;

/// Builds the service-ordering instance equivalent to the bottleneck
/// Hamiltonian path problem on `comm`: unit selectivities, zero processing
/// costs, zero sink costs.
///
/// # Panics
///
/// Panics if `comm` is empty.
///
/// # Examples
///
/// ```
/// use dsq_baselines::btsp_query_instance;
/// use dsq_core::{bottleneck_cost, CommMatrix, Plan};
///
/// let comm = CommMatrix::from_rows(vec![
///     vec![0.0, 3.0, 1.0],
///     vec![3.0, 0.0, 2.0],
///     vec![1.0, 2.0, 0.0],
/// ])?;
/// let inst = btsp_query_instance(&comm);
/// // Plan 0 → 2 → 1 uses edges {1.0, 2.0}: bottleneck 2.0.
/// let plan = Plan::new(vec![0, 2, 1])?;
/// assert_eq!(bottleneck_cost(&inst, &plan), 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn btsp_query_instance(comm: &CommMatrix) -> QueryInstance {
    let n = comm.len();
    assert!(n > 0, "bottleneck TSP needs at least one node");
    QueryInstance::builder()
        .name("bottleneck-tsp")
        .services((0..n).map(|_| Service::new(0.0, 1.0)))
        .comm(comm.clone())
        .build()
        .expect("reduction instance is valid")
}

/// Result of the exact bottleneck-path solver.
#[derive(Debug, Clone)]
pub struct BtspResult {
    path: Vec<usize>,
    bottleneck: f64,
    thresholds_tested: u32,
}

impl BtspResult {
    /// A bottleneck-optimal Hamiltonian path (node order).
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// The largest edge weight along it (the optimal bottleneck value).
    pub fn bottleneck(&self) -> f64 {
        self.bottleneck
    }

    /// Number of thresholds the binary search probed.
    pub fn thresholds_tested(&self) -> u32 {
        self.thresholds_tested
    }
}

/// Solves the directed bottleneck Hamiltonian path problem exactly:
/// binary search over the sorted distinct edge weights, testing each
/// threshold with a subset-reachability DP restricted to edges within the
/// threshold.
///
/// # Errors
///
/// Returns [`BaselineError::TooLarge`] above [`BTSP_MAX_N`] nodes.
pub fn btsp_path_exact(comm: &CommMatrix) -> Result<BtspResult, BaselineError> {
    let n = comm.len();
    if n > BTSP_MAX_N {
        return Err(BaselineError::TooLarge { n, max: BTSP_MAX_N, algorithm: "bottleneck TSP" });
    }
    if n == 1 {
        return Ok(BtspResult { path: vec![0], bottleneck: 0.0, thresholds_tested: 0 });
    }

    let mut weights: Vec<f64> =
        (0..n).flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| comm.get(i, j))).collect();
    weights.sort_by(f64::total_cmp);
    weights.dedup();

    // Binary search for the smallest threshold admitting a Hamiltonian
    // path. The largest threshold always works (every edge allowed ⇒ any
    // permutation is a path).
    let mut lo = 0usize;
    let mut hi = weights.len() - 1;
    let mut tested = 0u32;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        tested += 1;
        if hamiltonian_path(comm, weights[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let bottleneck = weights[lo];
    let path = hamiltonian_path(comm, bottleneck).expect("threshold verified feasible");
    Ok(BtspResult { path, bottleneck, thresholds_tested: tested })
}

/// Reachability DP: is there a Hamiltonian path using only edges of
/// weight `≤ tau`? Returns one if so.
fn hamiltonian_path(comm: &CommMatrix, tau: f64) -> Option<Vec<usize>> {
    let n = comm.len();
    let full: usize = (1 << n) - 1;
    // reach[mask][last]: mask visitable ending at last.
    let mut reach = vec![false; (1 << n) * n];
    let mut parent = vec![u8::MAX; (1 << n) * n];
    let idx = |mask: usize, last: usize| mask * n + last;
    for s in 0..n {
        reach[idx(1 << s, s)] = true;
    }
    for mask in 1..=full {
        for last in 0..n {
            if mask & (1 << last) == 0 || !reach[idx(mask, last)] {
                continue;
            }
            for j in 0..n {
                if mask & (1 << j) != 0 || comm.get(last, j) > tau {
                    continue;
                }
                let slot = idx(mask | (1 << j), j);
                if !reach[slot] {
                    reach[slot] = true;
                    parent[slot] = last as u8;
                }
            }
        }
    }
    let last = (0..n).find(|&l| reach[idx(full, l)])?;
    let mut path = vec![last];
    let mut mask = full;
    let mut cur = last;
    while mask.count_ones() > 1 {
        let p = parent[idx(mask, cur)] as usize;
        mask &= !(1 << cur);
        cur = p;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// A cheap lower bound on the bottleneck of any Hamiltonian path: all but
/// one node (the terminal) need an outgoing edge, and all but one (the
/// start) an incoming edge, so the second-largest of the per-node minimum
/// out-weights (resp. in-weights) must be paid.
pub fn btsp_lower_bound(comm: &CommMatrix) -> f64 {
    let n = comm.len();
    if n < 2 {
        return 0.0;
    }
    let second_largest = |mins: Vec<f64>| -> f64 {
        let mut mins = mins;
        mins.sort_by(f64::total_cmp);
        mins[n - 2]
    };
    let min_out: Vec<f64> = (0..n)
        .map(|i| (0..n).filter(|&j| j != i).map(|j| comm.get(i, j)).fold(f64::INFINITY, f64::min))
        .collect();
    let min_in: Vec<f64> = (0..n)
        .map(|j| (0..n).filter(|&i| i != j).map(|i| comm.get(i, j)).fold(f64::INFINITY, f64::min))
        .collect();
    second_largest(min_out).max(second_largest(min_in))
}

/// The bottleneck (largest edge) of a concrete node order.
pub fn path_bottleneck(comm: &CommMatrix, path: &[usize]) -> f64 {
    path.windows(2).map(|w| comm.get(w[0], w[1])).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{bottleneck_cost, optimize, Plan};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_comm(rng: &mut StdRng, n: usize) -> CommMatrix {
        CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(1.0..100.0) })
    }

    #[test]
    fn exact_solver_agrees_with_bnb_via_the_reduction() {
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..30 {
            let n = rng.gen_range(3..8);
            let comm = random_comm(&mut rng, n);
            let btsp = btsp_path_exact(&comm).unwrap();
            let inst = btsp_query_instance(&comm);
            let bnb = optimize(&inst);
            assert!(
                (btsp.bottleneck() - bnb.cost()).abs() <= 1e-9 * btsp.bottleneck().max(1.0),
                "threshold solver {} vs B&B {}",
                btsp.bottleneck(),
                bnb.cost()
            );
            // Returned path must achieve the reported bottleneck.
            assert!((path_bottleneck(&comm, btsp.path()) - btsp.bottleneck()).abs() < 1e-12);
        }
    }

    #[test]
    fn reduction_cost_is_max_edge() {
        let mut rng = StdRng::seed_from_u64(77);
        let comm = random_comm(&mut rng, 5);
        let inst = btsp_query_instance(&comm);
        let plan = Plan::new(vec![4, 2, 0, 1, 3]).unwrap();
        assert!(
            (bottleneck_cost(&inst, &plan) - path_bottleneck(&comm, &plan.indices())).abs() < 1e-12
        );
    }

    #[test]
    fn lower_bound_is_sound() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(3..8);
            let comm = random_comm(&mut rng, n);
            let lb = btsp_lower_bound(&comm);
            let opt = btsp_path_exact(&comm).unwrap().bottleneck();
            assert!(lb <= opt + 1e-12, "lb {lb} exceeds optimum {opt}");
        }
    }

    #[test]
    fn hand_checked_triangle() {
        let comm = CommMatrix::from_rows(vec![
            vec![0.0, 5.0, 1.0],
            vec![5.0, 0.0, 2.0],
            vec![1.0, 2.0, 0.0],
        ])
        .unwrap();
        let result = btsp_path_exact(&comm).unwrap();
        // Best path avoids the 5.0 edge: 0-2-1 or 1-2-0, bottleneck 2.0.
        assert_eq!(result.bottleneck(), 2.0);
    }

    #[test]
    fn size_limit() {
        let comm = CommMatrix::uniform(BTSP_MAX_N + 1, 1.0);
        assert!(matches!(btsp_path_exact(&comm), Err(BaselineError::TooLarge { .. })));
    }

    #[test]
    fn singleton() {
        let comm = CommMatrix::zeros(1);
        let r = btsp_path_exact(&comm).unwrap();
        assert_eq!(r.path(), &[0]);
        assert_eq!(r.bottleneck(), 0.0);
        assert_eq!(btsp_lower_bound(&comm), 0.0);
    }
}
