//! Beam search over partial plans.
//!
//! Keeps the `width` most promising prefixes per depth, scored by the
//! same monotone measure `ε` that guides the branch-and-bound (maximum
//! finalized term plus the last service's transfer-free term). Width 1
//! with a single start degenerates to a greedy chain; growing width
//! trades time for quality and reaches the exact optimum in the limit.

use dsq_core::{bottleneck_cost, BitSet, Plan, QueryInstance};

/// Parameters of [`beam_search`]. Passive struct; fields are public.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamConfig {
    /// Number of prefixes kept per depth.
    pub width: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig { width: 16 }
    }
}

/// Result of [`beam_search`].
#[derive(Debug, Clone)]
pub struct BeamResult {
    plan: Plan,
    cost: f64,
    expanded: u64,
}

impl BeamResult {
    /// The best complete plan in the final beam.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its bottleneck cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Partial plans expanded across all depths.
    pub fn expanded(&self) -> u64 {
        self.expanded
    }
}

#[derive(Clone)]
struct Node {
    order: Vec<usize>,
    placed: BitSet,
    /// Π σ of all placed services.
    product: f64,
    /// Π σ of the services before the last one.
    prefix_last: f64,
    /// Max over finalized terms.
    eps_fin: f64,
}

impl Node {
    fn score(&self, inst: &QueryInstance) -> f64 {
        let last = *self.order.last().expect("beam nodes are non-empty");
        self.eps_fin.max(self.prefix_last * inst.cost(last))
    }
}

/// Runs beam search and returns the best complete plan found.
///
/// # Panics
///
/// Panics if `config.width == 0`.
///
/// # Examples
///
/// ```
/// use dsq_baselines::{beam_search, exhaustive, BeamConfig};
/// use dsq_core::{CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     (0..7).map(|i| Service::new(0.5 + (i % 3) as f64, 0.8)).collect(),
///     CommMatrix::from_fn(7, |i, j| ((2 * i + j) % 4) as f64 * 0.3),
/// )?;
/// let beam = beam_search(&inst, &BeamConfig { width: 64 });
/// let exact = exhaustive(&inst)?;
/// assert!(beam.cost() >= exact.cost() - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn beam_search(instance: &QueryInstance, config: &BeamConfig) -> BeamResult {
    assert!(config.width > 0, "beam width must be positive");
    let n = instance.len();
    let mut expanded = 0u64;

    // Depth 1: every feasible first service.
    let mut beam: Vec<Node> = (0..n)
        .filter(|&s| match instance.precedence() {
            Some(dag) => dag.predecessors(s).is_empty(),
            None => true,
        })
        .map(|s| {
            let mut placed = BitSet::new(n);
            placed.insert(s);
            Node {
                order: vec![s],
                placed,
                product: instance.selectivity(s),
                prefix_last: 1.0,
                eps_fin: 0.0,
            }
        })
        .collect();
    truncate_beam(&mut beam, instance, config.width);

    for _depth in 1..n {
        let mut next: Vec<Node> = Vec::with_capacity(beam.len() * n);
        for node in &beam {
            let last = *node.order.last().expect("non-empty");
            for j in 0..n {
                if node.placed.contains(j) {
                    continue;
                }
                if let Some(dag) = instance.precedence() {
                    if !dag.is_ready(j, &node.placed) {
                        continue;
                    }
                }
                expanded += 1;
                let term_last = node.prefix_last
                    * (instance.cost(last)
                        + instance.selectivity(last) * instance.transfer(last, j));
                let mut order = node.order.clone();
                order.push(j);
                let mut placed = node.placed.clone();
                placed.insert(j);
                next.push(Node {
                    order,
                    placed,
                    product: node.product * instance.selectivity(j),
                    prefix_last: node.product,
                    eps_fin: node.eps_fin.max(term_last),
                });
            }
        }
        truncate_beam(&mut next, instance, config.width);
        beam = next;
    }

    let (order, cost) = beam
        .into_iter()
        .map(|node| {
            let plan = Plan::new(node.order.clone()).expect("beam preserves permutations");
            let cost = bottleneck_cost(instance, &plan);
            (node.order, cost)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("acyclic precedence keeps the beam non-empty");
    BeamResult { plan: Plan::new(order).expect("permutation"), cost, expanded }
}

fn truncate_beam(beam: &mut Vec<Node>, instance: &QueryInstance, width: usize) {
    beam.sort_by(|a, b| a.score(instance).total_cmp(&b.score(instance)));
    beam.truncate(width);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use dsq_core::{CommMatrix, PrecedenceDag, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize) -> QueryInstance {
        QueryInstance::from_parts(
            (0..n)
                .map(|_| Service::new(rng.gen_range(0.01..4.0), rng.gen_range(0.05..1.5)))
                .collect(),
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..3.0) }),
        )
        .unwrap()
    }

    #[test]
    fn sound_and_improving_with_width() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let n = rng.gen_range(3..8);
            let inst = random_instance(&mut rng, n);
            let opt = exhaustive(&inst).unwrap().cost();
            let narrow = beam_search(&inst, &BeamConfig { width: 1 });
            let wide = beam_search(&inst, &BeamConfig { width: 256 });
            assert!(narrow.cost() >= opt - 1e-9);
            assert!(wide.cost() >= opt - 1e-9);
            assert!(wide.cost() <= narrow.cost() + 1e-9, "wider beams never lose");
        }
    }

    #[test]
    fn huge_width_is_exact_on_small_instances() {
        // Width ≥ number of prefixes per depth ⇒ exhaustive coverage.
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let inst = random_instance(&mut rng, 5);
            let opt = exhaustive(&inst).unwrap().cost();
            let beam = beam_search(&inst, &BeamConfig { width: 10_000 });
            assert!((beam.cost() - opt).abs() <= 1e-9 * opt.max(1.0));
        }
    }

    #[test]
    fn respects_precedence() {
        let mut dag = PrecedenceDag::new(5).unwrap();
        dag.add_edge(4, 0).unwrap();
        dag.add_edge(0, 2).unwrap();
        let inst = QueryInstance::builder()
            .services((0..5).map(|i| Service::new(1.0 + i as f64, 0.5)))
            .comm(CommMatrix::uniform(5, 0.3))
            .precedence(dag)
            .build()
            .unwrap();
        let beam = beam_search(&inst, &BeamConfig::default());
        assert!(beam.plan().satisfies(inst.precedence().unwrap()));
        assert!(beam.expanded() > 0);
    }

    #[test]
    fn reported_cost_matches_plan() {
        let mut rng = StdRng::seed_from_u64(55);
        let inst = random_instance(&mut rng, 7);
        let beam = beam_search(&inst, &BeamConfig::default());
        let actual = dsq_core::bottleneck_cost(&inst, beam.plan());
        assert!((beam.cost() - actual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = random_instance(&mut rng, 3);
        beam_search(&inst, &BeamConfig { width: 0 });
    }
}
