//! Exhaustive enumeration of all feasible plans.
//!
//! The gold standard for correctness checks and the `n!` yardstick of the
//! scaling experiment (E2). Tractable to roughly a dozen services.

use crate::error::BaselineError;
use dsq_core::{bottleneck_cost, BitSet, Plan, QueryInstance};

/// Default size limit of [`exhaustive`].
pub const EXHAUSTIVE_MAX_N: usize = 12;

/// Result of an exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    plan: Plan,
    cost: f64,
    plans_evaluated: u64,
}

impl ExhaustiveResult {
    /// The optimal plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its bottleneck cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of complete feasible plans evaluated.
    pub fn plans_evaluated(&self) -> u64 {
        self.plans_evaluated
    }
}

/// Finds the optimal plan by evaluating every feasible permutation.
///
/// # Errors
///
/// Returns [`BaselineError::TooLarge`] above [`EXHAUSTIVE_MAX_N`] services
/// (use [`exhaustive_with_limit`] to override).
///
/// # Examples
///
/// ```
/// use dsq_baselines::exhaustive;
/// use dsq_core::{CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(5.0, 1.0), Service::new(1.0, 0.1)],
///     CommMatrix::uniform(2, 0.0),
/// )?;
/// let result = exhaustive(&inst)?;
/// assert_eq!(result.plan().indices(), vec![1, 0]);
/// assert_eq!(result.plans_evaluated(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exhaustive(instance: &QueryInstance) -> Result<ExhaustiveResult, BaselineError> {
    exhaustive_with_limit(instance, EXHAUSTIVE_MAX_N)
}

/// [`exhaustive`] with a caller-chosen size limit.
///
/// # Errors
///
/// Returns [`BaselineError::TooLarge`] when the instance exceeds `max_n`.
pub fn exhaustive_with_limit(
    instance: &QueryInstance,
    max_n: usize,
) -> Result<ExhaustiveResult, BaselineError> {
    let n = instance.len();
    if n > max_n {
        return Err(BaselineError::TooLarge { n, max: max_n, algorithm: "exhaustive search" });
    }
    let mut state = State {
        instance,
        order: Vec::with_capacity(n),
        placed: BitSet::new(n),
        best: None,
        evaluated: 0,
    };
    state.recurse();
    let (order, cost) = state.best.expect("acyclic precedence admits at least one plan");
    Ok(ExhaustiveResult {
        plan: Plan::new(order).expect("enumeration yields permutations"),
        cost,
        plans_evaluated: state.evaluated,
    })
}

struct State<'a> {
    instance: &'a QueryInstance,
    order: Vec<usize>,
    placed: BitSet,
    best: Option<(Vec<usize>, f64)>,
    evaluated: u64,
}

impl State<'_> {
    fn recurse(&mut self) {
        let n = self.instance.len();
        if self.order.len() == n {
            let plan = Plan::new(self.order.clone()).expect("permutation");
            let cost = bottleneck_cost(self.instance, &plan);
            self.evaluated += 1;
            if self.best.as_ref().is_none_or(|(_, c)| cost < *c) {
                self.best = Some((self.order.clone(), cost));
            }
            return;
        }
        for s in 0..n {
            if self.placed.contains(s) {
                continue;
            }
            if let Some(dag) = self.instance.precedence() {
                if !dag.is_ready(s, &self.placed) {
                    continue;
                }
            }
            self.order.push(s);
            self.placed.insert(s);
            self.recurse();
            self.order.pop();
            self.placed.remove(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{CommMatrix, PrecedenceDag, Service};

    fn instance(n: usize) -> QueryInstance {
        QueryInstance::from_parts(
            (0..n).map(|i| Service::new(1.0 + i as f64, 0.5)).collect(),
            CommMatrix::uniform(n, 0.25),
        )
        .unwrap()
    }

    #[test]
    fn counts_all_permutations() {
        let result = exhaustive(&instance(4)).unwrap();
        assert_eq!(result.plans_evaluated(), 24);
    }

    #[test]
    fn precedence_restricts_enumeration() {
        let mut dag = PrecedenceDag::new(3).unwrap();
        dag.add_edge(0, 1).unwrap();
        let inst = QueryInstance::builder()
            .services((0..3).map(|i| Service::new(1.0 + i as f64, 0.5)))
            .comm(CommMatrix::uniform(3, 0.25))
            .precedence(dag)
            .build()
            .unwrap();
        let result = exhaustive(&inst).unwrap();
        // 3! = 6 orders, half have 0 before 1.
        assert_eq!(result.plans_evaluated(), 3);
        assert!(result.plan().satisfies(inst.precedence().unwrap()));
    }

    #[test]
    fn size_limit_enforced() {
        let err = exhaustive(&instance(13)).unwrap_err();
        assert!(matches!(err, BaselineError::TooLarge { n: 13, max: 12, .. }));
        assert!(exhaustive_with_limit(&instance(5), 5).is_ok());
    }

    #[test]
    fn agrees_with_bnb() {
        let inst = instance(6);
        let bnb = dsq_core::optimize(&inst);
        let brute = exhaustive(&inst).unwrap();
        assert!((bnb.cost() - brute.cost()).abs() < 1e-9);
    }
}
