//! Random feasible plans and the best-of-`k` sampling baseline.

use dsq_core::{bottleneck_cost, BitSet, Plan, QueryInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one uniformly random *feasible* plan: at every position a service
/// is picked uniformly among those whose predecessors are placed. Without
/// precedence constraints this is a uniform random permutation.
///
/// # Examples
///
/// ```
/// use dsq_baselines::random_plan;
/// use dsq_core::{CommMatrix, QueryInstance, Service};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(1.0, 0.5), Service::new(2.0, 0.5)],
///     CommMatrix::uniform(2, 0.1),
/// )?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let plan = random_plan(&inst, &mut rng);
/// assert_eq!(plan.len(), 2);
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn random_plan(instance: &QueryInstance, rng: &mut StdRng) -> Plan {
    let n = instance.len();
    let mut order = Vec::with_capacity(n);
    let mut placed = BitSet::new(n);
    let mut ready: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..n {
        ready.clear();
        for s in 0..n {
            if placed.contains(s) {
                continue;
            }
            let ok = match instance.precedence() {
                Some(dag) => dag.is_ready(s, &placed),
                None => true,
            };
            if ok {
                ready.push(s);
            }
        }
        let pick = ready[rng.gen_range(0..ready.len())];
        placed.insert(pick);
        order.push(pick);
    }
    Plan::new(order).expect("random construction is a permutation")
}

/// Result of [`random_sampling`].
#[derive(Debug, Clone)]
pub struct SamplingResult {
    plan: Plan,
    cost: f64,
    samples: u64,
    mean_cost: f64,
}

impl SamplingResult {
    /// The cheapest sampled plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its bottleneck cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of plans sampled.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean cost over all samples — the "how bad is a random plan"
    /// reference line of the quality experiments.
    pub fn mean_cost(&self) -> f64 {
        self.mean_cost
    }
}

/// Best of `k` random feasible plans, deterministic in `seed`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn random_sampling(instance: &QueryInstance, k: u64, seed: u64) -> SamplingResult {
    assert!(k > 0, "at least one sample is required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(Plan, f64)> = None;
    let mut total = 0.0;
    for _ in 0..k {
        let plan = random_plan(instance, &mut rng);
        let cost = bottleneck_cost(instance, &plan);
        total += cost;
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((plan, cost));
        }
    }
    let (plan, cost) = best.expect("k > 0");
    SamplingResult { plan, cost, samples: k, mean_cost: total / k as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use dsq_core::{CommMatrix, PrecedenceDag, Service};

    fn instance(n: usize) -> QueryInstance {
        QueryInstance::from_parts(
            (0..n).map(|i| Service::new(1.0 + i as f64, 0.6)).collect(),
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { (i + 2 * j) as f64 * 0.1 }),
        )
        .unwrap()
    }

    #[test]
    fn deterministic_in_seed() {
        let inst = instance(6);
        let a = random_sampling(&inst, 50, 42);
        let b = random_sampling(&inst, 50, 42);
        assert_eq!(a.plan().indices(), b.plan().indices());
        assert_eq!(a.cost(), b.cost());
        let c = random_sampling(&inst, 50, 43);
        // Different seed may differ (not guaranteed, but mean almost surely does).
        assert!(a.samples() == c.samples());
    }

    #[test]
    fn sampling_brackets_the_optimum() {
        let inst = instance(6);
        let opt = exhaustive(&inst).unwrap().cost();
        let s = random_sampling(&inst, 200, 7);
        assert!(s.cost() >= opt - 1e-9);
        assert!(s.mean_cost() >= s.cost() - 1e-12);
        // 200 samples of 720 permutations should get close to optimal.
        assert!(s.cost() <= opt * 3.0 + 1e-9);
    }

    #[test]
    fn random_plans_respect_precedence() {
        let mut dag = PrecedenceDag::new(5).unwrap();
        dag.add_edge(4, 0).unwrap();
        dag.add_edge(4, 1).unwrap();
        dag.add_edge(1, 2).unwrap();
        let inst = QueryInstance::builder()
            .services((0..5).map(|i| Service::new(1.0 + i as f64, 0.5)))
            .comm(CommMatrix::uniform(5, 0.1))
            .precedence(dag)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let plan = random_plan(&inst, &mut rng);
            assert!(plan.satisfies(inst.precedence().unwrap()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        random_sampling(&instance(3), 0, 0);
    }
}
