//! Exact bottleneck dynamic programming over service subsets.
//!
//! A Held-Karp-style DP: the state is `(subset S, last service u)` and its
//! value is the smallest achievable maximum over the *finalized* terms of
//! any feasible ordering of `S` ending at `u`. The key observation making
//! this exact for Eq. 1 is that the prefix product seen by `u` depends
//! only on the **set** `S∖{u}`, not on its order. Appending `j` finalizes
//! `u`'s term `Π_{k∈S∖{u}} σ_k · (c_u + σ_u t_{u,j})`; when `S` is the
//! full set, `u`'s closing term uses the sink cost instead.
//!
//! Complexity `O(2^n · n²)` time, `O(2^n · n)` space — the polynomial-free
//! yardstick for the scaling experiment (E2), tractable to ~18 services.

use crate::error::BaselineError;
use dsq_core::{Plan, QueryInstance};

/// Default size limit of [`subset_dp`] (memory-bound: `2^n · n` floats and
/// parent pointers).
pub const SUBSET_DP_MAX_N: usize = 20;

/// Result of the subset DP.
#[derive(Debug, Clone)]
pub struct DpResult {
    plan: Plan,
    cost: f64,
    states_expanded: u64,
}

impl DpResult {
    /// The optimal plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its bottleneck cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of DP transitions evaluated.
    pub fn states_expanded(&self) -> u64 {
        self.states_expanded
    }
}

/// Finds the optimal plan by dynamic programming over subsets.
///
/// # Errors
///
/// Returns [`BaselineError::TooLarge`] above [`SUBSET_DP_MAX_N`] services
/// (use [`subset_dp_with_limit`] to override — memory grows as `2^n · n`).
///
/// # Examples
///
/// ```
/// use dsq_baselines::{exhaustive, subset_dp};
/// use dsq_core::{CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![
///         Service::new(2.0, 0.4),
///         Service::new(1.0, 0.9),
///         Service::new(3.0, 0.2),
///     ],
///     CommMatrix::uniform(3, 0.5),
/// )?;
/// let dp = subset_dp(&inst)?;
/// let brute = exhaustive(&inst)?;
/// assert!((dp.cost() - brute.cost()).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn subset_dp(instance: &QueryInstance) -> Result<DpResult, BaselineError> {
    subset_dp_with_limit(instance, SUBSET_DP_MAX_N)
}

/// [`subset_dp`] with a caller-chosen size limit.
///
/// # Errors
///
/// Returns [`BaselineError::TooLarge`] when the instance exceeds `max_n`.
pub fn subset_dp_with_limit(
    instance: &QueryInstance,
    max_n: usize,
) -> Result<DpResult, BaselineError> {
    let n = instance.len();
    if n > max_n || n >= usize::BITS as usize {
        return Err(BaselineError::TooLarge { n, max: max_n, algorithm: "subset DP" });
    }
    if n == 1 {
        return Ok(DpResult {
            plan: Plan::new(vec![0]).expect("singleton plan"),
            cost: instance.cost(0) + instance.selectivity(0) * instance.sink_cost(0),
            states_expanded: 1,
        });
    }

    let full: usize = (1 << n) - 1;
    // Predecessor masks for precedence feasibility.
    let preds: Vec<usize> = (0..n)
        .map(|s| match instance.precedence() {
            Some(dag) => dag.predecessors(s).iter().fold(0usize, |m, p| m | (1 << p)),
            None => 0,
        })
        .collect();

    // prod[mask] = Π σ over mask, built from the lowest set bit.
    let mut prod = vec![1.0f64; 1 << n];
    for mask in 1..=full {
        let low = mask.trailing_zeros() as usize;
        prod[mask] = prod[mask & (mask - 1)] * instance.selectivity(low);
    }

    const UNSET: u8 = u8::MAX;
    let mut dp = vec![f64::INFINITY; (1 << n) * n];
    let mut parent = vec![UNSET; (1 << n) * n];
    let idx = |mask: usize, last: usize| mask * n + last;

    for s in 0..n {
        if preds[s] == 0 {
            dp[idx(1 << s, s)] = 0.0;
        }
    }

    let mut states_expanded = 0u64;
    for mask in 1..=full {
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let value = dp[idx(mask, last)];
            if !value.is_finite() {
                continue;
            }
            let prefix_last = prod[mask & !(1 << last)];
            let base = instance.cost(last);
            let sigma = instance.selectivity(last);
            for (j, &preds_j) in preds.iter().enumerate() {
                if mask & (1 << j) != 0 || preds_j & !mask != 0 {
                    continue;
                }
                states_expanded += 1;
                let term = prefix_last * (base + sigma * instance.transfer(last, j));
                let candidate = value.max(term);
                let slot = idx(mask | (1 << j), j);
                if candidate < dp[slot] {
                    dp[slot] = candidate;
                    parent[slot] = last as u8;
                }
            }
        }
    }

    // Close the plan: the final service's term uses the sink cost.
    let (mut best_last, mut best_cost) = (usize::MAX, f64::INFINITY);
    for last in 0..n {
        let value = dp[idx(full, last)];
        if !value.is_finite() {
            continue;
        }
        let closing = prod[full & !(1 << last)]
            * (instance.cost(last) + instance.selectivity(last) * instance.sink_cost(last));
        let total = value.max(closing);
        if total < best_cost {
            best_cost = total;
            best_last = last;
        }
    }
    assert!(best_last != usize::MAX, "acyclic precedence admits at least one plan");

    // Reconstruct by walking parents.
    let mut order = vec![best_last];
    let mut mask = full;
    let mut last = best_last;
    while mask.count_ones() > 1 {
        let p = parent[idx(mask, last)];
        assert!(p != UNSET, "every reachable state has a parent");
        mask &= !(1 << last);
        last = p as usize;
        order.push(last);
    }
    order.reverse();

    Ok(DpResult {
        plan: Plan::new(order).expect("DP reconstruction is a permutation"),
        cost: best_cost,
        states_expanded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use dsq_core::{CommMatrix, PrecedenceDag, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize, precedence: bool) -> QueryInstance {
        let services: Vec<Service> = (0..n)
            .map(|_| Service::new(rng.gen_range(0.01..4.0), rng.gen_range(0.05..2.0)))
            .collect();
        let comm =
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..3.0) });
        let mut b = QueryInstance::builder()
            .services(services)
            .comm(comm)
            .sink((0..n).map(|_| rng.gen_range(0.0..1.0)).collect());
        if precedence {
            let mut dag = PrecedenceDag::new(n).unwrap();
            for a in 0..n {
                for c in (a + 1)..n {
                    if rng.gen_bool(0.25) {
                        dag.add_edge(a, c).unwrap();
                    }
                }
            }
            b = b.precedence(dag);
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_exhaustive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..80 {
            let n = rng.gen_range(2..8);
            let inst = random_instance(&mut rng, n, trial % 3 == 0);
            let dp = subset_dp(&inst).unwrap();
            let brute = exhaustive(&inst).unwrap();
            assert!(
                (dp.cost() - brute.cost()).abs() <= 1e-9 * brute.cost().max(1.0),
                "trial {trial}: dp {} vs brute {}",
                dp.cost(),
                brute.cost()
            );
            // Reconstructed plan must achieve the reported value.
            let achieved = dsq_core::bottleneck_cost(&inst, dp.plan());
            assert!((achieved - dp.cost()).abs() <= 1e-9 * achieved.max(1.0));
            if let Some(dag) = inst.precedence() {
                assert!(dp.plan().satisfies(dag));
            }
        }
    }

    #[test]
    fn matches_bnb_at_larger_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let inst = random_instance(&mut rng, 11, false);
            let dp = subset_dp(&inst).unwrap();
            let bnb = dsq_core::optimize(&inst);
            assert!((dp.cost() - bnb.cost()).abs() <= 1e-9 * dp.cost().max(1.0));
        }
    }

    #[test]
    fn singleton_instance() {
        let inst = QueryInstance::builder()
            .service(Service::new(2.0, 0.5))
            .comm(CommMatrix::zeros(1))
            .sink(vec![4.0])
            .build()
            .unwrap();
        let dp = subset_dp(&inst).unwrap();
        assert_eq!(dp.plan().indices(), vec![0]);
        assert!((dp.cost() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn size_limit_enforced() {
        let mut rng = StdRng::seed_from_u64(0);
        let inst = random_instance(&mut rng, 6, false);
        assert!(matches!(
            subset_dp_with_limit(&inst, 5).unwrap_err(),
            BaselineError::TooLarge { n: 6, max: 5, .. }
        ));
    }

    #[test]
    fn counts_transitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = random_instance(&mut rng, 4, false);
        let dp = subset_dp(&inst).unwrap();
        assert!(dp.states_expanded() > 0);
        // Unconstrained 4-service DP evaluates Σ_{k=1..3} C(4,k)·k·(4-k)
        // transitions = 4·1·3 + 6·2·2 + 4·3·1 = 48.
        assert_eq!(dp.states_expanded(), 48);
    }
}
