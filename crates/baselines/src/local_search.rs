//! First-improvement local search over plan permutations.
//!
//! Neighborhoods: pairwise **swap**, single-service **relocate**, and
//! segment-reversal (**2-opt**). Starts from the best greedy plan plus
//! random feasible restarts; precedence-infeasible neighbors are skipped.
//! A strong inexact comparator for sizes where exact search is hopeless.

use crate::greedy::best_greedy;
use crate::sampling::random_plan;
use dsq_core::{bottleneck_cost, Plan, QueryInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of [`local_search`]. Passive struct; fields are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalSearchConfig {
    /// Total start points: the greedy start plus `restarts - 1` random
    /// feasible plans.
    pub restarts: usize,
    /// Safety cap on accepted improvements across all restarts.
    pub max_improvements: u64,
    /// RNG seed for the random restarts.
    pub seed: u64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig { restarts: 4, max_improvements: 100_000, seed: 0 }
    }
}

/// Result of [`local_search`].
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    plan: Plan,
    cost: f64,
    improvements: u64,
    neighbors_evaluated: u64,
}

impl LocalSearchResult {
    /// The best plan found (a local optimum of the composite
    /// neighborhood).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its bottleneck cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Accepted improving moves.
    pub fn improvements(&self) -> u64 {
        self.improvements
    }

    /// Candidate neighbors whose cost was evaluated.
    pub fn neighbors_evaluated(&self) -> u64 {
        self.neighbors_evaluated
    }
}

/// Runs multi-start first-improvement local search.
///
/// # Examples
///
/// ```
/// use dsq_baselines::{local_search, LocalSearchConfig};
/// use dsq_core::{CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     (0..8).map(|i| Service::new(1.0 + i as f64 * 0.3, 0.7)).collect(),
///     CommMatrix::from_fn(8, |i, j| if i == j { 0.0 } else { ((i * 3 + j) % 5) as f64 * 0.2 }),
/// )?;
/// let result = local_search(&inst, &LocalSearchConfig::default());
/// assert_eq!(result.plan().len(), 8);
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn local_search(instance: &QueryInstance, config: &LocalSearchConfig) -> LocalSearchResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut improvements = 0u64;
    let mut neighbors = 0u64;
    let mut best: Option<(Vec<usize>, f64)> = None;

    let starts = config.restarts.max(1);
    for restart in 0..starts {
        let mut order = if restart == 0 {
            best_greedy(instance).plan().indices()
        } else {
            random_plan(instance, &mut rng).indices()
        };
        let mut cost = eval(instance, &order);
        descend(instance, &mut order, &mut cost, &mut improvements, &mut neighbors, config);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((order, cost));
        }
        if improvements >= config.max_improvements {
            break;
        }
    }

    let (order, cost) = best.expect("at least one restart runs");
    LocalSearchResult {
        plan: Plan::new(order).expect("moves preserve permutations"),
        cost,
        improvements,
        neighbors_evaluated: neighbors,
    }
}

fn eval(instance: &QueryInstance, order: &[usize]) -> f64 {
    let plan = Plan::new(order.to_vec()).expect("permutation");
    bottleneck_cost(instance, &plan)
}

fn feasible(instance: &QueryInstance, order: &[usize]) -> bool {
    match instance.precedence() {
        Some(dag) => dag.is_feasible_order(order),
        None => true,
    }
}

/// First-improvement descent over swap ∪ relocate ∪ 2-opt until a local
/// optimum (or the improvement cap) is reached.
fn descend(
    instance: &QueryInstance,
    order: &mut Vec<usize>,
    cost: &mut f64,
    improvements: &mut u64,
    neighbors: &mut u64,
    config: &LocalSearchConfig,
) {
    let n = order.len();
    let mut improved = true;
    while improved && *improvements < config.max_improvements {
        improved = false;
        'scan: for i in 0..n {
            for j in (i + 1)..n {
                for kind in 0..3 {
                    let mut candidate = order.clone();
                    match kind {
                        0 => candidate.swap(i, j),
                        1 => {
                            let s = candidate.remove(i);
                            candidate.insert(j, s);
                        }
                        _ => candidate[i..=j].reverse(),
                    }
                    if candidate == *order || !feasible(instance, &candidate) {
                        continue;
                    }
                    *neighbors += 1;
                    let c = eval(instance, &candidate);
                    if c < *cost - 1e-15 {
                        *order = candidate;
                        *cost = c;
                        *improvements += 1;
                        improved = true;
                        break 'scan;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::greedy::best_greedy;
    use dsq_core::{CommMatrix, PrecedenceDag, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize) -> QueryInstance {
        QueryInstance::from_parts(
            (0..n)
                .map(|_| Service::new(rng.gen_range(0.01..4.0), rng.gen_range(0.05..1.5)))
                .collect(),
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..3.0) }),
        )
        .unwrap()
    }

    #[test]
    fn at_least_as_good_as_greedy_never_below_optimal() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let n = rng.gen_range(3..8);
            let inst = random_instance(&mut rng, n);
            let opt = exhaustive(&inst).unwrap().cost();
            let greedy_cost = best_greedy(&inst).cost();
            let ls = local_search(&inst, &LocalSearchConfig::default());
            assert!(ls.cost() >= opt - 1e-9, "below optimum");
            assert!(ls.cost() <= greedy_cost + 1e-9, "worse than its own start");
            let actual = dsq_core::bottleneck_cost(&inst, ls.plan());
            assert!((ls.cost() - actual).abs() < 1e-9);
        }
    }

    #[test]
    fn finds_optimum_on_small_instances_often() {
        // Not guaranteed in general, but on tiny instances the composite
        // neighborhood should reach the optimum; treat failures as signal.
        let mut rng = StdRng::seed_from_u64(23);
        let mut hits = 0;
        let trials = 20;
        for _ in 0..trials {
            let inst = random_instance(&mut rng, 5);
            let opt = exhaustive(&inst).unwrap().cost();
            let ls = local_search(&inst, &LocalSearchConfig { restarts: 6, ..Default::default() });
            if (ls.cost() - opt).abs() <= 1e-9 * opt.max(1.0) {
                hits += 1;
            }
        }
        assert!(hits >= trials * 3 / 4, "local search found optimum only {hits}/{trials} times");
    }

    #[test]
    fn precedence_preserved_through_moves() {
        let mut dag = PrecedenceDag::new(6).unwrap();
        dag.add_edge(5, 0).unwrap();
        dag.add_edge(0, 3).unwrap();
        let inst = QueryInstance::builder()
            .services((0..6).map(|i| Service::new(1.0 + i as f64, 0.5)))
            .comm(CommMatrix::from_fn(6, |i, j| if i == j { 0.0 } else { (i + j) as f64 * 0.3 }))
            .precedence(dag)
            .build()
            .unwrap();
        let ls = local_search(&inst, &LocalSearchConfig::default());
        assert!(ls.plan().satisfies(inst.precedence().unwrap()));
    }

    #[test]
    fn improvement_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(31);
        let inst = random_instance(&mut rng, 8);
        let ls =
            local_search(&inst, &LocalSearchConfig { max_improvements: 1, restarts: 5, seed: 0 });
        assert!(ls.improvements() <= 1);
        assert!(ls.neighbors_evaluated() > 0);
    }
}
