//! Optimal ordering under **uniform** communication costs — the
//! centralized special case solved in polynomial time by Srivastava et
//! al., *Query Optimization over Web Services*, VLDB 2006 (the paper's
//! reference `[1]`).
//!
//! # Model
//!
//! With every transfer (including delivery of final results) costing the
//! same `t`, service `i`'s effective weight is position-independent:
//! `d_i = c_i + σ_i·t`, and a plan's bottleneck cost is
//! `max_i (Π_{k before i} σ_k) · d_i`. [`uniformized`] builds the
//! corresponding [`QueryInstance`] (uniform matrix **and** sink `t`), on
//! which [`dsq_core::bottleneck_cost`] agrees with this formula — the
//! tests cross-validate against the exact subset DP.
//!
//! # Algorithm
//!
//! Threshold feasibility + iterative tightening, exact for selective
//! services (`σ ≤ 1`, the paper's §2 setting):
//!
//! * `feasible(τ)`: build the plan left to right; among the services that
//!   are ready (precedence) and whose term `p·d_i` stays below `τ`, place
//!   the one with the **smallest selectivity**. An exchange argument shows
//!   this greedy finds a witness whenever one exists: take any feasible
//!   schedule, move the greedy pick to the front — its predecessors are
//!   already placed, services displaced later keep their prefix sets, and
//!   services displaced earlier see their prefix shrink by `σ_pick ≤ 1`.
//! * Start from the `τ = ∞` schedule and repeatedly demand a strictly
//!   better one (`strict` threshold at the incumbent cost). Each round
//!   strictly lowers the incumbent, which always equals an achievable
//!   cost, so the iteration terminates; when `feasible` fails, the
//!   incumbent is optimal.
//!
//! For proliferative services (`σ > 1`) the exchange argument breaks;
//! [`uniform_optimal`] returns [`BaselineError::Proliferative`] and
//! callers fall back to [`crate::subset_dp`] on the uniformized instance
//! (this is what [`crate::uniform_reference_plan`] automates).

use crate::error::BaselineError;
use crate::subset_dp::subset_dp_with_limit;
use dsq_core::{BitSet, Plan, QueryInstance};

/// Result of the uniform-communication ordering.
#[derive(Debug, Clone)]
pub struct UniformResult {
    plan: Plan,
    cost: f64,
    rounds: u64,
}

impl UniformResult {
    /// The optimal plan **under the uniform model**.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its cost under the uniform model (`max prefix · d_i`).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Tightening rounds performed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// A copy of `instance` with every transfer — including final delivery —
/// costing `t`: the homogeneous network that reference `[1]` optimizes
/// exactly.
pub fn uniformized(instance: &QueryInstance, t: f64) -> QueryInstance {
    let mut builder = QueryInstance::builder()
        .name(format!("{}-uniformized", instance.name()))
        .services(instance.services().to_vec())
        .comm(dsq_core::CommMatrix::uniform(instance.len(), t))
        .sink(vec![t; instance.len()]);
    if let Some(p) = instance.precedence() {
        builder = builder.precedence(p.clone());
    }
    builder.build().expect("uniformized copy of a valid instance is valid")
}

/// Optimal ordering for selective services under uniform communication
/// cost `t` (see module docs for the algorithm and its proof sketch).
///
/// # Errors
///
/// Returns [`BaselineError::Proliferative`] if any selectivity exceeds
/// one.
///
/// # Examples
///
/// ```
/// use dsq_baselines::uniform_optimal;
/// use dsq_core::{CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(1.0, 0.9), Service::new(1.0, 0.1)],
///     CommMatrix::uniform(2, 0.5),
/// )?;
/// let result = uniform_optimal(&inst, 0.5)?;
/// // The strong filter goes first.
/// assert_eq!(result.plan().indices(), vec![1, 0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn uniform_optimal(instance: &QueryInstance, t: f64) -> Result<UniformResult, BaselineError> {
    if instance.has_proliferative() {
        return Err(BaselineError::Proliferative);
    }
    let n = instance.len();
    let d: Vec<f64> = (0..n).map(|i| instance.cost(i) + instance.selectivity(i) * t).collect();

    let mut current = feasible_schedule(instance, &d, f64::INFINITY, false)
        .expect("infinite threshold always admits a schedule");
    let mut cost = uniform_plan_cost(instance, &d, &current);
    let mut rounds = 1;
    while let Some(order) = feasible_schedule(instance, &d, cost, true) {
        let improved = uniform_plan_cost(instance, &d, &order);
        debug_assert!(improved < cost, "strict threshold must strictly improve");
        current = order;
        cost = improved;
        rounds += 1;
    }
    Ok(UniformResult {
        plan: Plan::new(current).expect("greedy schedule is a permutation"),
        cost,
        rounds,
    })
}

/// The reference plan used by experiments E4/E6: the ordering a
/// *network-oblivious* optimizer (reference `[1]`) would pick, assuming
/// all transfers cost the instance's **mean** off-diagonal transfer cost.
/// Falls back to the exact subset DP on the uniformized instance when
/// services are proliferative.
///
/// Returns the plan together with the uniform-model cost it was chosen
/// for; evaluate it on the *real* instance with
/// [`dsq_core::bottleneck_cost`] to measure the price of ignoring network
/// heterogeneity.
///
/// # Errors
///
/// Returns [`BaselineError::TooLarge`] if the proliferative fallback
/// exceeds the subset DP's size limit.
pub fn uniform_reference_plan(instance: &QueryInstance) -> Result<(Plan, f64), BaselineError> {
    let t = instance.comm().mean_off_diagonal();
    match uniform_optimal(instance, t) {
        Ok(result) => {
            let cost = result.cost();
            Ok((result.plan().clone(), cost))
        }
        Err(BaselineError::Proliferative) => {
            let relaxed = uniformized(instance, t);
            let dp = subset_dp_with_limit(&relaxed, crate::subset_dp::SUBSET_DP_MAX_N)?;
            Ok((dp.plan().clone(), dp.cost()))
        }
        Err(other) => Err(other),
    }
}

/// Cost of `order` under the uniform model: `max_i prefix_i · d_i`.
pub(crate) fn uniform_plan_cost(instance: &QueryInstance, d: &[f64], order: &[usize]) -> f64 {
    let mut prefix = 1.0;
    let mut worst = 0.0_f64;
    for &s in order {
        worst = worst.max(prefix * d[s]);
        prefix *= instance.selectivity(s);
    }
    worst
}

fn feasible_schedule(
    instance: &QueryInstance,
    d: &[f64],
    tau: f64,
    strict: bool,
) -> Option<Vec<usize>> {
    let n = instance.len();
    let mut order = Vec::with_capacity(n);
    let mut placed = BitSet::new(n);
    let mut prefix = 1.0;
    for _ in 0..n {
        let mut pick: Option<usize> = None;
        for (i, &d_i) in d.iter().enumerate() {
            if placed.contains(i) {
                continue;
            }
            if let Some(dag) = instance.precedence() {
                if !dag.is_ready(i, &placed) {
                    continue;
                }
            }
            let term = prefix * d_i;
            let within = if strict { term < tau } else { term <= tau };
            if !within {
                continue;
            }
            if pick.is_none_or(|p| instance.selectivity(i) < instance.selectivity(p)) {
                pick = Some(i);
            }
        }
        let i = pick?;
        prefix *= instance.selectivity(i);
        placed.insert(i);
        order.push(i);
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subset_dp::subset_dp;
    use dsq_core::{bottleneck_cost, CommMatrix, PrecedenceDag, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_selective(rng: &mut StdRng, n: usize, precedence: bool) -> QueryInstance {
        let services: Vec<Service> = (0..n)
            .map(|_| Service::new(rng.gen_range(0.01..4.0), rng.gen_range(0.01..1.0)))
            .collect();
        let comm =
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..3.0) });
        let mut b = QueryInstance::builder().services(services).comm(comm);
        if precedence {
            let mut dag = PrecedenceDag::new(n).unwrap();
            for a in 0..n {
                for c in (a + 1)..n {
                    if rng.gen_bool(0.2) {
                        dag.add_edge(a, c).unwrap();
                    }
                }
            }
            b = b.precedence(dag);
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_exact_dp_on_uniformized_instances() {
        let mut rng = StdRng::seed_from_u64(555);
        for trial in 0..80 {
            let n = rng.gen_range(2..8);
            let inst = random_selective(&mut rng, n, trial % 3 == 0);
            let t = rng.gen_range(0.0..2.0);
            let uni = uniform_optimal(&inst, t).unwrap();
            let relaxed = uniformized(&inst, t);
            // The uniform model cost must agree with Eq. 1 on the
            // uniformized instance...
            let eq1 = bottleneck_cost(&relaxed, uni.plan());
            assert!(
                (uni.cost() - eq1).abs() <= 1e-9 * eq1.max(1.0),
                "trial {trial}: model {} vs Eq.1 {}",
                uni.cost(),
                eq1
            );
            // ...and must equal the exact optimum.
            let dp = subset_dp(&relaxed).unwrap();
            assert!(
                (uni.cost() - dp.cost()).abs() <= 1e-9 * dp.cost().max(1.0),
                "trial {trial}: greedy {} vs dp {}",
                uni.cost(),
                dp.cost()
            );
            if let Some(dag) = inst.precedence() {
                assert!(uni.plan().satisfies(dag));
            }
        }
    }

    #[test]
    fn proliferative_rejected_then_fallback_used() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 2.0), Service::new(1.0, 0.5)],
            CommMatrix::uniform(2, 1.0),
        )
        .unwrap();
        assert_eq!(uniform_optimal(&inst, 1.0).unwrap_err(), BaselineError::Proliferative);
        let (plan, cost) = uniform_reference_plan(&inst).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(cost.is_finite());
    }

    #[test]
    fn strong_filters_first_when_costs_tie() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 0.8), Service::new(1.0, 0.2), Service::new(1.0, 0.5)],
            CommMatrix::uniform(3, 0.0),
        )
        .unwrap();
        let result = uniform_optimal(&inst, 0.0).unwrap();
        // All orders cost 1.0 here (first term dominates); the greedy
        // starts with the strongest filter by construction.
        assert!((result.cost() - 1.0).abs() < 1e-12);
        assert_eq!(result.plan().indices()[0], 1);
    }

    #[test]
    fn reference_plan_is_network_oblivious() {
        // Heavily asymmetric network: the reference plan only sees the
        // mean, so evaluating it on the real instance can be much worse
        // than the decentralized optimum.
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 0.9), Service::new(1.0, 0.9), Service::new(1.0, 0.9)],
            CommMatrix::from_rows(vec![
                vec![0.0, 10.0, 0.1],
                vec![0.1, 0.0, 10.0],
                vec![10.0, 0.1, 0.0],
            ])
            .unwrap(),
        )
        .unwrap();
        let (plan, _) = uniform_reference_plan(&inst).unwrap();
        let oblivious = bottleneck_cost(&inst, &plan);
        let optimal = dsq_core::optimize(&inst).cost();
        assert!(oblivious >= optimal - 1e-12);
    }

    #[test]
    fn rounds_are_reported() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = random_selective(&mut rng, 6, false);
        let result = uniform_optimal(&inst, 0.5).unwrap();
        assert!(result.rounds() >= 1);
    }
}
