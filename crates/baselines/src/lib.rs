//! Exact and heuristic comparators for the decentralized service-ordering
//! problem.
//!
//! Everything the evaluation of the paper's branch-and-bound needs to
//! compare against:
//!
//! * **Exact**: [`exhaustive`] permutation search (`n!`, the correctness
//!   oracle) and [`subset_dp`] (Held-Karp-style bottleneck DP,
//!   `O(2^n n²)`).
//! * **The prior art**: [`uniform_optimal`] — the polynomial algorithm of
//!   Srivastava et al. (VLDB'06) for *uniform* communication costs, plus
//!   [`uniform_reference_plan`], which applies it network-obliviously to
//!   heterogeneous instances (the gap it leaves is the paper's raison
//!   d'être, experiments E4/E6).
//! * **Heuristics**: [`greedy`] construction ([`GreedyKind`] variants),
//!   [`beam_search`] (width-bounded prefix search scored by the paper's
//!   `ε` measure), [`local_search`] (swap/relocate/2-opt),
//!   [`simulated_annealing`], and [`random_sampling`].
//! * **The hard core**: [`btsp_query_instance`] realizes the paper's
//!   NP-hardness reduction from the bottleneck TSP; [`btsp_path_exact`]
//!   solves it independently for cross-validation (E9).
//!
//! All algorithms honour precedence constraints and report enough
//! telemetry (plans evaluated, DP states, rounds, neighbors) to drive the
//! experiment harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annealing;
mod beam;
mod btsp;
mod error;
mod exhaustive;
mod greedy;
mod local_search;
mod sampling;
mod subset_dp;
mod uniform;

pub use annealing::{simulated_annealing, AnnealingConfig, AnnealingResult};
pub use beam::{beam_search, BeamConfig, BeamResult};
pub use btsp::{
    btsp_lower_bound, btsp_path_exact, btsp_query_instance, path_bottleneck, BtspResult, BTSP_MAX_N,
};
pub use error::BaselineError;
pub use exhaustive::{exhaustive, exhaustive_with_limit, ExhaustiveResult, EXHAUSTIVE_MAX_N};
pub use greedy::{best_greedy, fast_greedy, greedy, GreedyKind, GreedyResult};
pub use local_search::{local_search, LocalSearchConfig, LocalSearchResult};
pub use sampling::{random_plan, random_sampling, SamplingResult};
pub use subset_dp::{subset_dp, subset_dp_with_limit, DpResult, SUBSET_DP_MAX_N};
pub use uniform::{uniform_optimal, uniform_reference_plan, uniformized, UniformResult};
