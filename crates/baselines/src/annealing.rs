//! Simulated annealing over plan permutations.
//!
//! The stochastic comparator for large instances: random swap / relocate /
//! reverse moves, Metropolis acceptance, geometric cooling from an
//! auto-calibrated temperature down to a fixed fraction of it.

use crate::sampling::random_plan;
use dsq_core::{bottleneck_cost, Plan, QueryInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of [`simulated_annealing`]. Passive struct; fields are
/// public.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingConfig {
    /// Number of proposed moves.
    pub steps: u64,
    /// Starting temperature; `None` auto-calibrates to the mean absolute
    /// cost delta of a pilot sample of moves.
    pub initial_temp: Option<f64>,
    /// Final temperature as a fraction of the initial one (geometric
    /// schedule across `steps`).
    pub final_temp_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig { steps: 20_000, initial_temp: None, final_temp_ratio: 1e-3, seed: 0 }
    }
}

/// Result of [`simulated_annealing`].
#[derive(Debug, Clone)]
pub struct AnnealingResult {
    plan: Plan,
    cost: f64,
    accepted: u64,
    steps: u64,
}

impl AnnealingResult {
    /// The best plan seen during the walk.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Its bottleneck cost.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Accepted moves.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Proposed moves.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// Runs simulated annealing, deterministic in the config's seed.
///
/// # Examples
///
/// ```
/// use dsq_baselines::{simulated_annealing, AnnealingConfig};
/// use dsq_core::{CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     (0..10).map(|i| Service::new(0.5 + (i % 4) as f64, 0.8)).collect(),
///     CommMatrix::from_fn(10, |i, j| if i == j { 0.0 } else { ((7 * i + j) % 9) as f64 * 0.1 }),
/// )?;
/// let cfg = AnnealingConfig { steps: 2_000, ..AnnealingConfig::default() };
/// let result = simulated_annealing(&inst, &cfg);
/// assert_eq!(result.plan().len(), 10);
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn simulated_annealing(instance: &QueryInstance, config: &AnnealingConfig) -> AnnealingResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = instance.len();

    let mut current = random_plan(instance, &mut rng).indices();
    let mut current_cost = eval(instance, &current);
    let mut best = current.clone();
    let mut best_cost = current_cost;

    if n < 2 {
        return AnnealingResult {
            plan: Plan::new(best).expect("permutation"),
            cost: best_cost,
            accepted: 0,
            steps: 0,
        };
    }

    let t0 = config.initial_temp.unwrap_or_else(|| {
        // Pilot: mean |Δ| over a handful of random feasible moves.
        let mut total = 0.0;
        let mut count = 0u32;
        for _ in 0..30 {
            if let Some(candidate) = propose(instance, &current, &mut rng) {
                total += (eval(instance, &candidate) - current_cost).abs();
                count += 1;
            }
        }
        if count == 0 || total == 0.0 {
            current_cost.max(1e-9) * 0.1
        } else {
            total / f64::from(count)
        }
    });
    let t_end = t0 * config.final_temp_ratio.clamp(1e-12, 1.0);
    let decay =
        if config.steps > 1 { (t_end / t0).powf(1.0 / (config.steps - 1) as f64) } else { 1.0 };

    let mut temp = t0;
    let mut accepted = 0u64;
    for _ in 0..config.steps {
        if let Some(candidate) = propose(instance, &current, &mut rng) {
            let cost = eval(instance, &candidate);
            let delta = cost - current_cost;
            if delta < 0.0 || rng.gen::<f64>() < (-delta / temp.max(1e-300)).exp() {
                current = candidate;
                current_cost = cost;
                accepted += 1;
                if cost < best_cost {
                    best = current.clone();
                    best_cost = cost;
                }
            }
        }
        temp *= decay;
    }

    AnnealingResult {
        plan: Plan::new(best).expect("moves preserve permutations"),
        cost: best_cost,
        accepted,
        steps: config.steps,
    }
}

fn eval(instance: &QueryInstance, order: &[usize]) -> f64 {
    bottleneck_cost(instance, &Plan::new(order.to_vec()).expect("permutation"))
}

/// Proposes one random feasible neighbor, or `None` if the draw was
/// precedence-infeasible (the caller just moves on — rejection keeps the
/// proposal distribution simple).
fn propose(instance: &QueryInstance, order: &[usize], rng: &mut StdRng) -> Option<Vec<usize>> {
    let n = order.len();
    let mut candidate = order.to_vec();
    let i = rng.gen_range(0..n);
    let mut j = rng.gen_range(0..n - 1);
    if j >= i {
        j += 1;
    }
    match rng.gen_range(0..3u8) {
        0 => candidate.swap(i, j),
        1 => {
            let s = candidate.remove(i);
            candidate.insert(j, s);
        }
        _ => {
            let (lo, hi) = (i.min(j), i.max(j));
            candidate[lo..=hi].reverse();
        }
    }
    let ok = match instance.precedence() {
        Some(dag) => dag.is_feasible_order(&candidate),
        None => true,
    };
    ok.then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use dsq_core::{CommMatrix, PrecedenceDag, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize) -> QueryInstance {
        QueryInstance::from_parts(
            (0..n)
                .map(|_| Service::new(rng.gen_range(0.01..4.0), rng.gen_range(0.05..1.5)))
                .collect(),
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..3.0) }),
        )
        .unwrap()
    }

    #[test]
    fn deterministic_in_seed() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = random_instance(&mut rng, 8);
        let cfg = AnnealingConfig { steps: 500, ..Default::default() };
        let a = simulated_annealing(&inst, &cfg);
        let b = simulated_annealing(&inst, &cfg);
        assert_eq!(a.plan().indices(), b.plan().indices());
        assert_eq!(a.accepted(), b.accepted());
    }

    #[test]
    fn close_to_optimal_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let inst = random_instance(&mut rng, 6);
            let opt = exhaustive(&inst).unwrap().cost();
            let sa =
                simulated_annealing(&inst, &AnnealingConfig { steps: 5_000, ..Default::default() });
            assert!(sa.cost() >= opt - 1e-9);
            assert!(
                sa.cost() <= opt * 1.5 + 1e-9,
                "annealing {} far above optimum {opt}",
                sa.cost()
            );
        }
    }

    #[test]
    fn respects_precedence() {
        let mut dag = PrecedenceDag::new(6).unwrap();
        dag.add_edge(5, 0).unwrap();
        dag.add_edge(4, 1).unwrap();
        let inst = QueryInstance::builder()
            .services((0..6).map(|i| Service::new(1.0 + i as f64, 0.5)))
            .comm(CommMatrix::uniform(6, 0.2))
            .precedence(dag)
            .build()
            .unwrap();
        let sa =
            simulated_annealing(&inst, &AnnealingConfig { steps: 1_000, ..Default::default() });
        assert!(sa.plan().satisfies(inst.precedence().unwrap()));
    }

    #[test]
    fn singleton_shortcut() {
        let inst = QueryInstance::builder()
            .service(Service::new(1.0, 1.0))
            .comm(CommMatrix::zeros(1))
            .build()
            .unwrap();
        let sa = simulated_annealing(&inst, &AnnealingConfig::default());
        assert_eq!(sa.plan().indices(), vec![0]);
        assert_eq!(sa.steps(), 0);
    }

    #[test]
    fn reported_cost_matches_plan() {
        let mut rng = StdRng::seed_from_u64(12);
        let inst = random_instance(&mut rng, 7);
        let sa = simulated_annealing(&inst, &AnnealingConfig { steps: 800, ..Default::default() });
        let actual = dsq_core::bottleneck_cost(&inst, sa.plan());
        assert!((sa.cost() - actual).abs() < 1e-12);
    }
}
