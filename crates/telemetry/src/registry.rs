//! Named metric handles and the text exposition format.
//!
//! A [`MetricsRegistry`] is a name → metric map with get-or-create
//! registration; handles are `Arc`s, so hot paths capture them once and
//! never touch the registry lock again. [`MetricsRegistry::render`]
//! produces the `dsq-metrics v1` exposition — a byte-stable text form
//! suitable for diffing, parsing, and shipping over the wire:
//!
//! ```text
//! # dsq-metrics v1
//! counter <name> <value>
//! gauge <name> <value>
//! histogram <name> count <n> sum <s> min <lo> max <hi> p50 <a> p90 <b> p99 <c> p999 <d>
//! ```
//!
//! Lines after the header are sorted by metric name (bytewise
//! ascending, names are unique across kinds), so two renders of the
//! same state are byte-identical regardless of registration order.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shards per [`Counter`]; enough to keep a handful of worker threads
/// off each other's cache lines without bloating idle counters.
const COUNTER_SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A monotonically increasing counter, sharded across cache-line-padded
/// cells so concurrent `add` calls from different threads do not
/// contend. Reads sum the shards (relaxed; exact once writers pause).
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedCell; COUNTER_SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self { shards: Default::default() }
    }

    fn shard(&self) -> &AtomicU64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static SLOT: usize = usize::try_from(
                NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS as u64,
            )
            .expect("shard index fits usize");
        }
        &self.shards[SLOT.with(|s| *s)].0
    }

    /// Adds `n` (wrapping; a u64 of increments outlives the process).
    pub fn add(&self, n: u64) {
        self.shard().fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).fold(0, u64::wrapping_add)
    }
}

/// A signed instantaneous value (queue depths, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the value to `candidate` if larger (a high-water mark).
    pub fn fetch_max(&self, candidate: i64) {
        self.value.fetch_max(candidate, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The exposition header; the first line of every render.
pub const EXPOSITION_HEADER: &str = "# dsq-metrics v1";

/// A name → metric map with get-or-create registration and a
/// byte-stable text exposition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        wrap: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> Metric,
    ) -> Arc<T> {
        assert!(
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b"._-".contains(&b)),
            "metric names are lowercase [a-z0-9._-], got {name:?}"
        );
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(make);
        wrap(entry)
            .unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", entry.kind()))
    }

    /// The counter named `name`, registering it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is malformed or already names a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, registering it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is malformed or already names a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, registering an empty one (default
    /// precision) on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is malformed or already names a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Metric::Histogram(Arc::new(Histogram::new())),
        )
    }

    /// Renders the exposition text (header + one line per metric,
    /// sorted by name, trailing newline).
    pub fn render(&self) -> String {
        self.render_with(&[])
    }

    /// Renders the exposition with extra scrape-time counters folded
    /// into sorted order — for sources that keep their own tallies
    /// (e.g. a server's admission counters) and only materialize them
    /// at scrape time. Extra names shadow registered metrics.
    pub fn render_with(&self, extra_counters: &[(&str, u64)]) -> String {
        let mut lines: BTreeMap<String, String> = self
            .metrics
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, metric)| {
                let line = match metric {
                    Metric::Counter(c) => format!("counter {name} {}", c.get()),
                    Metric::Gauge(g) => format!("gauge {name} {}", g.get()),
                    Metric::Histogram(h) => histogram_line(name, h),
                };
                (name.clone(), line)
            })
            .collect();
        for (name, value) in extra_counters {
            lines.insert((*name).to_string(), format!("counter {name} {value}"));
        }
        let mut out = String::from(EXPOSITION_HEADER);
        out.push('\n');
        for line in lines.values() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

fn histogram_line(name: &str, h: &Histogram) -> String {
    format!(
        "histogram {name} count {} sum {} min {} max {} p50 {} p90 {} p99 {} p999 {}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999),
    )
}

/// The process-wide registry: client-side paths (retry loops, fleet
/// planners, load generators) publish here; servers hold their own
/// per-instance [`MetricsRegistry`] so co-located daemons (and tests)
/// never mix streams.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("counter thread");
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_tracks_signed_values() {
        let g = Gauge::new();
        g.add(5);
        g.add(-8);
        assert_eq!(g.get(), -3);
        g.set(2);
        g.fetch_max(7);
        g.fetch_max(1);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = MetricsRegistry::new();
        reg.counter("requests.total").inc();
        reg.counter("requests.total").add(2);
        assert_eq!(reg.counter("requests.total").get(), 3);
        reg.histogram("latency.ns").record(10);
        assert_eq!(reg.histogram("latency.ns").count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collisions_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x.y");
        reg.gauge("x.y");
    }

    #[test]
    #[should_panic(expected = "lowercase")]
    fn malformed_names_panic() {
        MetricsRegistry::new().counter("Requests Total");
    }

    #[test]
    fn render_is_sorted_and_byte_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta.count").add(9);
        reg.gauge("alpha.depth").set(-2);
        reg.histogram("mid.lat").record(100);
        let a = reg.render();
        let b = reg.render();
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines[0], EXPOSITION_HEADER);
        assert_eq!(lines[1], "gauge alpha.depth -2");
        assert!(lines[2].starts_with("histogram mid.lat count 1 sum 100 min 100 max 100 "));
        assert_eq!(lines[3], "counter zeta.count 9");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn extra_counters_fold_into_sorted_order() {
        let reg = MetricsRegistry::new();
        reg.counter("b.two").add(2);
        let text = reg.render_with(&[("c.three", 3), ("a.one", 1)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![EXPOSITION_HEADER, "counter a.one 1", "counter b.two 2", "counter c.three 3"]
        );
    }
}
