//! Stage timing against the monotonic clock only — never `SystemTime`,
//! which can jump backwards under NTP and poison latency histograms.

use crate::hist::Histogram;
use std::time::Instant;

/// A started stopwatch. Cheap to create (one `Instant::now()`), `Copy`
/// so it can ride inside queued jobs across threads.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`] (saturating).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed time into `hist` and returns the reading.
    pub fn observe(&self, hist: &Histogram) -> u64 {
        let nanos = self.elapsed_nanos();
        hist.record(nanos);
        nanos
    }
}

/// A scope guard that records its lifetime into a histogram on drop.
///
/// ```
/// use dsq_telemetry::{Histogram, Span};
/// let stage = Histogram::new();
/// {
///     let _timed = Span::enter(&stage);
///     // ... the work being measured ...
/// }
/// assert_eq!(stage.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    watch: Stopwatch,
}

impl<'a> Span<'a> {
    /// Starts a span that records into `hist` when it drops.
    pub fn enter(hist: &'a Histogram) -> Self {
        Self { hist, watch: Stopwatch::start() }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.watch.observe(self.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_observes_into_histogram() {
        let h = Histogram::new();
        let w = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let nanos = w.observe(&h);
        assert!(nanos >= 1_000_000, "slept a millisecond, read {nanos}ns");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_records_on_drop_even_through_panics() {
        let h = Histogram::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = Span::enter(&h);
            panic!("stage blew up");
        }));
        assert!(result.is_err());
        assert_eq!(h.count(), 1, "unwinding must still record the stage");
    }
}
