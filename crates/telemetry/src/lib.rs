//! Zero-dependency telemetry for the serving stack: mergeable
//! log-linear [`Histogram`]s with a pinned relative-error bound,
//! sharded [`Counter`]s and [`Gauge`]s, a [`MetricsRegistry`] with a
//! byte-stable text exposition (`dsq-metrics v1`), monotonic-clock
//! stage timers ([`Stopwatch`], [`Span`]), and a leveled, env-filtered
//! [`log`] shim.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths never block.** Recording into a histogram or counter
//!    is a few relaxed atomic RMWs; registry locks are touched only at
//!    registration and scrape time (handles are `Arc`s captured once).
//! 2. **Distributions are first-class.** Quantiles come with a
//!    documented relative-error bound ([`Histogram::relative_error_bound`]),
//!    and histograms merge losslessly so per-shard or per-class streams
//!    can be combined.
//! 3. **Exposition is byte-stable.** Two renders of the same state are
//!    identical bytes, so protocol tests can pin lines and diffs stay
//!    readable.
//! 4. **Monotonic clock only.** No `SystemTime` anywhere near a
//!    latency measurement.

pub mod hist;
pub mod log;
pub mod registry;
pub mod timer;

pub use hist::{Histogram, DEFAULT_GRID_BITS};
pub use registry::{global, Counter, Gauge, MetricsRegistry, EXPOSITION_HEADER};
pub use timer::{Span, Stopwatch};
