//! A mergeable log-linear histogram over `u64` values (nanoseconds in
//! practice), in the HDR-histogram family.
//!
//! The value axis is split into octaves `[2^k, 2^(k+1))`, each divided
//! into `grid = 2^grid_bits` equal-width linear sub-buckets. Values
//! below `2 * grid` land in width-1 buckets and are recorded exactly;
//! every larger value lands in a bucket whose width is at most
//! `value / grid`, so any quantile read back from the histogram is
//! within a relative error of `1 / grid` of some value actually
//! recorded at that rank ([`Histogram::relative_error_bound`]).
//!
//! Recording is lock-free (`&self`, relaxed atomics) and costs one
//! index computation plus a handful of atomic RMWs; histograms with the
//! same precision merge by bucket-wise saturating addition, so per-class
//! or per-shard histograms can be combined without losing the bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default precision: 64 sub-buckets per octave, ≤ 1.6% relative error.
pub const DEFAULT_GRID_BITS: u32 = 6;

/// A concurrent log-linear histogram of `u64` observations.
///
/// ```
/// use dsq_telemetry::Histogram;
/// let h = Histogram::new();
/// for v in [1_000u64, 2_000, 4_000, 8_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.quantile(0.5);
/// let err = 2_000.0 * h.relative_error_bound();
/// assert!((p50 as f64 - 2_000.0).abs() <= err, "p50 {p50}");
/// ```
#[derive(Debug)]
pub struct Histogram {
    grid_bits: u32,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A histogram at the default precision ([`DEFAULT_GRID_BITS`]).
    pub fn new() -> Self {
        Self::with_grid_bits(DEFAULT_GRID_BITS)
    }

    /// A histogram with `2^grid_bits` linear sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= grid_bits <= 12` (beyond 12 the bucket array
    /// stops paying for its precision).
    pub fn with_grid_bits(grid_bits: u32) -> Self {
        assert!((1..=12).contains(&grid_bits), "grid_bits must be in 1..=12, got {grid_bits}");
        let grid = 1usize << grid_bits;
        // Indices 0..2*grid are exact width-1 buckets; each coarser
        // octave (shift 1..=63-grid_bits) adds one block of `grid`.
        let buckets = (64 - grid_bits as usize + 1) * grid;
        Self {
            grid_bits,
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The guaranteed relative accuracy of [`Histogram::quantile`]:
    /// `1 / 2^grid_bits`.
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << self.grid_bits) as f64
    }

    /// The linear sub-buckets per octave (`2^grid_bits`).
    pub fn grid(&self) -> u64 {
        1u64 << self.grid_bits
    }

    fn index(&self, value: u64) -> usize {
        let grid = 1u64 << self.grid_bits;
        if value < 2 * grid {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros();
            let shift = msb - self.grid_bits;
            ((shift as usize + 1) << self.grid_bits) + ((value >> shift) - grid) as usize
        }
    }

    /// Inclusive `[low, high]` value range of bucket `idx`.
    fn bounds(&self, idx: usize) -> (u64, u64) {
        let grid = 1u64 << self.grid_bits;
        if (idx as u64) < 2 * grid {
            (idx as u64, idx as u64)
        } else {
            let shift = (idx as u64 >> self.grid_bits) - 1;
            let low = (grid + (idx as u64 & (grid - 1))) << shift;
            (low, low + ((1u64 << shift) - 1))
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`. Bucket, count, and sum
    /// tallies saturate at `u64::MAX` instead of wrapping.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        saturating_add(&self.buckets[self.index(value)], n);
        saturating_add(&self.count, n);
        saturating_add(&self.sum, value.saturating_mul(n));
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.is_empty() {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The value at quantile `p` (clamped to `[0, 1]`): the midpoint of
    /// the bucket holding the observation of rank `ceil(p * count)`,
    /// clamped to the recorded `[min, max]`. Returns 0 when empty.
    ///
    /// Within a relative error of [`Histogram::relative_error_bound`]
    /// of the rank-`ceil(p * count)` value of the recorded stream.
    pub fn quantile(&self, p: f64) -> u64 {
        let p = p.clamp(0.0, 1.0);
        // Walk a point-in-time copy of the buckets so a concurrent
        // recorder cannot move the target rank mid-scan.
        let mut total = 0u64;
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        for c in &counts {
            total = total.saturating_add(*c);
        }
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, c) in counts.iter().enumerate() {
            seen = seen.saturating_add(*c);
            if seen >= rank {
                let (low, high) = self.bounds(idx);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Adds every observation of `other` into `self` (bucket-wise
    /// saturating addition). Both histograms keep recording safely
    /// during the merge.
    ///
    /// # Panics
    ///
    /// Panics if the histograms were built with different precision.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.grid_bits, other.grid_bits,
            "cannot merge histograms of different precision"
        );
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                saturating_add(dst, n);
            }
        }
        saturating_add(&self.count, other.count());
        saturating_add(&self.sum, other.sum());
        if !other.is_empty() {
            self.min.fetch_min(other.min(), Ordering::Relaxed);
            self.max.fetch_max(other.max(), Ordering::Relaxed);
        }
    }

    /// Clears all buckets and tallies. Not atomic against concurrent
    /// recorders; callers serialize externally if they need a clean cut.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

fn saturating_add(cell: &AtomicU64, n: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every u64 maps to a bucket whose range contains it, bucket
    /// ranges tile the axis without gaps, and width respects the bound.
    #[test]
    fn indexing_is_contiguous_and_bounded() {
        let h = Histogram::new();
        let grid = h.grid();
        // Exhaustive over the exact region, spot samples beyond.
        for v in 0..(4 * grid) {
            let idx = h.index(v);
            let (low, high) = h.bounds(idx);
            assert!(low <= v && v <= high, "v={v} idx={idx} [{low},{high}]");
        }
        let mut prev_high = 4 * grid - 1;
        let mut v = 4 * grid;
        while v > prev_high {
            let idx = h.index(v);
            let (low, high) = h.bounds(idx);
            assert!(low <= v && v <= high, "v={v} [{low},{high}]");
            assert_eq!(low, prev_high + 1, "gap before bucket {idx}");
            assert!(
                (high - low) as f64 <= (low as f64) / grid as f64,
                "bucket {idx} too wide: [{low},{high}]"
            );
            prev_high = high;
            v = match high.checked_add(1) {
                Some(next) => next,
                None => break,
            };
        }
        assert_eq!(prev_high, u64::MAX, "buckets must cover all of u64");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..h.grid() * 2 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), h.grid() * 2 - 1);
        // Width-1 buckets: the median is exact, not approximate.
        assert_eq!(h.quantile(0.5), h.grid() - 1);
    }

    #[test]
    fn quantiles_respect_the_relative_error_bound() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..10_000u64).map(|i| i * i + 17).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1] as f64;
            let got = h.quantile(p) as f64;
            assert!(
                (got - exact).abs() <= exact * h.relative_error_bound() + 1.0,
                "p={p}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 0..500u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for p in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(p), both.quantile(p), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mismatched_precision() {
        Histogram::with_grid_bits(5).merge(&Histogram::with_grid_bits(6));
    }

    #[test]
    fn saturating_tallies_do_not_wrap() {
        let h = Histogram::new();
        h.record_n(42, u64::MAX);
        h.record_n(42, u64::MAX);
        h.record_n(7, 3);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 42);
        assert_eq!(h.quantile(0.5), 42);
    }

    #[test]
    fn extreme_values_round_trip() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
        let top = h.quantile(1.0) as f64;
        assert!(top >= u64::MAX as f64 * (1.0 - h.relative_error_bound()));
    }

    #[test]
    fn duration_recording_is_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.min(), 3_000);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(1234);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        h.record(8);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 8);
    }
}
