//! A leveled stderr log shim, off by default so test output stays
//! clean. `DSQ_LOG` in the environment turns it on: `error`, `warn`,
//! `info`, or `debug` enable that level and everything above it;
//! `off`/empty/unset (or garbage) keep it silent. The filter is read
//! once per process.
//!
//! Emit through [`crate::log_event!`], which skips the formatting cost
//! entirely when the level is filtered out:
//!
//! ```
//! use dsq_telemetry::{log_event, log::Level};
//! log_event!(Level::Warn, "lock", "stale lock stolen after {}s", 30);
//! ```

use std::sync::OnceLock;

/// Severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting conditions.
    Error,
    /// Surprising but handled conditions (lock steals, rollbacks).
    Warn,
    /// Lifecycle events (drains, snapshots).
    Info,
    /// Per-request chatter; only for soak debugging.
    Debug,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// `Some(most verbose enabled level)`, `None` when logging is off.
fn filter() -> Option<Level> {
    static FILTER: OnceLock<Option<Level>> = OnceLock::new();
    *FILTER.get_or_init(|| match std::env::var("DSQ_LOG").ok()?.to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    })
}

/// True when messages at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    filter().is_some_and(|max| level <= max)
}

/// Writes one line to stderr: `[level target] message`. Callers go
/// through [`crate::log_event!`] so disabled levels cost one branch.
pub fn emit(level: Level, target: &str, message: &str) {
    eprintln!("[{} {target}] {message}", level.tag());
}

/// Logs a formatted message at `level` under a `target` tag, paying for
/// the formatting only when that level is enabled via `DSQ_LOG`.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($level) {
            $crate::log::emit($level, $target, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    // The filter itself is process-global (read once from DSQ_LOG), so
    // its on/off behavior is covered by the smoke script, which greps a
    // daemon's stderr with and without the variable set.
    #[test]
    fn default_filter_is_silent() {
        if std::env::var("DSQ_LOG").is_err() {
            assert!(!enabled(Level::Error));
        }
    }
}
