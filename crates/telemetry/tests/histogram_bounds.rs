//! Property-based coverage of the histogram's documented contract: for
//! arbitrary value streams, `merge(a, b).quantile(p)` stays within the
//! relative-error bound of recording the concatenated stream directly,
//! and within the bound of the exact rank statistic — plus the
//! empty/saturating edge cases the unit suite pins pointwise.

use dsq_telemetry::Histogram;
use proptest::prelude::*;

/// The exact rank-`ceil(p * len)` order statistic of `values`.
fn exact_quantile(values: &mut [u64], p: f64) -> u64 {
    values.sort_unstable();
    let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

fn within_bound(approx: u64, exact: u64, bound: f64) -> bool {
    // +1 absorbs the integer midpoint rounding of width-1 buckets.
    (approx as f64 - exact as f64).abs() <= exact as f64 * bound + 1.0
}

/// Streams mixing magnitudes from single digits to tens of billions,
/// so buckets from the exact region through wide octaves all engage.
fn stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u32..32, 1u64..1024), 1usize..200)
        .prop_map(|pairs| pairs.into_iter().map(|(shift, v)| v << (shift % 33)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Merging two independently recorded histograms answers quantiles
    /// exactly as if one histogram had seen the concatenated stream,
    /// and both stay within the documented bound of the true statistic.
    #[test]
    fn merge_preserves_quantiles(a in stream(), b in stream(), p in 0.0f64..=1.0) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let concat = Histogram::new();
        for &v in &a {
            ha.record(v);
            concat.record(v);
        }
        for &v in &b {
            hb.record(v);
            concat.record(v);
        }
        ha.merge(&hb);

        prop_assert_eq!(ha.count(), concat.count());
        prop_assert_eq!(ha.sum(), concat.sum());
        prop_assert_eq!(ha.min(), concat.min());
        prop_assert_eq!(ha.max(), concat.max());
        // Bucket-wise addition is lossless: the merged histogram is
        // indistinguishable from the concatenated recording.
        prop_assert_eq!(ha.quantile(p), concat.quantile(p));

        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        let exact = exact_quantile(&mut all, p);
        prop_assert!(
            within_bound(ha.quantile(p), exact, ha.relative_error_bound()),
            "p={} merged={} exact={}", p, ha.quantile(p), exact
        );
    }

    /// Every quantile of a single recorded stream respects the bound.
    #[test]
    fn quantiles_track_exact_rank_statistics(mut values in stream()) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for p in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&mut values, p);
            prop_assert!(
                within_bound(h.quantile(p), exact, h.relative_error_bound()),
                "p={} got={} exact={}", p, h.quantile(p), exact
            );
        }
    }

    /// Merging an empty histogram in either direction changes nothing.
    #[test]
    fn empty_merge_is_identity(values in stream(), p in 0.0f64..=1.0) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let before = (h.count(), h.sum(), h.min(), h.max(), h.quantile(p));
        let empty = Histogram::new();
        h.merge(&empty);
        prop_assert_eq!(before, (h.count(), h.sum(), h.min(), h.max(), h.quantile(p)));

        let other = Histogram::new();
        other.merge(&h);
        prop_assert_eq!(other.quantile(p), h.quantile(p));
    }

    /// Saturated bucket tallies survive a merge without wrapping: the
    /// saturated bucket stays dominant and quantiles stay sane.
    #[test]
    fn saturating_buckets_survive_merge(v in 1u64..u64::MAX, extra in 1u64..1000) {
        let a = Histogram::new();
        a.record_n(v, u64::MAX);
        let b = Histogram::new();
        b.record_n(v, extra);
        b.record(1);
        a.merge(&b);
        prop_assert_eq!(a.count(), u64::MAX);
        prop_assert_eq!(a.min(), 1);
        // The saturated value owns every interior quantile.
        prop_assert!(within_bound(a.quantile(0.5), v, a.relative_error_bound()));
        prop_assert!(within_bound(a.quantile(0.999), v, a.relative_error_bound()));
    }
}
