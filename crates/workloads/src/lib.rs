//! Workload generation for the decentralized service-ordering
//! experiments.
//!
//! The paper's technical-report evaluation ran "extensive simulation and
//! real experiments"; this crate supplies the inputs: seeded instance
//! [families](Family) spanning the regimes that matter (heterogeneous
//! networks, correlated cost/selectivity, proliferative services, the
//! bottleneck-TSP hard core), the motivating [credit-screening
//! scenario](credit_pipeline) from the paper's introduction, precedence
//! DAG generators, and [sweeps](Sweep) over (family × size × seed) grids.
//!
//! Everything is deterministic in its seed, so experiments are exactly
//! reproducible.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod drift;
mod families;
mod precedence_gen;
mod scenario;
mod sweep;

pub use drift::{BoundaryWalk, DriftConfig, DriftStream};
pub use families::{generate, generate_with, Family, FamilyParams};
pub use precedence_gen::{chain_dag, diamond_dag, random_dag};
pub use scenario::{credit_pipeline, federated_join, sensor_fusion};
pub use sweep::{Sweep, SweepPoint};
