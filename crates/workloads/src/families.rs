//! Seeded instance families.
//!
//! Each family fixes a qualitative regime of the problem; the free
//! parameters (`n`, seed, knobs in [`FamilyParams`]) are swept by the
//! experiment harness. All generation is deterministic in the seed.

use dsq_core::{CommMatrix, QueryInstance, Service};
use dsq_netsim as netsim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The qualitative workload regimes used across the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// I.i.d. costs, selectivities and (asymmetric) transfer costs.
    UniformRandom,
    /// Hosts on a plane; transfer cost grows with distance.
    Euclidean,
    /// Three data centers; cheap intra-, expensive inter-cluster links.
    Clustered,
    /// Two hubs; spokes route through them.
    HubSpoke,
    /// Expensive services filter harder (anticorrelated cost/selectivity),
    /// the regime where ordering decisions are most consequential.
    Correlated,
    /// Roughly a third of the services are proliferative (`σ ∈ (1, 3]`),
    /// exercising the paper's σ > 1 generalization.
    ProliferativeMix,
    /// Unit selectivities, zero processing costs: the bottleneck-TSP core.
    BtspHard,
}

impl Family {
    /// All families, in report order.
    pub const ALL: [Family; 7] = [
        Family::UniformRandom,
        Family::Euclidean,
        Family::Clustered,
        Family::HubSpoke,
        Family::Correlated,
        Family::ProliferativeMix,
        Family::BtspHard,
    ];

    /// Stable lowercase name used in tables and file names.
    pub fn name(self) -> &'static str {
        match self {
            Family::UniformRandom => "uniform-random",
            Family::Euclidean => "euclidean",
            Family::Clustered => "clustered",
            Family::HubSpoke => "hub-spoke",
            Family::Correlated => "correlated",
            Family::ProliferativeMix => "proliferative",
            Family::BtspHard => "btsp-hard",
        }
    }
}

/// Numeric knobs shared by the families. Passive struct; fields are
/// public.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyParams {
    /// Per-tuple processing cost range.
    pub cost_range: (f64, f64),
    /// Selectivity range for selective services.
    pub selectivity_range: (f64, f64),
    /// Transfer cost range (scale of the network).
    pub transfer_range: (f64, f64),
    /// Fraction of proliferative services in [`Family::ProliferativeMix`].
    pub proliferative_fraction: f64,
    /// Upper selectivity for proliferative services.
    pub max_proliferative_selectivity: f64,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams {
            cost_range: (0.05, 2.0),
            selectivity_range: (0.1, 1.0),
            transfer_range: (0.05, 1.5),
            proliferative_fraction: 0.34,
            max_proliferative_selectivity: 3.0,
        }
    }
}

/// Generates an instance of `family` with `n` services, deterministic in
/// `seed`, using default [`FamilyParams`].
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use dsq_workloads::{generate, Family};
///
/// let inst = generate(Family::Clustered, 8, 42);
/// assert_eq!(inst.len(), 8);
/// assert_eq!(inst, generate(Family::Clustered, 8, 42));
/// ```
pub fn generate(family: Family, n: usize, seed: u64) -> QueryInstance {
    generate_with(family, n, seed, &FamilyParams::default())
}

/// [`generate`] with explicit parameters.
///
/// # Panics
///
/// Panics if `n == 0` or the parameter ranges are invalid.
pub fn generate_with(family: Family, n: usize, seed: u64, params: &FamilyParams) -> QueryInstance {
    assert!(n > 0, "instances need at least one service");
    let mut rng = StdRng::seed_from_u64(seed ^ stable_hash(family.name()));
    let services = services_for(family, n, &mut rng, params);
    let comm = comm_for(family, n, &mut rng, params);
    QueryInstance::builder()
        .name(format!("{}-n{}-s{}", family.name(), n, seed))
        .services(services)
        .comm(comm)
        .build()
        .expect("generated instances are valid")
}

fn services_for(family: Family, n: usize, rng: &mut StdRng, params: &FamilyParams) -> Vec<Service> {
    let (c_lo, c_hi) = params.cost_range;
    let (s_lo, s_hi) = params.selectivity_range;
    match family {
        Family::BtspHard => (0..n).map(|_| Service::new(0.0, 1.0)).collect(),
        Family::Correlated => (0..n)
            .map(|_| {
                // Anticorrelated: cost fraction u ⇒ selectivity tracks
                // (1-u), so expensive services filter harder.
                let u: f64 = rng.gen_range(0.0..1.0);
                let cost = c_lo + u * (c_hi - c_lo);
                let jittered = (1.0 - u) * 0.8 + rng.gen_range(0.0..0.2);
                let sel = s_lo + jittered.clamp(0.0, 1.0) * (s_hi - s_lo);
                Service::new(cost, sel)
            })
            .collect(),
        Family::ProliferativeMix => (0..n)
            .map(|_| {
                let cost = rng.gen_range(c_lo..=c_hi);
                let sel = if rng.gen_bool(params.proliferative_fraction) {
                    rng.gen_range(1.0..=params.max_proliferative_selectivity)
                } else {
                    rng.gen_range(s_lo..=s_hi)
                };
                Service::new(cost, sel)
            })
            .collect(),
        _ => (0..n)
            .map(|_| Service::new(rng.gen_range(c_lo..=c_hi), rng.gen_range(s_lo..=s_hi)))
            .collect(),
    }
}

fn comm_for(family: Family, n: usize, rng: &mut StdRng, params: &FamilyParams) -> CommMatrix {
    let (t_lo, t_hi) = params.transfer_range;
    let seed = rng.gen::<u64>();
    match family {
        Family::Euclidean => {
            let side = 100.0;
            let rate = (t_hi - t_lo) / (side * std::f64::consts::SQRT_2);
            netsim::euclidean(n, side, t_lo, rate, seed).into_comm()
        }
        Family::Clustered => {
            netsim::clustered(n, 3, t_lo, t_hi.max(t_lo * 4.0), 0.2, seed).into_comm()
        }
        Family::HubSpoke => netsim::hub_spoke(n, 2, t_lo, t_hi, seed).into_comm(),
        Family::BtspHard => {
            netsim::uniform_random(n, t_lo.max(0.1), t_hi.max(1.0), false, seed).into_comm()
        }
        _ => netsim::uniform_random(n, t_lo, t_hi, false, seed).into_comm(),
    }
}

/// Deterministic hash (the workspace's shared FNV-1a) so the same
/// (family, seed) pair always maps to the same RNG stream without the
/// family streams colliding.
fn stable_hash(s: &str) -> u64 {
    let mut h = dsq_core::Fnv1a::new();
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_generate_valid_instances() {
        for family in Family::ALL {
            let inst = generate(family, 9, 1);
            assert_eq!(inst.len(), 9, "{}", family.name());
            assert!(!inst.name().is_empty());
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        for family in Family::ALL {
            assert_eq!(generate(family, 6, 5), generate(family, 6, 5));
            assert_ne!(
                generate(family, 6, 5),
                generate(family, 6, 6),
                "{} ignores its seed",
                family.name()
            );
        }
    }

    #[test]
    fn families_do_not_collide() {
        // Same n/seed, different family ⇒ different instances.
        let a = generate(Family::UniformRandom, 6, 9);
        let b = generate(Family::Correlated, 6, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn btsp_hard_matches_the_reduction_shape() {
        let inst = generate(Family::BtspHard, 7, 3);
        for s in inst.services() {
            assert_eq!(s.cost(), 0.0);
            assert_eq!(s.selectivity(), 1.0);
        }
        assert!(!inst.has_proliferative());
    }

    #[test]
    fn proliferative_mix_contains_both_kinds() {
        let inst = generate(Family::ProliferativeMix, 40, 8);
        let prolif = inst.services().iter().filter(|s| s.is_proliferative()).count();
        assert!(prolif > 0, "no proliferative services generated");
        assert!(prolif < 40, "all services proliferative");
    }

    #[test]
    fn correlated_costs_track_inverse_selectivity() {
        let inst = generate(Family::Correlated, 200, 4);
        // Crude check: among the 50 most expensive services the mean
        // selectivity is lower than among the 50 cheapest.
        let mut services: Vec<_> = inst.services().to_vec();
        services.sort_by(|a, b| a.cost().total_cmp(&b.cost()));
        let cheap: f64 = services[..50].iter().map(|s| s.selectivity()).sum::<f64>() / 50.0;
        let dear: f64 = services[150..].iter().map(|s| s.selectivity()).sum::<f64>() / 50.0;
        assert!(
            dear < cheap,
            "expected anticorrelation, cheap mean σ {cheap} vs expensive mean σ {dear}"
        );
    }

    #[test]
    fn clustered_matrices_are_heterogeneous() {
        let inst = generate(Family::Clustered, 12, 2);
        assert!(dsq_netsim::heterogeneity(inst.comm()) > 0.2);
    }

    #[test]
    fn params_are_respected() {
        let params = FamilyParams {
            cost_range: (5.0, 6.0),
            selectivity_range: (0.5, 0.6),
            ..FamilyParams::default()
        };
        let inst = generate_with(Family::UniformRandom, 10, 0, &params);
        for s in inst.services() {
            assert!((5.0..=6.0).contains(&s.cost()));
            assert!((0.5..=0.6).contains(&s.selectivity()));
        }
    }
}
