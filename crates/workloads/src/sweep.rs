//! Parameter sweeps: the cartesian grids the experiment harness iterates.

use crate::families::{generate_with, Family, FamilyParams};
use dsq_core::QueryInstance;

/// One generated point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The family that produced the instance.
    pub family: Family,
    /// Number of services.
    pub n: usize,
    /// The seed used.
    pub seed: u64,
    /// The instance itself.
    pub instance: QueryInstance,
}

/// Builder for a (families × sizes × seeds) grid of instances.
///
/// # Examples
///
/// ```
/// use dsq_workloads::{Family, Sweep};
///
/// let points = Sweep::new()
///     .families([Family::UniformRandom, Family::Clustered])
///     .sizes([4, 6])
///     .seeds(0..3)
///     .build();
/// assert_eq!(points.len(), 2 * 2 * 3);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    families: Vec<Family>,
    sizes: Vec<usize>,
    seeds: Vec<u64>,
    params: FamilyParams,
}

impl Sweep {
    /// An empty sweep with default parameters, one seed (0), and no
    /// families/sizes yet.
    pub fn new() -> Self {
        Sweep {
            families: Vec::new(),
            sizes: Vec::new(),
            seeds: vec![0],
            params: FamilyParams::default(),
        }
    }

    /// Sets the families to iterate.
    pub fn families(mut self, families: impl IntoIterator<Item = Family>) -> Self {
        self.families = families.into_iter().collect();
        self
    }

    /// Sets the instance sizes to iterate.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the seeds to iterate.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Overrides the family parameters.
    pub fn params(mut self, params: FamilyParams) -> Self {
        self.params = params;
        self
    }

    /// Generates the full grid, ordered family-major then size then seed.
    ///
    /// # Panics
    ///
    /// Panics if no family or no size was configured (empty sweeps are
    /// almost certainly bugs in experiment code).
    pub fn build(&self) -> Vec<SweepPoint> {
        assert!(
            !self.families.is_empty() && !self.sizes.is_empty(),
            "a sweep needs at least one family and one size"
        );
        let mut out = Vec::with_capacity(self.families.len() * self.sizes.len() * self.seeds.len());
        for &family in &self.families {
            for &n in &self.sizes {
                for &seed in &self.seeds {
                    out.push(SweepPoint {
                        family,
                        n,
                        seed,
                        instance: generate_with(family, n, seed, &self.params),
                    });
                }
            }
        }
        out
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_order() {
        let points =
            Sweep::new().families([Family::UniformRandom]).sizes([3, 5]).seeds(0..2).build();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].n, 3);
        assert_eq!(points[0].seed, 0);
        assert_eq!(points[1].seed, 1);
        assert_eq!(points[2].n, 5);
        for p in &points {
            assert_eq!(p.instance.len(), p.n);
            assert_eq!(p.family, Family::UniformRandom);
        }
    }

    #[test]
    fn reproducible() {
        let a = Sweep::new().families([Family::Euclidean]).sizes([4]).seeds([7]).build();
        let b = Sweep::new().families([Family::Euclidean]).sizes([4]).seeds([7]).build();
        assert_eq!(a[0].instance, b[0].instance);
    }

    #[test]
    #[should_panic(expected = "at least one family")]
    fn empty_sweep_panics() {
        Sweep::new().build();
    }
}
