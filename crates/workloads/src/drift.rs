//! Drifting-statistics request streams for the serving layer.
//!
//! Federated query traffic is dominated by *repeated* queries whose cost
//! and selectivity statistics drift slowly between optimizations (fresh
//! cardinality estimates, load-dependent service latencies). A
//! [`DriftStream`] models exactly that: a small set of base queries
//! (fixed topology — the hosts do not move between requests) cycled
//! round-robin, each carrying per-service cost/selectivity values that
//! follow a multiplicative **mean-reverting** random walk from request
//! to request: fresh noise arrives every occurrence, while the
//! accumulated offset decays toward the base value, the way load-driven
//! statistics fluctuate around slowly-changing baselines (a free random
//! walk would wander without bound and eventually describe a different
//! query, not a drifting one). It is the workload the `dsq-service` plan
//! cache is designed for, and what experiment E13 and the
//! `service_throughput` bench measure.
//!
//! Deterministic in the seed, like every generator in this crate.

use crate::families::{generate, Family};
use dsq_core::{CommMatrix, QueryInstance, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a [`DriftStream`]. Passive struct; fields are public.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Family the base queries are drawn from.
    pub family: Family,
    /// Services per query.
    pub n: usize,
    /// Stream seed (bases and walks are deterministic in it).
    pub seed: u64,
    /// Number of distinct base queries cycled round-robin.
    pub queries: usize,
    /// Total requests the stream yields.
    pub requests: usize,
    /// Per-request relative drift magnitude of each selectivity: every
    /// occurrence multiplies `σ_i` by `1 + rate · u`, `u ∈ [-1, 1]`,
    /// after decaying the accumulated offset by [`reversion`](Self::reversion).
    pub selectivity_rate: f64,
    /// Per-request relative drift magnitude of each processing cost.
    pub cost_rate: f64,
    /// Mean-reversion factor in `[0, 1]`: the fraction of the
    /// accumulated (logarithmic) offset retained per occurrence. `0`
    /// re-jitters the base values independently each time; values close
    /// to `1` approach a free random walk.
    pub reversion: f64,
    /// Adversarial variant: pin one parameter per base query onto a
    /// quantization bucket **boundary** and oscillate it across (see
    /// [`BoundaryWalk`]). `None` for plain mean-reverting drift.
    pub boundary: Option<BoundaryWalk>,
}

/// The boundary-walking variant: each base query's first service cost is
/// re-pinned to sit exactly on a bucket boundary of the given
/// quantization grid and oscillates across it as a triangle wave. Every
/// crossing flips the primary fingerprint between two adjacent keys —
/// the adversarial case for a single-probe plan cache (the ROADMAP's
/// "slowly walking parameter") — while the half-bucket-shifted grid of a
/// two-probe cache sees one stable key throughout, because the
/// oscillation never strays more than [`amplitude`](Self::amplitude)
/// `< 0.5` buckets from the boundary, which is that grid's bucket
/// center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryWalk {
    /// Resolution of the quantization grid whose boundary is straddled
    /// (match the target cache's fingerprint resolution).
    pub resolution: f64,
    /// Oscillation amplitude in buckets, in `(0, 0.5)`: strictly less
    /// than half a bucket so the shifted grid stays stable.
    pub amplitude: f64,
    /// Occurrences (per base query) of one full oscillation; `2` makes
    /// every consecutive occurrence land on the opposite side.
    pub period: usize,
}

impl Default for BoundaryWalk {
    /// 5% grid (the cache default), 0.2-bucket amplitude, alternating
    /// sides every occurrence.
    fn default() -> Self {
        BoundaryWalk { resolution: 0.05, amplitude: 0.2, period: 2 }
    }
}

impl BoundaryWalk {
    /// Position of occurrence `occurrence` in bucket units relative to
    /// the straddled boundary: a triangle wave in
    /// `[-amplitude, +amplitude]` starting at the negative extreme.
    fn offset(&self, occurrence: usize) -> f64 {
        let phase = (occurrence % self.period) as f64 / self.period as f64;
        let triangle = if phase < 0.5 { 4.0 * phase - 1.0 } else { 3.0 - 4.0 * phase };
        self.amplitude * triangle
    }
}

impl DriftConfig {
    /// A stream of `requests` requests over `n`-service queries: 8 base
    /// queries, 0.5% selectivity and 0.25% cost drift per occurrence —
    /// slow enough that most re-optimizations are redundant, fast enough
    /// that entries eventually go stale.
    pub fn new(family: Family, n: usize, seed: u64, requests: usize) -> Self {
        DriftConfig {
            family,
            n,
            seed,
            queries: 8,
            requests,
            selectivity_rate: 0.005,
            cost_rate: 0.0025,
            reversion: 0.9,
            boundary: None,
        }
    }

    /// A boundary-walking stream (see [`BoundaryWalk`]): like
    /// [`new`](Self::new) but with every base query's first cost
    /// oscillating across a bucket boundary of the `resolution` grid and
    /// the background noise switched off, so the fingerprint churn is
    /// exactly the walked parameter's.
    pub fn boundary_walk(
        family: Family,
        n: usize,
        seed: u64,
        requests: usize,
        resolution: f64,
    ) -> Self {
        DriftConfig {
            selectivity_rate: 0.0,
            cost_rate: 0.0,
            boundary: Some(BoundaryWalk { resolution, ..BoundaryWalk::default() }),
            ..DriftConfig::new(family, n, seed, requests)
        }
    }
}

/// One drifting base query: the fixed network, the baseline statistics,
/// and the current multiplicative offsets of the walk.
#[derive(Debug, Clone)]
struct BaseQuery {
    costs: Vec<f64>,
    selectivities: Vec<f64>,
    /// Current multiplicative offset per cost (starts at 1.0).
    cost_offsets: Vec<f64>,
    /// Current multiplicative offset per selectivity.
    selectivity_offsets: Vec<f64>,
    comm: CommMatrix,
}

/// Iterator over the requests of a drifting workload stream (see the
/// [module docs](self)).
///
/// # Examples
///
/// ```
/// use dsq_workloads::{DriftConfig, DriftStream, Family};
///
/// let config = DriftConfig::new(Family::Correlated, 6, 7, 20);
/// let requests: Vec<_> = DriftStream::new(config.clone()).collect();
/// assert_eq!(requests.len(), 20);
/// // Deterministic in the seed...
/// let again: Vec<_> = DriftStream::new(config).collect();
/// assert_eq!(requests, again);
/// // ...and occurrence 8 revisits base query 0, slightly drifted.
/// assert_eq!(requests[8].comm(), requests[0].comm());
/// assert_ne!(requests[8], requests[0]);
/// ```
#[derive(Debug, Clone)]
pub struct DriftStream {
    config: DriftConfig,
    bases: Vec<BaseQuery>,
    rng: StdRng,
    emitted: usize,
}

impl DriftStream {
    /// Builds the stream (generates the base queries eagerly, yields
    /// requests lazily).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `queries == 0`, a drift rate is negative,
    /// non-finite, or `≥ 1` (a rate of 1 could zero out a parameter).
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.n > 0, "queries need at least one service");
        assert!(config.queries > 0, "a stream needs at least one base query");
        for rate in [config.selectivity_rate, config.cost_rate] {
            assert!(
                rate.is_finite() && (0.0..1.0).contains(&rate),
                "drift rates must be in [0, 1), got {rate}"
            );
        }
        assert!(
            config.reversion.is_finite() && (0.0..=1.0).contains(&config.reversion),
            "reversion must be in [0, 1], got {}",
            config.reversion
        );
        if let Some(walk) = &config.boundary {
            assert!(
                walk.resolution.is_finite() && walk.resolution > 0.0 && walk.resolution < 1.0,
                "boundary resolution must be in (0, 1), got {}",
                walk.resolution
            );
            assert!(
                walk.amplitude.is_finite() && walk.amplitude > 0.0 && walk.amplitude < 0.5,
                "boundary amplitude must be in (0, 0.5), got {}",
                walk.amplitude
            );
            assert!(walk.period >= 2, "boundary period must be at least 2");
        }
        let bases = (0..config.queries)
            .map(|q| {
                let inst =
                    generate(config.family, config.n, config.seed ^ (q as u64).rotate_left(17));
                BaseQuery {
                    costs: inst.services().iter().map(Service::cost).collect(),
                    selectivities: inst.services().iter().map(Service::selectivity).collect(),
                    cost_offsets: vec![1.0; config.n],
                    selectivity_offsets: vec![1.0; config.n],
                    comm: inst.comm().clone(),
                }
            })
            .collect();
        let rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E3779B97F4A7C15));
        DriftStream { config, bases, rng, emitted: 0 }
    }

    /// The configuration the stream was built with.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }
}

impl Iterator for DriftStream {
    type Item = QueryInstance;

    fn next(&mut self) -> Option<QueryInstance> {
        if self.emitted >= self.config.requests {
            return None;
        }
        let index = self.emitted;
        let base_index = index % self.bases.len();
        let occurrence = index / self.bases.len();
        // Snapshot the base *before* walking it, so request 0 of each
        // base is the pristine family instance.
        let base = &mut self.bases[base_index];
        let mut services: Vec<Service> = base
            .costs
            .iter()
            .zip(&base.cost_offsets)
            .zip(base.selectivities.iter().zip(&base.selectivity_offsets))
            .map(|((&c, &co), (&s, &so))| Service::new(c * co, s * so))
            .collect();
        if let Some(walk) = &self.config.boundary {
            // Re-pin the first cost onto the bucket boundary nearest its
            // base magnitude and place this occurrence `offset` buckets
            // past it (in log space). A base whose first cost is zero
            // (e.g. the pure-transfer btsp-hard reduction) is anchored
            // at magnitude 1 instead: the zero bucket is a sentinel with
            // no boundary to walk.
            let step = 1.0 + walk.resolution;
            let anchor = if base.costs[0] > f64::MIN_POSITIVE { base.costs[0] } else { 1.0 };
            let boundary = (anchor.ln() / step.ln()).floor() + 0.5;
            let cost = step.powf(boundary + walk.offset(occurrence));
            services[0] = Service::new(cost, services[0].selectivity());
        }
        let instance = QueryInstance::builder()
            .name(format!(
                "drift-{}-n{}-q{}-t{}",
                self.config.family.name(),
                self.config.n,
                base_index,
                index
            ))
            .services(services)
            .comm(base.comm.clone())
            .build()
            .expect("drifted parameters stay valid");

        // Mean-reverting multiplicative walk: each occurrence decays the
        // accumulated (logarithmic) offset and adds fresh relative noise,
        // so statistics fluctuate around the baseline instead of
        // wandering without bound.
        let reversion = self.config.reversion;
        for offset in &mut base.cost_offsets {
            *offset = offset.powf(reversion)
                * (1.0 + self.config.cost_rate * self.rng.gen_range(-1.0..=1.0));
        }
        for offset in &mut base.selectivity_offsets {
            *offset = offset.powf(reversion)
                * (1.0 + self.config.selectivity_rate * self.rng.gen_range(-1.0..=1.0));
        }

        self.emitted += 1;
        Some(instance)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.requests - self.emitted;
        (left, Some(left))
    }
}

impl ExactSizeIterator for DriftStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_the_requested_shape() {
        let stream = DriftStream::new(DriftConfig::new(Family::Clustered, 7, 3, 25));
        assert_eq!(stream.len(), 25);
        assert_eq!(stream.config().queries, 8);
        let requests: Vec<_> = stream.collect();
        assert_eq!(requests.len(), 25);
        for inst in &requests {
            assert_eq!(inst.len(), 7);
        }
        assert!(requests[0].name().starts_with("drift-clustered-n7-q0-t0"));
    }

    #[test]
    fn topology_is_fixed_statistics_walk() {
        let requests: Vec<_> =
            DriftStream::new(DriftConfig::new(Family::UniformRandom, 6, 5, 24)).collect();
        // Occurrences of base 2: requests 2, 10, 18.
        let (a, b, c) = (&requests[2], &requests[10], &requests[18]);
        assert_eq!(a.comm(), b.comm());
        assert_eq!(b.comm(), c.comm());
        // Statistics drift but stay close (≤ 8 steps of ≤ 0.5%).
        for i in 0..6 {
            assert_ne!(a.selectivity(i), b.selectivity(i));
            assert!((b.selectivity(i) / a.selectivity(i) - 1.0).abs() < 0.05);
            assert!((c.cost(i) / a.cost(i) - 1.0).abs() < 0.05);
        }
        // The walk compounds: a later occurrence differs from both.
        assert_ne!(b.services(), c.services());
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let cfg = DriftConfig::new(Family::Correlated, 5, 11, 16);
        let a: Vec<_> = DriftStream::new(cfg.clone()).collect();
        let b: Vec<_> = DriftStream::new(cfg.clone()).collect();
        assert_eq!(a, b);
        let other: Vec<_> = DriftStream::new(DriftConfig { seed: 12, ..cfg }).collect();
        assert_ne!(a, other);
    }

    #[test]
    fn distinct_bases_are_distinct_instances() {
        let requests: Vec<_> =
            DriftStream::new(DriftConfig::new(Family::Euclidean, 6, 2, 8)).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(requests[i].comm(), requests[j].comm(), "bases {i} and {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "drift rates must be in [0, 1)")]
    fn runaway_rates_are_rejected() {
        DriftStream::new(DriftConfig {
            selectivity_rate: 1.5,
            ..DriftConfig::new(Family::Clustered, 4, 0, 4)
        });
    }

    #[test]
    fn boundary_walk_flips_the_primary_grid_but_not_the_shifted_one() {
        use dsq_core::{CanonicalKey, Quantization};
        let resolution = 0.05;
        let config = DriftConfig {
            queries: 2,
            ..DriftConfig::boundary_walk(Family::Clustered, 6, 9, 24, resolution)
        };
        let requests: Vec<_> = DriftStream::new(config).collect();
        let q = Quantization::new(resolution);
        // Occurrences of base 0: indices 0, 2, 4, …
        let primary: Vec<u64> =
            (0..12).map(|k| CanonicalKey::new(&requests[2 * k], &q).fingerprint()).collect();
        let shifted: Vec<u64> = (0..12)
            .map(|k| CanonicalKey::with_phase(&requests[2 * k], &q, 0.5).fingerprint())
            .collect();
        // The primary fingerprint alternates between exactly two keys —
        // every occurrence crosses the boundary…
        assert_ne!(primary[0], primary[1], "consecutive occurrences straddle the boundary");
        for (k, &fingerprint) in primary.iter().enumerate() {
            assert_eq!(fingerprint, primary[k % 2], "period-2 alternation at occurrence {k}");
        }
        // …while the shifted grid sees one stable key throughout.
        for &fingerprint in &shifted {
            assert_eq!(fingerprint, shifted[0], "the walk stays inside one shifted bucket");
        }
    }

    #[test]
    fn boundary_walk_streams_stay_deterministic() {
        let config = DriftConfig::boundary_walk(Family::BtspHard, 5, 3, 16, 0.2);
        let a: Vec<_> = DriftStream::new(config.clone()).collect();
        let b: Vec<_> = DriftStream::new(config).collect();
        assert_eq!(a, b);
        // Occurrences 0 and 1 of base 0 sit on opposite sides of the
        // boundary; everything else is pinned (zero rates). The zero
        // btsp-hard base cost is re-anchored at magnitude ~1.
        assert_ne!(a[0].cost(0), a[8].cost(0));
        assert!(a[0].cost(0) > 0.5 && a[0].cost(0) < 2.0, "anchored near 1, got {}", a[0].cost(0));
        assert_eq!(a[0].selectivity(0), a[8].selectivity(0));
        assert_eq!(a[0].cost(1), a[8].cost(1));
    }

    #[test]
    #[should_panic(expected = "boundary amplitude must be in (0, 0.5)")]
    fn half_bucket_amplitudes_are_rejected() {
        DriftStream::new(DriftConfig {
            boundary: Some(BoundaryWalk { amplitude: 0.5, ..BoundaryWalk::default() }),
            ..DriftConfig::new(Family::Clustered, 4, 0, 4)
        });
    }
}
