//! The paper's motivating scenario, §1: screening potential customers.
//!
//! "…when looking for the credit card numbers of potential customers
//! selecting only those who have a good payment history, the two
//! aforementioned services can be called in any order" — a pipeline over
//! person identifiers where a proliferative card-lookup service and
//! several filtering services can be freely reordered, and the hosts are
//! geo-distributed so transfer costs differ per pair.

use dsq_core::{CommMatrix, QueryInstance, Service};

/// The credit-screening pipeline: six freely reorderable services over
/// person identifiers, on hosts spread across three regions.
///
/// | # | Service | `c` (ms/tuple) | `σ` |
/// |---|---------|----------------|-----|
/// | 0 | `region-filter` — keeps customers in the target market | 0.4 | 0.55 |
/// | 1 | `card-lookup` — person → credit card numbers (proliferative) | 2.5 | 2.4 |
/// | 2 | `payment-history` — keeps good payment histories | 1.8 | 0.35 |
/// | 3 | `fraud-screen` — drops flagged identities | 0.9 | 0.92 |
/// | 4 | `income-estimate` — enriches, keeps most tuples | 1.2 | 0.85 |
/// | 5 | `consent-check` — regulatory opt-in filter | 0.3 | 0.6 |
///
/// Hosts 0–1 share region A (cheap mutual links), 2–3 region B, 4–5
/// region C; cross-region transfers are 5–12× dearer, and region A↔C is
/// the worst pair. Costs are in milliseconds per tuple.
///
/// # Examples
///
/// ```
/// use dsq_core::optimize;
/// use dsq_workloads::credit_pipeline;
///
/// let inst = credit_pipeline();
/// let best = optimize(&inst);
/// assert!(best.is_proven_optimal());
/// // Filtering early beats calling the proliferative lookup first.
/// let lookup_first = dsq_core::Plan::new(vec![1, 0, 2, 3, 4, 5])?;
/// assert!(best.cost() < dsq_core::bottleneck_cost(&inst, &lookup_first));
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn credit_pipeline() -> QueryInstance {
    let services = vec![
        Service::new(0.4, 0.55).with_name("region-filter"),
        Service::new(2.5, 2.4).with_name("card-lookup"),
        Service::new(1.8, 0.35).with_name("payment-history"),
        Service::new(0.9, 0.92).with_name("fraud-screen"),
        Service::new(1.2, 0.85).with_name("income-estimate"),
        Service::new(0.3, 0.6).with_name("consent-check"),
    ];
    // Regions: {0,1} = A, {2,3} = B, {4,5} = C.
    let region = [0usize, 0, 1, 1, 2, 2];
    // Per-tuple transfer cost (ms) between regions; A↔C is the worst link.
    let region_cost = [[0.05, 0.6, 1.2], [0.6, 0.08, 0.5], [1.2, 0.5, 0.06]];
    let comm =
        CommMatrix::from_fn(6, |i, j| if i == j { 0.0 } else { region_cost[region[i]][region[j]] });
    QueryInstance::builder()
        .name("credit-screening")
        .services(services)
        .comm(comm)
        .build()
        .expect("scenario constants are valid")
}

/// A sensor-fusion workflow with structural constraints: ingestion must
/// run first, archiving last, and two enrichment services depend on the
/// decoder — the precedence-constrained counterpart of
/// [`credit_pipeline`].
///
/// Seven services across two edge sites and one core site; the decoder is
/// mildly proliferative (events unpack into multiple readings).
pub fn sensor_fusion() -> QueryInstance {
    let services = vec![
        Service::new(0.2, 1.0).with_name("ingest"),
        Service::new(0.9, 1.8).with_name("decode"),
        Service::new(0.7, 0.6).with_name("calibrate"),
        Service::new(1.1, 0.4).with_name("anomaly-filter"),
        Service::new(0.8, 0.9).with_name("geo-enrich"),
        Service::new(1.5, 0.5).with_name("cross-correlate"),
        Service::new(0.3, 1.0).with_name("archive"),
    ];
    // Sites: {0,1,2} edge A, {3,4} edge B, {5,6} core.
    let site = [0usize, 0, 0, 1, 1, 2, 2];
    let site_cost = [[0.04, 0.9, 0.45], [0.9, 0.05, 0.4], [0.45, 0.4, 0.03]];
    let comm =
        CommMatrix::from_fn(7, |i, j| if i == j { 0.0 } else { site_cost[site[i]][site[j]] });
    let mut dag = dsq_core::PrecedenceDag::new(7).expect("n > 0");
    for later in 1..7 {
        dag.add_edge(0, later).expect("ingest precedes everything");
    }
    for earlier in 0..6 {
        dag.add_edge(earlier, 6).expect("archive follows everything");
    }
    dag.add_edge(1, 2).expect("calibrate needs decoded readings");
    dag.add_edge(1, 4).expect("geo-enrich needs decoded readings");
    QueryInstance::builder()
        .name("sensor-fusion")
        .services(services)
        .comm(comm)
        .precedence(dag)
        .build()
        .expect("scenario constants are valid")
}

/// A federated-join flavoured pipeline: two proliferative lookups against
/// remote sources interleaved with filters, over a last-mile-asymmetric
/// network (cheap downloads, expensive uploads at the data sources).
pub fn federated_join() -> QueryInstance {
    let services = vec![
        Service::new(0.3, 0.7).with_name("predicate-pushdown"),
        Service::new(1.8, 2.2).with_name("orders-lookup"),
        Service::new(0.5, 0.5).with_name("status-filter"),
        Service::new(2.2, 1.6).with_name("lineitem-lookup"),
        Service::new(0.9, 0.3).with_name("value-filter"),
        Service::new(0.6, 0.8).with_name("dedupe"),
    ];
    // Uplink cost per host (data sources 1 and 3 upload expensively),
    // downlink uniform and cheap.
    let up = [0.05, 0.55, 0.08, 0.75, 0.06, 0.07];
    let comm = CommMatrix::from_fn(6, |i, j| if i == j { 0.0 } else { up[i] + 0.05 });
    QueryInstance::builder()
        .name("federated-join")
        .services(services)
        .comm(comm)
        .build()
        .expect("scenario constants are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{bottleneck_cost, optimize, Plan};

    #[test]
    fn shape_matches_the_paper_story() {
        let inst = credit_pipeline();
        assert_eq!(inst.len(), 6);
        assert!(inst.has_proliferative(), "card-lookup must be proliferative");
        assert_eq!(inst.service(1.into()).name(), Some("card-lookup"));
        assert!(inst.service(2.into()).selectivity() < 1.0);
        assert!(!inst.has_precedence(), "services are freely reorderable");
    }

    #[test]
    fn optimal_defers_the_proliferative_lookup() {
        let inst = credit_pipeline();
        let best = optimize(&inst);
        let order = best.plan().indices();
        let lookup_pos = order.iter().position(|&s| s == 1).unwrap();
        assert!(lookup_pos >= 2, "lookup should run after some filtering, got {order:?}");
    }

    #[test]
    fn ordering_matters_materially() {
        let inst = credit_pipeline();
        let best = optimize(&inst).cost();
        let naive = bottleneck_cost(&inst, &Plan::new(vec![1, 4, 3, 0, 2, 5]).unwrap());
        assert!(
            naive / best > 1.5,
            "scenario should show a clear gap, got naive {naive} vs best {best}"
        );
    }

    #[test]
    fn deterministic_constant() {
        assert_eq!(credit_pipeline(), credit_pipeline());
        assert_eq!(sensor_fusion(), sensor_fusion());
        assert_eq!(federated_join(), federated_join());
    }

    #[test]
    fn sensor_fusion_constraints_hold_in_the_optimum() {
        let inst = sensor_fusion();
        assert!(inst.has_precedence());
        let best = optimize(&inst);
        assert!(best.is_proven_optimal());
        let order = best.plan().indices();
        assert_eq!(order[0], 0, "ingest must run first");
        assert_eq!(order[6], 6, "archive must run last");
        let pos = |s: usize| order.iter().position(|&x| x == s).unwrap();
        assert!(pos(1) < pos(2), "decode before calibrate");
        assert!(pos(1) < pos(4), "decode before geo-enrich");
    }

    #[test]
    fn federated_join_defers_expensive_uploaders() {
        let inst = federated_join();
        assert!(inst.has_proliferative());
        // Asymmetric network: uploads from the data sources dominate.
        assert!(!inst.comm().is_symmetric(1e-9));
        let best = optimize(&inst);
        // Optimal must beat calling both lookups first.
        let naive = Plan::new(vec![1, 3, 0, 2, 4, 5]).unwrap();
        assert!(bottleneck_cost(&inst, &naive) > best.cost() * 1.2);
    }
}
