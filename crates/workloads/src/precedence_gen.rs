//! Random and structured precedence DAG generators.

use dsq_core::PrecedenceDag;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A random DAG: a hidden random permutation orients candidate edges, each
/// forward pair becoming a constraint with probability `density`. Always
/// acyclic by construction; `density = 0` yields no constraints and
/// `density = 1` a total order.
///
/// # Panics
///
/// Panics if `n == 0` or `density` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use dsq_workloads::random_dag;
///
/// let dag = random_dag(8, 0.3, 7);
/// assert!(dag.validate().is_ok());
/// ```
pub fn random_dag(n: usize, density: f64, seed: u64) -> PrecedenceDag {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hidden: Vec<usize> = (0..n).collect();
    hidden.shuffle(&mut rng);
    let mut dag = PrecedenceDag::new(n).expect("n > 0");
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(density) {
                dag.add_edge(hidden[a], hidden[b]).expect("indices in range, a != b");
            }
        }
    }
    dag
}

/// A total-order chain `order[0] → order[1] → …` (the tightest possible
/// constraint set).
///
/// # Panics
///
/// Panics if `order` is empty or contains duplicates/out-of-range indices.
pub fn chain_dag(order: &[usize]) -> PrecedenceDag {
    let n = order.len();
    let mut dag = PrecedenceDag::new(n).expect("non-empty order");
    for w in order.windows(2) {
        dag.add_edge(w[0], w[1]).expect("valid chain indices");
    }
    dag.validate().expect("chains are acyclic");
    dag
}

/// A fan-out/fan-in diamond: `source` precedes every middle service, every
/// middle service precedes `sink`. Models an extraction step feeding
/// parallelizable filters feeding an aggregation.
///
/// # Panics
///
/// Panics if `n < 3`, or `source`/`sink` are out of range or equal.
pub fn diamond_dag(n: usize, source: usize, sink: usize) -> PrecedenceDag {
    assert!(n >= 3, "a diamond needs at least three services");
    assert!(source < n && sink < n && source != sink, "invalid source/sink");
    let mut dag = PrecedenceDag::new(n).expect("n > 0");
    for m in 0..n {
        if m != source && m != sink {
            dag.add_edge(source, m).expect("valid edge");
            dag.add_edge(m, sink).expect("valid edge");
        }
    }
    dag.add_edge(source, sink).expect("valid edge");
    dag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dag_is_acyclic_at_any_density() {
        for density in [0.0, 0.3, 0.7, 1.0] {
            for seed in 0..5 {
                let dag = random_dag(10, density, seed);
                assert!(dag.validate().is_ok(), "density {density} seed {seed}");
            }
        }
    }

    #[test]
    fn density_extremes() {
        assert!(random_dag(6, 0.0, 1).is_empty());
        let total = random_dag(6, 1.0, 1);
        assert_eq!(total.edge_count(), 15); // C(6,2)

        // A total order admits exactly one topological order.
        let topo = total.validate().unwrap();
        assert!(total.is_feasible_order(&topo));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_dag(8, 0.4, 9);
        let b = random_dag(8, 0.4, 9);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn chain_forces_exact_order() {
        let dag = chain_dag(&[2, 0, 1]);
        assert!(dag.is_feasible_order(&[2, 0, 1]));
        assert!(!dag.is_feasible_order(&[0, 2, 1]));
    }

    #[test]
    fn diamond_structure() {
        let dag = diamond_dag(5, 0, 4);
        assert!(dag.is_feasible_order(&[0, 1, 2, 3, 4]));
        assert!(dag.is_feasible_order(&[0, 3, 1, 2, 4]));
        assert!(!dag.is_feasible_order(&[1, 0, 2, 3, 4]));
        assert!(!dag.is_feasible_order(&[0, 4, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_diamond_panics() {
        diamond_dag(2, 0, 1);
    }
}
