//! Black-box coverage of the model-construction error paths: every
//! rejected input maps to the *specific* `ModelError` variant the docs
//! promise, exercised through the public API only.

use dsq_core::{CommMatrix, ModelError, PrecedenceDag, QueryInstance, Service};

fn services(n: usize) -> Vec<Service> {
    (0..n).map(|i| Service::new(1.0 + i as f64, 0.5)).collect()
}

// ---------------------------------------------------------------- CommMatrix

#[test]
fn comm_from_rows_rejects_ragged_rows() {
    let err = CommMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0]]).unwrap_err();
    assert_eq!(
        err,
        ModelError::DimensionMismatch { what: "communication matrix row", expected: 2, found: 1 }
    );
}

#[test]
fn comm_from_rows_rejects_negative_transfer() {
    let err = CommMatrix::from_rows(vec![vec![0.0, -3.0], vec![1.0, 0.0]]).unwrap_err();
    assert_eq!(err, ModelError::InvalidValue { what: "transfer cost", value: -3.0 });
}

#[test]
fn comm_from_rows_rejects_nan_and_infinity() {
    let err = CommMatrix::from_rows(vec![vec![0.0, f64::NAN], vec![1.0, 0.0]]).unwrap_err();
    assert!(matches!(err, ModelError::InvalidValue { what: "transfer cost", .. }));
    let err = CommMatrix::from_rows(vec![vec![0.0, f64::INFINITY], vec![1.0, 0.0]]).unwrap_err();
    assert!(
        matches!(err, ModelError::InvalidValue { what: "transfer cost", value } if value.is_infinite())
    );
}

// ------------------------------------------------------------- QueryInstance

#[test]
fn builder_rejects_empty_instance() {
    let err = QueryInstance::builder().comm(CommMatrix::zeros(1)).build().unwrap_err();
    assert_eq!(err, ModelError::EmptyInstance);
}

#[test]
fn builder_requires_a_comm_matrix() {
    let err = QueryInstance::builder().services(services(2)).build().unwrap_err();
    assert_eq!(
        err,
        ModelError::DimensionMismatch { what: "communication matrix", expected: 2, found: 0 }
    );
}

#[test]
fn builder_rejects_comm_dimension_mismatch() {
    let err = QueryInstance::builder()
        .services(services(3))
        .comm(CommMatrix::uniform(2, 1.0))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ModelError::DimensionMismatch { what: "communication matrix", expected: 3, found: 2 }
    );
}

#[test]
fn from_parts_rejects_comm_dimension_mismatch() {
    let err = QueryInstance::from_parts(services(4), CommMatrix::uniform(2, 0.5)).unwrap_err();
    assert_eq!(
        err,
        ModelError::DimensionMismatch { what: "communication matrix", expected: 4, found: 2 }
    );
}

#[test]
fn builder_rejects_sink_dimension_mismatch() {
    let err = QueryInstance::builder()
        .services(services(2))
        .comm(CommMatrix::uniform(2, 1.0))
        .sink(vec![0.1, 0.2, 0.3])
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ModelError::DimensionMismatch { what: "sink cost vector", expected: 2, found: 3 }
    );
}

#[test]
fn builder_rejects_negative_sink_cost() {
    let err = QueryInstance::builder()
        .services(services(2))
        .comm(CommMatrix::uniform(2, 1.0))
        .sink(vec![0.1, -0.2])
        .build()
        .unwrap_err();
    assert_eq!(err, ModelError::InvalidValue { what: "sink cost", value: -0.2 });
}

#[test]
fn builder_rejects_precedence_dimension_mismatch() {
    let dag = PrecedenceDag::new(3).unwrap();
    let err = QueryInstance::builder()
        .services(services(2))
        .comm(CommMatrix::uniform(2, 1.0))
        .precedence(dag)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ModelError::DimensionMismatch { what: "precedence DAG", expected: 2, found: 3 }
    );
}

#[test]
fn builder_rejects_cyclic_precedence() {
    let mut dag = PrecedenceDag::new(2).unwrap();
    dag.add_edge(0, 1).unwrap();
    dag.add_edge(1, 0).unwrap();
    let err = QueryInstance::builder()
        .services(services(2))
        .comm(CommMatrix::uniform(2, 1.0))
        .precedence(dag)
        .build()
        .unwrap_err();
    assert_eq!(err, ModelError::PrecedenceCycle);
}

// ------------------------------------------------------------- PrecedenceDag

#[test]
fn dag_rejects_empty_self_loops_and_out_of_range() {
    assert_eq!(PrecedenceDag::new(0).unwrap_err(), ModelError::EmptyInstance);
    let mut dag = PrecedenceDag::new(3).unwrap();
    assert_eq!(dag.add_edge(2, 2).unwrap_err(), ModelError::SelfPrecedence(2));
    assert_eq!(
        dag.add_edge(1, 7).unwrap_err(),
        ModelError::PrecedenceOutOfRange { service: 7, len: 3 }
    );
}

// ------------------------------------------- Service parameter validation

#[test]
#[should_panic(expected = "cost must be finite and non-negative")]
fn negative_service_cost_panics() {
    let _ = Service::new(-1.0, 0.5);
}

#[test]
#[should_panic(expected = "selectivity must be finite and non-negative")]
fn negative_selectivity_panics() {
    let _ = Service::new(1.0, -0.5);
}

#[test]
#[should_panic(expected = "cost must be finite and non-negative")]
fn nan_service_cost_panics() {
    let _ = Service::new(f64::NAN, 0.5);
}

// ------------------------------------------------- errors are usable errors

#[test]
fn model_error_implements_std_error_with_messages() {
    let errors: Vec<ModelError> = vec![
        ModelError::EmptyInstance,
        ModelError::DimensionMismatch { what: "communication matrix", expected: 2, found: 1 },
        ModelError::InvalidValue { what: "sink cost", value: -1.0 },
        ModelError::PrecedenceCycle,
    ];
    for e in errors {
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
    }
}
