//! Query instances: services + communication costs + optional extras.

use crate::comm::CommMatrix;
use crate::error::ModelError;
use crate::precedence::PrecedenceDag;
use crate::service::{Service, ServiceId};
use std::fmt;

/// A decentralized service query: the full input to the ordering problem.
///
/// An instance bundles the per-service costs and selectivities, the
/// heterogeneous inter-service transfer costs `t_{i,j}`, optional per-service
/// *sink* delivery costs (the transfer of final results to the consumer —
/// zero by default, as in the paper), and optional precedence constraints.
///
/// Construct instances through [`QueryInstanceBuilder`]; every accessor on a
/// built instance can assume the validated invariants (matching dimensions,
/// finite non-negative parameters, acyclic precedence).
///
/// # Examples
///
/// ```
/// use dsq_core::{QueryInstance, Service, CommMatrix};
///
/// let instance = QueryInstance::builder()
///     .service(Service::new(0.4, 0.5).with_name("history-filter"))
///     .service(Service::new(0.9, 3.0).with_name("card-lookup"))
///     .comm(CommMatrix::uniform(2, 0.1))
///     .build()?;
/// assert_eq!(instance.len(), 2);
/// assert_eq!(instance.cost(1), 0.9);
/// assert_eq!(instance.transfer(0, 1), 0.1);
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInstance {
    name: String,
    services: Vec<Service>,
    comm: CommMatrix,
    sink: Vec<f64>,
    precedence: Option<PrecedenceDag>,
}

impl QueryInstance {
    /// Starts building an instance.
    pub fn builder() -> QueryInstanceBuilder {
        QueryInstanceBuilder::new()
    }

    /// Convenience constructor for the common services + matrix case.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`QueryInstanceBuilder::build`].
    pub fn from_parts(services: Vec<Service>, comm: CommMatrix) -> Result<Self, ModelError> {
        QueryInstanceBuilder::new().services(services).comm(comm).build()
    }

    /// A descriptive name (defaults to `"query"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of services `N`.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Instances are never empty; always `false`. Provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The services, indexed by [`ServiceId`].
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// The service with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range.
    pub fn service(&self, id: ServiceId) -> &Service {
        &self.services[id.index()]
    }

    /// Per-tuple processing cost `c_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn cost(&self, i: usize) -> f64 {
        self.services[i].cost()
    }

    /// Selectivity `σ_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn selectivity(&self, i: usize) -> f64 {
        self.services[i].selectivity()
    }

    /// Per-tuple transfer cost `t_{i,j}`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn transfer(&self, i: usize, j: usize) -> f64 {
        self.comm.get(i, j)
    }

    /// The communication matrix.
    pub fn comm(&self) -> &CommMatrix {
        &self.comm
    }

    /// Per-tuple cost of delivering final results from service `i` to the
    /// consumer (zero unless configured).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn sink_cost(&self, i: usize) -> f64 {
        self.sink[i]
    }

    /// All per-service sink delivery costs, indexed by service.
    ///
    /// Bulk accessor for consumers that snapshot the instance into flat
    /// arrays (e.g. the optimizer's
    /// [`SearchContext`](crate::bnb::SearchContext)).
    #[inline]
    pub fn sink_costs(&self) -> &[f64] {
        &self.sink
    }

    /// The precedence constraints, if any.
    pub fn precedence(&self) -> Option<&PrecedenceDag> {
        self.precedence.as_ref()
    }

    /// Whether any service has selectivity above one.
    pub fn has_proliferative(&self) -> bool {
        self.services.iter().any(Service::is_proliferative)
    }

    /// Whether any precedence constraint is present.
    pub fn has_precedence(&self) -> bool {
        self.precedence.as_ref().is_some_and(|p| !p.is_empty())
    }

    /// Product of all selectivities (the mean output tuples per input tuple
    /// of the whole pipeline, independent of ordering).
    pub fn selectivity_product(&self) -> f64 {
        self.services.iter().map(Service::selectivity).product()
    }

    /// A copy of this instance with every off-diagonal transfer cost
    /// replaced by `t` — the homogeneous-network relaxation solved exactly
    /// by Srivastava et al. (VLDB'06). Sink costs are preserved.
    pub fn with_uniform_comm(&self, t: f64) -> QueryInstance {
        QueryInstance {
            name: format!("{}-uniform", self.name),
            services: self.services.clone(),
            comm: CommMatrix::uniform(self.len(), t),
            sink: self.sink.clone(),
            precedence: self.precedence.clone(),
        }
    }
}

impl fmt::Display for QueryInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} services)", self.name, self.len())?;
        for (i, s) in self.services.iter().enumerate() {
            writeln!(f, "  WS{i}: {s}")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`QueryInstance`], validating on
/// [`build`](Self::build).
#[derive(Debug, Default)]
pub struct QueryInstanceBuilder {
    name: Option<String>,
    services: Vec<Service>,
    comm: Option<CommMatrix>,
    sink: Option<Vec<f64>>,
    precedence: Option<PrecedenceDag>,
}

impl QueryInstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        QueryInstanceBuilder::default()
    }

    /// Sets a descriptive name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Appends one service.
    pub fn service(mut self, service: Service) -> Self {
        self.services.push(service);
        self
    }

    /// Appends many services.
    pub fn services(mut self, services: impl IntoIterator<Item = Service>) -> Self {
        self.services.extend(services);
        self
    }

    /// Sets the communication matrix (required).
    pub fn comm(mut self, comm: CommMatrix) -> Self {
        self.comm = Some(comm);
        self
    }

    /// Sets per-service sink delivery costs (defaults to all zeros).
    pub fn sink(mut self, sink: Vec<f64>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Sets precedence constraints.
    pub fn precedence(mut self, precedence: PrecedenceDag) -> Self {
        self.precedence = Some(precedence);
        self
    }

    /// Validates and builds the instance.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyInstance`] — no services were added.
    /// * [`ModelError::DimensionMismatch`] — the communication matrix, sink
    ///   vector, or precedence DAG disagree with the service count, or the
    ///   matrix is missing.
    /// * [`ModelError::InvalidValue`] — a sink cost is NaN, infinite, or
    ///   negative.
    /// * [`ModelError::PrecedenceCycle`] — the precedence DAG has a cycle.
    pub fn build(self) -> Result<QueryInstance, ModelError> {
        let n = self.services.len();
        if n == 0 {
            return Err(ModelError::EmptyInstance);
        }
        let comm = self.comm.ok_or(ModelError::DimensionMismatch {
            what: "communication matrix",
            expected: n,
            found: 0,
        })?;
        if comm.len() != n {
            return Err(ModelError::DimensionMismatch {
                what: "communication matrix",
                expected: n,
                found: comm.len(),
            });
        }
        let sink = self.sink.unwrap_or_else(|| vec![0.0; n]);
        if sink.len() != n {
            return Err(ModelError::DimensionMismatch {
                what: "sink cost vector",
                expected: n,
                found: sink.len(),
            });
        }
        for &v in &sink {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidValue { what: "sink cost", value: v });
            }
        }
        if let Some(p) = &self.precedence {
            if p.len() != n {
                return Err(ModelError::DimensionMismatch {
                    what: "precedence DAG",
                    expected: n,
                    found: p.len(),
                });
            }
            p.validate()?;
        }
        Ok(QueryInstance {
            name: self.name.unwrap_or_else(|| "query".into()),
            services: self.services,
            comm,
            sink,
            precedence: self.precedence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_services() -> Vec<Service> {
        vec![Service::new(1.0, 0.5), Service::new(2.0, 1.5)]
    }

    #[test]
    fn builder_happy_path() {
        let inst = QueryInstance::builder()
            .name("demo")
            .services(two_services())
            .comm(CommMatrix::uniform(2, 0.3))
            .sink(vec![0.1, 0.2])
            .build()
            .unwrap();
        assert_eq!(inst.name(), "demo");
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.cost(0), 1.0);
        assert_eq!(inst.selectivity(1), 1.5);
        assert_eq!(inst.transfer(0, 1), 0.3);
        assert_eq!(inst.sink_cost(1), 0.2);
        assert!(inst.has_proliferative());
        assert!(!inst.has_precedence());
        assert!((inst.selectivity_product() - 0.75).abs() < 1e-12);
        assert_eq!(inst.service(ServiceId::new(0)).cost(), 1.0);
    }

    #[test]
    fn from_parts_defaults() {
        let inst = QueryInstance::from_parts(two_services(), CommMatrix::zeros(2)).unwrap();
        assert_eq!(inst.name(), "query");
        assert_eq!(inst.sink_cost(0), 0.0);
        assert!(!inst.is_empty());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            QueryInstance::builder().comm(CommMatrix::zeros(0)).build().unwrap_err(),
            ModelError::EmptyInstance
        );
    }

    #[test]
    fn missing_or_mismatched_matrix_rejected() {
        let err = QueryInstance::builder().services(two_services()).build().unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { what: "communication matrix", .. }));
        let err = QueryInstance::builder()
            .services(two_services())
            .comm(CommMatrix::zeros(3))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { found: 3, .. }));
    }

    #[test]
    fn sink_validation() {
        let base = || QueryInstance::builder().services(two_services()).comm(CommMatrix::zeros(2));
        let err = base().sink(vec![0.0]).build().unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { what: "sink cost vector", .. }));
        let err = base().sink(vec![0.0, -1.0]).build().unwrap_err();
        assert!(matches!(err, ModelError::InvalidValue { .. }));
    }

    #[test]
    fn precedence_validation() {
        let mut dag = PrecedenceDag::new(2).unwrap();
        dag.add_edge(0, 1).unwrap();
        let inst = QueryInstance::builder()
            .services(two_services())
            .comm(CommMatrix::zeros(2))
            .precedence(dag)
            .build()
            .unwrap();
        assert!(inst.has_precedence());

        let mut cyclic = PrecedenceDag::new(2).unwrap();
        cyclic.add_edge(0, 1).unwrap();
        cyclic.add_edge(1, 0).unwrap();
        let err = QueryInstance::builder()
            .services(two_services())
            .comm(CommMatrix::zeros(2))
            .precedence(cyclic)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::PrecedenceCycle);

        let wrong_size = PrecedenceDag::new(3).unwrap();
        let err = QueryInstance::builder()
            .services(two_services())
            .comm(CommMatrix::zeros(2))
            .precedence(wrong_size)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { what: "precedence DAG", .. }));
    }

    #[test]
    fn uniform_relaxation_replaces_comm() {
        let inst = QueryInstance::from_parts(
            two_services(),
            CommMatrix::from_rows(vec![vec![0.0, 5.0], vec![1.0, 0.0]]).unwrap(),
        )
        .unwrap();
        let uniform = inst.with_uniform_comm(3.0);
        assert_eq!(uniform.transfer(0, 1), 3.0);
        assert_eq!(uniform.transfer(1, 0), 3.0);
        assert_eq!(uniform.cost(0), inst.cost(0));
        assert!(uniform.name().ends_with("uniform"));
    }

    #[test]
    fn display_lists_services() {
        let inst = QueryInstance::from_parts(two_services(), CommMatrix::zeros(2)).unwrap();
        let text = inst.to_string();
        assert!(text.contains("2 services"));
        assert!(text.contains("WS0"));
        assert!(text.contains("WS1"));
    }
}
