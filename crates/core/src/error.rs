//! Error types for model construction and plan validation.

use std::error::Error;
use std::fmt;

/// Error raised while building or validating a query instance or plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Two components disagree on the number of services.
    DimensionMismatch {
        /// What was being checked (e.g. `"communication matrix"`).
        what: &'static str,
        /// The number of services the instance declares.
        expected: usize,
        /// The dimension actually found.
        found: usize,
    },
    /// A numeric parameter is NaN, infinite, or negative.
    InvalidValue {
        /// What was being checked (e.g. `"service cost"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An instance must contain at least one service.
    EmptyInstance,
    /// The precedence constraints contain a cycle.
    PrecedenceCycle,
    /// A precedence edge references itself.
    SelfPrecedence(usize),
    /// A precedence edge references a service outside the instance.
    PrecedenceOutOfRange {
        /// The offending service index.
        service: usize,
        /// The number of services in the instance.
        len: usize,
    },
    /// A plan is not a valid permutation of the instance's services.
    InvalidPlan(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DimensionMismatch { what, expected, found } => {
                write!(f, "{what} has dimension {found}, expected {expected}")
            }
            ModelError::InvalidValue { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
            ModelError::EmptyInstance => write!(f, "instance must contain at least one service"),
            ModelError::PrecedenceCycle => write!(f, "precedence constraints contain a cycle"),
            ModelError::SelfPrecedence(s) => {
                write!(f, "service {s} cannot precede itself")
            }
            ModelError::PrecedenceOutOfRange { service, len } => {
                write!(f, "precedence references service {service}, instance has {len}")
            }
            ModelError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e =
            ModelError::DimensionMismatch { what: "communication matrix", expected: 4, found: 3 };
        assert_eq!(e.to_string(), "communication matrix has dimension 3, expected 4");
        let e = ModelError::InvalidValue { what: "service cost", value: -1.0 };
        assert!(e.to_string().contains("service cost"));
        assert!(ModelError::EmptyInstance.to_string().contains("at least one"));
        assert!(ModelError::PrecedenceCycle.to_string().contains("cycle"));
        assert!(ModelError::SelfPrecedence(2).to_string().contains("service 2"));
        let e = ModelError::PrecedenceOutOfRange { service: 9, len: 4 };
        assert!(e.to_string().contains('9'));
        assert!(ModelError::InvalidPlan("dup".into()).to_string().contains("dup"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(ModelError::EmptyInstance);
    }
}
