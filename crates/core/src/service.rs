//! Services and service identifiers.

use std::fmt;

/// Index of a service within a [`QueryInstance`](crate::QueryInstance).
///
/// Service identifiers are dense indices `0..n`; they index the cost,
/// selectivity and communication structures directly.
///
/// # Examples
///
/// ```
/// use dsq_core::ServiceId;
///
/// let id = ServiceId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "WS3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(usize);

impl ServiceId {
    /// Creates an identifier from a dense index.
    pub fn new(index: usize) -> Self {
        ServiceId(index)
    }

    /// The dense index of this service.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WS{}", self.0)
    }
}

impl From<usize> for ServiceId {
    fn from(index: usize) -> Self {
        ServiceId(index)
    }
}

/// A web service participating in a pipelined query.
///
/// Following §2 of the paper, a service is characterized by
///
/// * its **cost** `c_i`: the mean time to process one input tuple, and
/// * its **selectivity** `σ_i`: the mean ratio of output to input tuples.
///   `σ < 1` models filtering services, `σ > 1` proliferative ones (e.g. a
///   lookup returning several credit-card numbers per person).
///
/// # Examples
///
/// ```
/// use dsq_core::Service;
///
/// let filter = Service::new(0.2, 0.5).with_name("payment-history-filter");
/// assert_eq!(filter.cost(), 0.2);
/// assert_eq!(filter.selectivity(), 0.5);
/// assert!(filter.is_selective());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Service {
    cost: f64,
    selectivity: f64,
    name: Option<String>,
}

impl Service {
    /// Creates a service with the given per-tuple cost and selectivity.
    ///
    /// # Panics
    ///
    /// Panics if either value is NaN, infinite, or negative — such values
    /// are programmer errors, not data conditions. Aggregate validation of
    /// whole instances goes through
    /// [`QueryInstanceBuilder`](crate::QueryInstanceBuilder) instead.
    pub fn new(cost: f64, selectivity: f64) -> Self {
        assert!(
            cost.is_finite() && cost >= 0.0,
            "service cost must be finite and non-negative, got {cost}"
        );
        assert!(
            selectivity.is_finite() && selectivity >= 0.0,
            "service selectivity must be finite and non-negative, got {selectivity}"
        );
        Service { cost, selectivity, name: None }
    }

    /// Attaches a human-readable name (used in displays and reports).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Mean per-tuple processing time `c_i`.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Mean output/input tuple ratio `σ_i`.
    pub fn selectivity(&self) -> f64 {
        self.selectivity
    }

    /// The service's name, if one was attached.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Whether the service filters tuples (`σ ≤ 1`).
    pub fn is_selective(&self) -> bool {
        self.selectivity <= 1.0
    }

    /// Whether the service produces more tuples than it consumes (`σ > 1`).
    pub fn is_proliferative(&self) -> bool {
        self.selectivity > 1.0
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(name) => write!(f, "{name}(c={}, σ={})", self.cost, self.selectivity),
            None => write!(f, "service(c={}, σ={})", self.cost, self.selectivity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let id = ServiceId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "WS7");
        assert_eq!(ServiceId::from(7), id);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ServiceId::new(1) < ServiceId::new(2));
    }

    #[test]
    fn service_accessors() {
        let s = Service::new(1.5, 0.25);
        assert_eq!(s.cost(), 1.5);
        assert_eq!(s.selectivity(), 0.25);
        assert_eq!(s.name(), None);
        assert!(s.is_selective());
        assert!(!s.is_proliferative());
    }

    #[test]
    fn proliferative_classification() {
        assert!(Service::new(0.0, 2.5).is_proliferative());
        assert!(Service::new(0.0, 1.0).is_selective());
        assert!(!Service::new(0.0, 1.0).is_proliferative());
    }

    #[test]
    fn named_display() {
        let s = Service::new(0.5, 0.8).with_name("card-lookup");
        assert_eq!(s.name(), Some("card-lookup"));
        assert!(s.to_string().starts_with("card-lookup"));
        let anon = Service::new(0.5, 0.8);
        assert!(anon.to_string().starts_with("service"));
    }

    #[test]
    #[should_panic(expected = "cost must be finite")]
    fn negative_cost_panics() {
        Service::new(-0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "selectivity must be finite")]
    fn nan_selectivity_panics() {
        Service::new(0.1, f64::NAN);
    }

    #[test]
    fn zero_selectivity_is_allowed() {
        // A service that filters out everything is legal (downstream terms
        // become zero under Eq. 1).
        let s = Service::new(0.1, 0.0);
        assert!(s.is_selective());
    }
}
