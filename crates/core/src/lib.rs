//! Optimal service ordering in decentralized pipelined queries.
//!
//! This crate implements the model and algorithm of
//!
//! > E. Tsamoura, A. Gounaris, Y. Manolopoulos. *Brief Announcement: On the
//! > Quest of Optimal Service Ordering in Decentralized Queries.* PODC 2010.
//!
//! A query is processed by a pipeline of web services, each on its own
//! host, each characterized by a per-tuple processing cost `c_i` and a
//! selectivity `σ_i`, with heterogeneous per-tuple transfer costs
//! `t_{i,j}` between hosts. The response time of a linear plan is governed
//! by its slowest stage — the **bottleneck cost metric** (Eq. 1, see
//! [`bottleneck_cost`]) — and the optimizer ([`optimize`]) finds the plan
//! minimizing it by a branch-and-bound search whose pruning rules are the
//! paper's three lemmas (see the [`bnb`] module docs for the lemma-to-code
//! map). The problem generalizes the bottleneck TSP and is NP-hard.
//!
//! # Quickstart
//!
//! ```
//! use dsq_core::{optimize, bottleneck_cost, CommMatrix, QueryInstance, Service};
//!
//! // Two services: an expensive proliferative lookup and a cheap filter,
//! // hosts 0.1s apart per tuple.
//! let instance = QueryInstance::builder()
//!     .service(Service::new(0.9, 3.0).with_name("card-lookup"))
//!     .service(Service::new(0.4, 0.5).with_name("history-filter"))
//!     .comm(CommMatrix::uniform(2, 0.1))
//!     .build()?;
//!
//! let result = optimize(&instance);
//! assert!(result.is_proven_optimal());
//! // Filtering first halves the load on the expensive lookup.
//! assert_eq!(result.plan().indices(), vec![1, 0]);
//! assert_eq!(result.cost(), bottleneck_cost(&instance, result.plan()));
//! # Ok::<(), dsq_core::ModelError>(())
//! ```
//!
//! # Crate layout
//!
//! * [`Service`], [`ServiceId`], [`CommMatrix`], [`PrecedenceDag`],
//!   [`QueryInstance`] — the problem model;
//! * [`Plan`], [`bottleneck_cost`], [`cost_terms`] — plans and the Eq. 1
//!   cost semantics;
//! * [`optimize`], [`optimize_with`], [`BnbConfig`], [`BnbResult`],
//!   [`SearchStats`] — the branch-and-bound optimizer and its ablation
//!   switches;
//! * [`BitSet`] — the small index set used throughout the search.
//!
//! Baseline algorithms (exhaustive, dynamic programming, greedy, the
//! uniform-communication optimum of Srivastava et al., local search,
//! simulated annealing) live in the companion `dsq-baselines` crate;
//! execution substrates (a discrete-event simulator and a threaded
//! runtime) in `dsq-simulator` and `dsq-runtime`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitset;
mod canonical;
mod comm;
mod cost;
mod error;
mod explain;
mod hash;
mod instance;
mod io;
mod plan;
mod precedence;
mod service;
mod snapshot;

pub mod bnb;

pub use bitset::BitSet;
pub use bnb::{optimize, optimize_parallel, optimize_with, BnbConfig, BnbResult, SearchStats};
pub use canonical::{CanonicalKey, Quantization};
pub use comm::CommMatrix;
pub use cost::{
    bottleneck_cost, bottleneck_position, cost_terms, predicted_throughput, sum_cost, CostTerm,
};
pub use error::ModelError;
pub use explain::{explain, PlanReport};
pub use hash::Fnv1a;
pub use instance::{QueryInstance, QueryInstanceBuilder};
pub use io::{format_instance, parse_instance, ParseInstanceError};
pub use plan::Plan;
pub use precedence::PrecedenceDag;
pub use service::{Service, ServiceId};
pub use snapshot::{PlanSnapshot, SnapshotEntry, SnapshotError, SNAPSHOT_HEADER};
