//! The bottleneck cost metric (Eq. 1 of the paper).
//!
//! Under pipelined decentralized execution each service is a single thread
//! that both processes tuples and transmits its output to the next service.
//! Per *query input tuple*, service `s_i` at position `i` of plan `S` is
//! busy for
//!
//! ```text
//! term(i) = (Π_{k<i} σ_{s_k}) · ( c_{s_i} + σ_{s_i} · t_{s_i, s_{i+1}} )
//! ```
//!
//! where the prefix product is the mean number of tuples reaching `s_i`
//! per input tuple. The pipeline's throughput is limited by its busiest
//! stage, so the response time per input tuple is
//!
//! ```text
//! cost(S) = max_i term(i)                                   (Eq. 1)
//! ```
//!
//! For the final position the "next service" is the result consumer; its
//! transfer cost is the instance's sink cost (zero by default).

use crate::instance::QueryInstance;
use crate::plan::Plan;
use crate::service::ServiceId;
use std::fmt;

/// The fully-expanded cost term of one plan position (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTerm {
    /// Position in the plan (0-based).
    pub position: usize,
    /// The service at this position.
    pub service: ServiceId,
    /// Mean tuples reaching this service per input tuple
    /// (`Π σ` of the predecessors).
    pub input_fraction: f64,
    /// Per-arriving-tuple processing time `c_i`.
    pub processing: f64,
    /// Per-arriving-tuple output transfer time `σ_i · t_{i,next}`.
    pub transfer: f64,
    /// The full term: `input_fraction · (processing + transfer)`.
    pub term: f64,
}

impl fmt::Display for CostTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}: {:.6} × ({:.6} + {:.6}) = {:.6}",
            self.position,
            self.service,
            self.input_fraction,
            self.processing,
            self.transfer,
            self.term
        )
    }
}

/// Computes the bottleneck cost (Eq. 1) of a complete plan.
///
/// # Panics
///
/// Panics if the plan's length differs from the instance's service count.
///
/// # Examples
///
/// ```
/// use dsq_core::{bottleneck_cost, CommMatrix, Plan, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(1.0, 0.5), Service::new(3.0, 1.0)],
///     CommMatrix::uniform(2, 2.0),
/// )?;
/// // Plan WS0 → WS1: max(1 + 0.5·2, 0.5·(3 + 0)) = max(2, 1.5) = 2
/// let plan = Plan::new(vec![0, 1])?;
/// assert_eq!(bottleneck_cost(&inst, &plan), 2.0);
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn bottleneck_cost(instance: &QueryInstance, plan: &Plan) -> f64 {
    fold_terms(instance, plan, 0.0, |acc, t| acc.max(t.term))
}

/// Computes every per-position cost term of a plan, in plan order.
///
/// The maximum of the returned terms equals [`bottleneck_cost`]; exposing
/// the breakdown supports diagnostics, reporting, and the experiment
/// harness (C-INTERMEDIATE).
///
/// # Panics
///
/// Panics if the plan's length differs from the instance's service count.
pub fn cost_terms(instance: &QueryInstance, plan: &Plan) -> Vec<CostTerm> {
    let mut out = Vec::with_capacity(plan.len());
    fold_terms(instance, plan, (), |(), t| out.push(t));
    out
}

/// The plan position whose term attains the bottleneck (earliest, if tied).
///
/// # Panics
///
/// Panics if the plan's length differs from the instance's service count.
pub fn bottleneck_position(instance: &QueryInstance, plan: &Plan) -> usize {
    // Strict `>` keeps the earliest position on ties; folding directly
    // avoids materializing the intermediate `Vec<CostTerm>`.
    fold_terms(instance, plan, (0, f64::NEG_INFINITY), |(best, best_term), t| {
        if t.term > best_term {
            (t.position, t.term)
        } else {
            (best, best_term)
        }
    })
    .0
}

/// Predicted steady-state throughput of the pipeline, in input tuples per
/// unit time: the reciprocal of the bottleneck cost (`∞` for zero-cost
/// plans).
///
/// # Panics
///
/// Panics if the plan's length differs from the instance's service count.
pub fn predicted_throughput(instance: &QueryInstance, plan: &Plan) -> f64 {
    1.0 / bottleneck_cost(instance, plan)
}

/// The *sum* cost metric: total busy time across all services per input
/// tuple. This is the objective of sequential (non-pipelined) execution and
/// is reported alongside Eq. 1 for contrast in the harness; the paper
/// optimizes only the bottleneck metric.
///
/// # Panics
///
/// Panics if the plan's length differs from the instance's service count.
pub fn sum_cost(instance: &QueryInstance, plan: &Plan) -> f64 {
    fold_terms(instance, plan, 0.0, |acc, t| acc + t.term)
}

fn fold_terms<A>(
    instance: &QueryInstance,
    plan: &Plan,
    init: A,
    mut f: impl FnMut(A, CostTerm) -> A,
) -> A {
    assert_eq!(
        plan.len(),
        instance.len(),
        "plan has {} services, instance has {}",
        plan.len(),
        instance.len()
    );
    let mut acc = init;
    let mut prefix = 1.0;
    let order = plan.services();
    for (position, &sid) in order.iter().enumerate() {
        let i = sid.index();
        let t_out = match order.get(position + 1) {
            Some(next) => instance.transfer(i, next.index()),
            None => instance.sink_cost(i),
        };
        let term = CostTerm {
            position,
            service: sid,
            input_fraction: prefix,
            processing: instance.cost(i),
            transfer: instance.selectivity(i) * t_out,
            term: prefix * (instance.cost(i) + instance.selectivity(i) * t_out),
        };
        acc = f(acc, term);
        prefix *= instance.selectivity(i);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommMatrix;
    use crate::service::Service;

    /// The worked example used throughout the crate tests:
    /// three services with distinct costs/selectivities and an asymmetric
    /// transfer matrix, hand-evaluated below.
    fn example() -> QueryInstance {
        QueryInstance::from_parts(
            vec![
                Service::new(2.0, 0.5),  // WS0
                Service::new(1.0, 2.0),  // WS1
                Service::new(4.0, 0.25), // WS2
            ],
            CommMatrix::from_rows(vec![
                vec![0.0, 1.0, 3.0],
                vec![2.0, 0.0, 0.5],
                vec![4.0, 6.0, 0.0],
            ])
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn hand_computed_plan_cost() {
        let inst = example();
        // Plan WS0 → WS1 → WS2:
        //   term0 = 1 · (2 + 0.5·t01) = 2 + 0.5·1 = 2.5
        //   term1 = 0.5 · (1 + 2·t12) = 0.5 · (1 + 1) = 1.0
        //   term2 = 0.5·2 · (4 + 0.25·0) = 1·4 = 4.0
        let plan = Plan::new(vec![0, 1, 2]).unwrap();
        assert!((bottleneck_cost(&inst, &plan) - 4.0).abs() < 1e-12);
        assert_eq!(bottleneck_position(&inst, &plan), 2);
        let terms = cost_terms(&inst, &plan);
        assert_eq!(terms.len(), 3);
        assert!((terms[0].term - 2.5).abs() < 1e-12);
        assert!((terms[1].term - 1.0).abs() < 1e-12);
        assert!((terms[2].term - 4.0).abs() < 1e-12);
        assert!((sum_cost(&inst, &plan) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn another_order_changes_cost() {
        let inst = example();
        // Plan WS2 → WS0 → WS1:
        //   term0 = 4 + 0.25·t20 = 4 + 1 = 5
        //   term1 = 0.25 · (2 + 0.5·t01) = 0.25 · 2.5 = 0.625
        //   term2 = 0.25·0.5 · (1 + 2·0) = 0.125
        let plan = Plan::new(vec![2, 0, 1]).unwrap();
        assert!((bottleneck_cost(&inst, &plan) - 5.0).abs() < 1e-12);
        assert_eq!(bottleneck_position(&inst, &plan), 0);
    }

    #[test]
    fn bottleneck_position_ties_resolve_to_earliest() {
        // σ ≡ 1, c ≡ 1, t ≡ 0, sinks 0: every term is exactly 1.0.
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 1.0), Service::new(1.0, 1.0), Service::new(1.0, 1.0)],
            CommMatrix::zeros(3),
        )
        .unwrap();
        let plan = Plan::new(vec![2, 0, 1]).unwrap();
        let terms = cost_terms(&inst, &plan);
        assert!(terms.iter().all(|t| (t.term - 1.0).abs() < 1e-15));
        assert_eq!(bottleneck_position(&inst, &plan), 0, "earliest tied position wins");

        // A tie strictly after a unique maximum must not displace it, and
        // a later tie of the maximum keeps the earlier occurrence.
        let inst = QueryInstance::builder()
            .services(vec![Service::new(1.0, 1.0), Service::new(3.0, 1.0), Service::new(3.0, 1.0)])
            .comm(CommMatrix::zeros(3))
            .build()
            .unwrap();
        let plan = Plan::new(vec![0, 1, 2]).unwrap();
        // terms = [1, 3, 3]: positions 1 and 2 tie at the bottleneck.
        assert_eq!(bottleneck_position(&inst, &plan), 1);
    }

    #[test]
    fn sink_costs_charge_the_final_service() {
        let inst = QueryInstance::builder()
            .services(vec![Service::new(1.0, 1.0), Service::new(1.0, 1.0)])
            .comm(CommMatrix::zeros(2))
            .sink(vec![10.0, 0.0])
            .build()
            .unwrap();
        // WS1 → WS0 ends at WS0 whose sink cost is 10.
        let plan = Plan::new(vec![1, 0]).unwrap();
        assert!((bottleneck_cost(&inst, &plan) - 11.0).abs() < 1e-12);
        // WS0 → WS1 ends at WS1 with sink 0.
        let plan = Plan::new(vec![0, 1]).unwrap();
        assert!((bottleneck_cost(&inst, &plan) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proliferative_prefix_amplifies() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 3.0), Service::new(2.0, 1.0)],
            CommMatrix::zeros(2),
        )
        .unwrap();
        // WS0 (σ=3) first triples the load on WS1: term1 = 3·2 = 6.
        let plan = Plan::new(vec![0, 1]).unwrap();
        assert!((bottleneck_cost(&inst, &plan) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_selectivity_silences_downstream() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 0.0), Service::new(100.0, 1.0)],
            CommMatrix::uniform(2, 5.0),
        )
        .unwrap();
        let plan = Plan::new(vec![0, 1]).unwrap();
        // term0 = 1 + 0·5 = 1; term1 = 0·(…) = 0.
        assert!((bottleneck_cost(&inst, &plan) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_service_plan() {
        let inst = QueryInstance::builder()
            .service(Service::new(2.5, 0.5))
            .comm(CommMatrix::zeros(1))
            .sink(vec![2.0])
            .build()
            .unwrap();
        let plan = Plan::new(vec![0]).unwrap();
        // 2.5 + 0.5·2 = 3.5
        assert!((bottleneck_cost(&inst, &plan) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_reciprocal() {
        let inst = example();
        let plan = Plan::new(vec![0, 1, 2]).unwrap();
        assert!((predicted_throughput(&inst, &plan) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn input_fractions_are_prefix_products() {
        let inst = example();
        let plan = Plan::new(vec![1, 0, 2]).unwrap();
        let terms = cost_terms(&inst, &plan);
        assert_eq!(terms[0].input_fraction, 1.0);
        assert_eq!(terms[1].input_fraction, 2.0); // σ of WS1
        assert_eq!(terms[2].input_fraction, 1.0); // 2.0 · 0.5
    }

    #[test]
    fn term_display_is_readable() {
        let inst = example();
        let plan = Plan::new(vec![0, 1, 2]).unwrap();
        let text = cost_terms(&inst, &plan)[0].to_string();
        assert!(text.contains("WS0"));
        assert!(text.contains('='));
    }

    #[test]
    #[should_panic(expected = "plan has")]
    fn mismatched_plan_panics() {
        let inst = example();
        let plan = Plan::new(vec![0, 1]).unwrap();
        bottleneck_cost(&inst, &plan);
    }
}
