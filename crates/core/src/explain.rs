//! Plan diagnostics: why a plan costs what it costs, and how fragile the
//! ordering is.
//!
//! [`explain`] expands a plan into a [`PlanReport`] — per-position terms,
//! utilizations relative to the bottleneck, the pipelining gain over
//! sequential execution, and the cost impact of every adjacent swap. The
//! report renders as an aligned text block for CLI and example output.

use crate::cost::{bottleneck_cost, cost_terms, sum_cost, CostTerm};
use crate::instance::QueryInstance;
use crate::plan::Plan;
use std::fmt;

/// A full diagnostic breakdown of one plan (see module docs).
#[derive(Debug, Clone)]
pub struct PlanReport {
    plan: Plan,
    terms: Vec<CostTerm>,
    cost: f64,
    sum: f64,
    adjacent_swaps: Vec<Option<f64>>,
}

impl PlanReport {
    /// The analysed plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The bottleneck cost (Eq. 1).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Total busy time across all services per input tuple (the
    /// sequential-execution cost).
    pub fn sum_cost(&self) -> f64 {
        self.sum
    }

    /// How much pipelining buys over sequential execution:
    /// `sum_cost / bottleneck`. Also the number of hosts that are doing
    /// useful work in steady state.
    pub fn pipelining_gain(&self) -> f64 {
        if self.cost == 0.0 {
            1.0
        } else {
            self.sum / self.cost
        }
    }

    /// Per-position cost terms, in plan order.
    pub fn terms(&self) -> &[CostTerm] {
        &self.terms
    }

    /// The position attaining the bottleneck (earliest on ties).
    pub fn bottleneck_position(&self) -> usize {
        let mut best = 0;
        for (i, t) in self.terms.iter().enumerate() {
            if t.term > self.terms[best].term {
                best = i;
            }
        }
        best
    }

    /// Utilization of each position relative to the bottleneck
    /// (`term / cost`, 1.0 at the bottleneck). Zero-cost plans report
    /// all-zero utilizations.
    pub fn utilizations(&self) -> Vec<f64> {
        self.terms.iter().map(|t| if self.cost == 0.0 { 0.0 } else { t.term / self.cost }).collect()
    }

    /// For each adjacent pair `(k, k+1)`: the plan's cost after swapping
    /// those two services, or `None` if the swap violates precedence.
    /// Values below [`cost`](Self::cost) indicate the plan is not even
    /// locally optimal.
    pub fn adjacent_swap_costs(&self) -> &[Option<f64>] {
        &self.adjacent_swaps
    }

    /// Whether no feasible adjacent swap improves the plan.
    pub fn is_adjacent_swap_optimal(&self) -> bool {
        self.adjacent_swaps
            .iter()
            .flatten()
            .all(|&c| c >= self.cost - 1e-12 * self.cost.abs().max(1.0))
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan {}", self.plan)?;
        writeln!(
            f,
            "bottleneck cost {:.6} (position {}), sequential cost {:.6}, pipelining gain {:.2}×",
            self.cost,
            self.bottleneck_position(),
            self.sum,
            self.pipelining_gain()
        )?;
        let utilizations = self.utilizations();
        for (term, util) in self.terms.iter().zip(utilizations) {
            let bar_len = (util * 30.0).round() as usize;
            writeln!(
                f,
                "  #{:<3}{:<6} term {:>10.6}  {:>5.1}% |{:<30}|",
                term.position,
                term.service.to_string(),
                term.term,
                util * 100.0,
                "█".repeat(bar_len)
            )?;
        }
        Ok(())
    }
}

/// Builds a [`PlanReport`] for the plan on the instance.
///
/// # Panics
///
/// Panics if the plan's length differs from the instance's service count.
///
/// # Examples
///
/// ```
/// use dsq_core::{explain, CommMatrix, Plan, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(1.0, 0.5), Service::new(4.0, 1.0)],
///     CommMatrix::uniform(2, 0.0),
/// )?;
/// let report = explain(&inst, &Plan::new(vec![0, 1])?);
/// assert_eq!(report.bottleneck_position(), 1); // 0.5 · 4.0 = 2.0 > 1.0
/// assert!(report.is_adjacent_swap_optimal());  // swapping gives cost 4.0
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn explain(instance: &QueryInstance, plan: &Plan) -> PlanReport {
    let terms = cost_terms(instance, plan);
    let cost = bottleneck_cost(instance, plan);
    let sum = sum_cost(instance, plan);
    let order = plan.indices();
    let adjacent_swaps = (0..order.len().saturating_sub(1))
        .map(|k| {
            let mut swapped = order.clone();
            swapped.swap(k, k + 1);
            let feasible = match instance.precedence() {
                Some(dag) => dag.is_feasible_order(&swapped),
                None => true,
            };
            feasible.then(|| {
                let plan = Plan::new(swapped).expect("swap preserves permutations");
                bottleneck_cost(instance, &plan)
            })
        })
        .collect();
    PlanReport { plan: plan.clone(), terms, cost, sum, adjacent_swaps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommMatrix;
    use crate::precedence::PrecedenceDag;
    use crate::service::Service;

    fn instance() -> QueryInstance {
        QueryInstance::from_parts(
            vec![Service::new(2.0, 0.5), Service::new(1.0, 1.0), Service::new(4.0, 0.25)],
            CommMatrix::uniform(3, 0.5),
        )
        .expect("valid")
    }

    #[test]
    fn report_matches_direct_computation() {
        let inst = instance();
        let plan = Plan::new(vec![0, 1, 2]).expect("permutation");
        let report = explain(&inst, &plan);
        assert_eq!(report.cost(), bottleneck_cost(&inst, &plan));
        assert_eq!(report.sum_cost(), sum_cost(&inst, &plan));
        assert_eq!(report.terms().len(), 3);
        assert_eq!(report.plan(), &plan);
        assert!(report.pipelining_gain() >= 1.0);
    }

    #[test]
    fn utilizations_peak_at_the_bottleneck() {
        let inst = instance();
        let report = explain(&inst, &Plan::new(vec![0, 1, 2]).expect("permutation"));
        let utils = report.utilizations();
        let b = report.bottleneck_position();
        assert!((utils[b] - 1.0).abs() < 1e-12);
        for u in utils {
            assert!(u <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn adjacent_swaps_are_evaluated() {
        let inst = instance();
        let plan = Plan::new(vec![2, 1, 0]).expect("permutation");
        let report = explain(&inst, &plan);
        assert_eq!(report.adjacent_swap_costs().len(), 2);
        for (k, swap) in report.adjacent_swap_costs().iter().enumerate() {
            let cost = swap.expect("no precedence, all swaps feasible");
            let mut order = plan.indices();
            order.swap(k, k + 1);
            let expected = bottleneck_cost(&inst, &Plan::new(order).expect("permutation"));
            assert_eq!(cost, expected);
        }
    }

    #[test]
    fn optimal_plan_is_swap_optimal() {
        let inst = instance();
        let best = crate::bnb::optimize(&inst);
        let report = explain(&inst, best.plan());
        assert!(report.is_adjacent_swap_optimal());
    }

    #[test]
    fn precedence_blocks_infeasible_swaps() {
        let mut dag = PrecedenceDag::new(3).expect("n > 0");
        dag.add_edge(0, 1).expect("valid");
        let inst = QueryInstance::builder()
            .services(vec![Service::new(1.0, 1.0), Service::new(1.0, 1.0), Service::new(1.0, 1.0)])
            .comm(CommMatrix::zeros(3))
            .precedence(dag)
            .build()
            .expect("valid");
        let report = explain(&inst, &Plan::new(vec![0, 1, 2]).expect("permutation"));
        assert_eq!(report.adjacent_swap_costs()[0], None, "0↔1 violates the edge");
        assert!(report.adjacent_swap_costs()[1].is_some());
    }

    #[test]
    fn display_contains_bars_and_positions() {
        let inst = instance();
        let report = explain(&inst, &Plan::new(vec![0, 1, 2]).expect("permutation"));
        let text = report.to_string();
        assert!(text.contains("bottleneck cost"));
        assert!(text.contains("#0"));
        assert!(text.contains('█'));
    }

    #[test]
    fn zero_cost_plan_is_handled() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.0, 1.0), Service::new(0.0, 1.0)],
            CommMatrix::zeros(2),
        )
        .expect("valid");
        let report = explain(&inst, &Plan::new(vec![0, 1]).expect("permutation"));
        assert_eq!(report.cost(), 0.0);
        assert_eq!(report.pipelining_gain(), 1.0);
        assert!(report.utilizations().iter().all(|&u| u == 0.0));
    }
}
