//! The workspace's one stable (non-cryptographic) hash.
//!
//! FNV-1a, 64-bit. Used wherever a value must map to the **same** 64-bit
//! word across runs, processes, and refactors: instance fingerprints
//! ([`CanonicalKey`](crate::CanonicalKey)), workload-family seed
//! derivation, and the determinism regression tests that pin generator
//! output. Keeping one implementation means a change to the construction
//! is a single, loud, deliberate event (it invalidates every pinned
//! fingerprint) instead of three copies silently diverging.

/// An incremental 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use dsq_core::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_u64(7);
/// h.write_str("stable");
/// let first = h.finish();
/// let mut again = Fnv1a::new();
/// again.write_u64(7);
/// again.write_str("stable");
/// assert_eq!(first, again.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Absorbs a word as its little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a signed word as its little-endian bytes.
    pub fn write_i64(&mut self, value: i64) {
        self.write_u64(value as u64)
    }

    /// Absorbs a float's exact bit pattern (so `-0.0 != 0.0`; callers
    /// hashing semantically rather than bytewise should normalize first).
    pub fn write_f64_bits(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Absorbs a string's UTF-8 bytes.
    pub fn write_str(&mut self, value: &str) {
        self.write_bytes(value.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Classic FNV-1a test vectors.
        let mut empty = Fnv1a::new();
        assert_eq!(empty.finish(), 0xcbf29ce484222325);
        empty.write_str("a");
        assert_eq!(empty.finish(), 0xaf63dc4c8601ec8c);
        let mut foobar = Fnv1a::new();
        foobar.write_str("foobar");
        assert_eq!(foobar.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn write_views_agree_with_write_bytes() {
        let mut via_u64 = Fnv1a::new();
        via_u64.write_u64(0x0807060504030201);
        let mut via_bytes = Fnv1a::new();
        via_bytes.write_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(via_u64.finish(), via_bytes.finish());
        let mut via_f64 = Fnv1a::new();
        via_f64.write_f64_bits(1.5);
        let mut via_word = Fnv1a::new();
        via_word.write_u64(1.5f64.to_bits());
        assert_eq!(via_f64.finish(), via_word.finish());
        let mut negative = Fnv1a::new();
        negative.write_i64(-1);
        let mut wrapped = Fnv1a::new();
        wrapped.write_u64(u64::MAX);
        assert_eq!(negative.finish(), wrapped.finish());
    }
}
