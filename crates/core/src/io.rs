//! A plain-text instance format, for saving experiment inputs and feeding
//! the `dsq` command-line tool without pulling in a serialization
//! dependency.
//!
//! # Format
//!
//! Line-oriented, whitespace-separated, `#` starts a comment:
//!
//! ```text
//! dsq-instance v1
//! name credit-screening
//! n 3
//! service 0 0.4 0.55 region-filter      # idx cost selectivity [name…]
//! service 1 2.5 2.4 card-lookup
//! service 2 1.8 0.35
//! row 0 0.0 0.6 1.2                     # transfer costs t[0][j]
//! row 1 0.6 0.0 0.5
//! row 2 1.2 0.5 0.0
//! sink 0.0 0.0 0.0                      # optional; defaults to zeros
//! edge 0 2                              # optional precedence: 0 before 2
//! ```

use crate::comm::CommMatrix;
use crate::error::ModelError;
use crate::instance::QueryInstance;
use crate::precedence::PrecedenceDag;
use crate::service::Service;
use std::error::Error;
use std::fmt;

/// Error raised by [`parse_instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseInstanceError {
    /// The header line is missing or names an unknown version.
    BadHeader,
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A required section is missing.
    MissingSection(&'static str),
    /// The parsed pieces fail model validation.
    Invalid(ModelError),
}

impl fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseInstanceError::BadHeader => {
                write!(f, "expected header line `dsq-instance v1`")
            }
            ParseInstanceError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseInstanceError::MissingSection(s) => write!(f, "missing section: {s}"),
            ParseInstanceError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl Error for ParseInstanceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseInstanceError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ParseInstanceError {
    fn from(e: ModelError) -> Self {
        ParseInstanceError::Invalid(e)
    }
}

/// Renders an instance in the text format (see module docs).
///
/// The output round-trips through [`parse_instance`]; names containing
/// whitespace are preserved (the name is everything after the third
/// field).
pub fn format_instance(instance: &QueryInstance) -> String {
    let n = instance.len();
    let mut out = String::from("dsq-instance v1\n");
    out.push_str(&format!("name {}\n", instance.name()));
    out.push_str(&format!("n {n}\n"));
    for (i, s) in instance.services().iter().enumerate() {
        match s.name() {
            Some(name) => {
                out.push_str(&format!("service {i} {} {} {name}\n", s.cost(), s.selectivity()))
            }
            None => out.push_str(&format!("service {i} {} {}\n", s.cost(), s.selectivity())),
        }
    }
    for i in 0..n {
        out.push_str(&format!("row {i}"));
        for j in 0..n {
            out.push_str(&format!(" {}", instance.transfer(i, j)));
        }
        out.push('\n');
    }
    if (0..n).any(|i| instance.sink_cost(i) != 0.0) {
        out.push_str("sink");
        for i in 0..n {
            out.push_str(&format!(" {}", instance.sink_cost(i)));
        }
        out.push('\n');
    }
    if let Some(dag) = instance.precedence() {
        for &(a, b) in dag.edges() {
            out.push_str(&format!("edge {a} {b}\n"));
        }
    }
    out
}

/// Parses the text format (see module docs).
///
/// # Errors
///
/// Returns [`ParseInstanceError`] describing the offending line or the
/// model-validation failure.
pub fn parse_instance(text: &str) -> Result<QueryInstance, ParseInstanceError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    match lines.next() {
        Some((_, "dsq-instance v1")) => {}
        _ => return Err(ParseInstanceError::BadHeader),
    }

    let mut name: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut services: Vec<Option<Service>> = Vec::new();
    let mut rows: Vec<Option<Vec<f64>>> = Vec::new();
    let mut sink: Option<Vec<f64>> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();

    let malformed = |line: usize, reason: &str| ParseInstanceError::Malformed {
        line,
        reason: reason.to_string(),
    };

    for (lineno, line) in lines {
        let mut fields = line.split_whitespace();
        let keyword = fields.next().expect("non-empty line has a first field");
        match keyword {
            "name" => {
                let rest = line["name".len()..].trim();
                if rest.is_empty() {
                    return Err(malformed(lineno, "name requires a value"));
                }
                name = Some(rest.to_string());
            }
            "n" => {
                let v: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| malformed(lineno, "n requires a positive integer"))?;
                n = Some(v);
                services.resize(v, None);
                rows.resize(v, None);
            }
            "service" => {
                let count = n.ok_or_else(|| malformed(lineno, "`n` must come before `service`"))?;
                let idx: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .filter(|&i| i < count)
                    .ok_or_else(|| malformed(lineno, "service index out of range"))?;
                let cost: f64 = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .filter(|c: &f64| c.is_finite() && *c >= 0.0)
                    .ok_or_else(|| malformed(lineno, "bad service cost"))?;
                let sel: f64 = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .ok_or_else(|| malformed(lineno, "bad service selectivity"))?;
                let rest: Vec<&str> = fields.collect();
                let mut service = Service::new(cost, sel);
                if !rest.is_empty() {
                    service = service.with_name(rest.join(" "));
                }
                services[idx] = Some(service);
            }
            "row" => {
                let count = n.ok_or_else(|| malformed(lineno, "`n` must come before `row`"))?;
                let idx: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .filter(|&i| i < count)
                    .ok_or_else(|| malformed(lineno, "row index out of range"))?;
                let values: Vec<f64> = fields
                    .map(|f| f.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| malformed(lineno, "bad transfer cost"))?;
                if values.len() != count {
                    return Err(malformed(lineno, "row width must equal n"));
                }
                rows[idx] = Some(values);
            }
            "sink" => {
                let count = n.ok_or_else(|| malformed(lineno, "`n` must come before `sink`"))?;
                let values: Vec<f64> = fields
                    .map(|f| f.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| malformed(lineno, "bad sink cost"))?;
                if values.len() != count {
                    return Err(malformed(lineno, "sink width must equal n"));
                }
                sink = Some(values);
            }
            "edge" => {
                let a: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge endpoint"))?;
                let b: usize = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| malformed(lineno, "bad edge endpoint"))?;
                edges.push((a, b));
            }
            other => {
                return Err(malformed(lineno, &format!("unknown keyword `{other}`")));
            }
        }
    }

    let count = n.ok_or(ParseInstanceError::MissingSection("n"))?;
    let services: Vec<Service> = services
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.ok_or(ParseInstanceError::MissingSection("service")).map_err(|_| {
                ParseInstanceError::Malformed {
                    line: 0,
                    reason: format!("service {i} was never declared"),
                }
            })
        })
        .collect::<Result<_, _>>()?;
    let rows: Vec<Vec<f64>> = rows
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.ok_or(ParseInstanceError::Malformed {
                line: 0,
                reason: format!("row {i} was never declared"),
            })
        })
        .collect::<Result<_, _>>()?;

    let mut builder = QueryInstance::builder()
        .name(name.unwrap_or_else(|| "query".into()))
        .services(services)
        .comm(CommMatrix::from_rows(rows).map_err(ParseInstanceError::Invalid)?);
    if let Some(sink) = sink {
        builder = builder.sink(sink);
    }
    if !edges.is_empty() {
        let mut dag = PrecedenceDag::new(count)?;
        for (a, b) in edges {
            dag.add_edge(a, b)?;
        }
        builder = builder.precedence(dag);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryInstance {
        let mut dag = PrecedenceDag::new(3).expect("n > 0");
        dag.add_edge(0, 2).expect("valid edge");
        QueryInstance::builder()
            .name("sample query")
            .service(Service::new(0.5, 0.8).with_name("region filter"))
            .service(Service::new(1.25, 2.0))
            .service(Service::new(0.0, 1.0).with_name("sinkish"))
            .comm(CommMatrix::from_fn(3, |i, j| (i * 3 + j) as f64 * 0.5))
            .sink(vec![0.0, 0.25, 0.0])
            .precedence(dag)
            .build()
            .expect("valid")
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample();
        let text = format_instance(&original);
        let parsed = parse_instance(&text).expect("round trip parses");
        assert_eq!(parsed, original);
    }

    #[test]
    fn round_trip_without_optional_sections() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 0.5), Service::new(2.0, 1.5)],
            CommMatrix::uniform(2, 0.25),
        )
        .expect("valid");
        let text = format_instance(&inst);
        assert!(!text.contains("sink"), "zero sinks are omitted");
        assert!(!text.contains("edge"));
        assert_eq!(parse_instance(&text).expect("parses"), inst);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "dsq-instance v1\n\n# a comment\nname t\nn 1\nservice 0 1.0 0.5 # trailing\nrow 0 0.0\n";
        let inst = parse_instance(text).expect("parses");
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.cost(0), 1.0);
    }

    #[test]
    fn header_is_required() {
        assert_eq!(parse_instance("name x\n"), Err(ParseInstanceError::BadHeader));
        assert_eq!(parse_instance(""), Err(ParseInstanceError::BadHeader));
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text =
            "dsq-instance v1\nn 2\nservice 0 1.0 0.5\nservice 1 -3 0.5\nrow 0 0 0\nrow 1 0 0\n";
        match parse_instance(text) {
            Err(ParseInstanceError::Malformed { line, reason }) => {
                assert_eq!(line, 4);
                assert!(reason.contains("cost"));
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn missing_pieces_are_reported() {
        let text = "dsq-instance v1\nn 2\nservice 0 1.0 0.5\nservice 1 1.0 0.5\nrow 0 0 0\n";
        assert!(matches!(
            parse_instance(text),
            Err(ParseInstanceError::Malformed { reason, .. }) if reason.contains("row 1")
        ));
        let text = "dsq-instance v1\nname x\n";
        assert_eq!(parse_instance(text), Err(ParseInstanceError::MissingSection("n")));
    }

    #[test]
    fn unknown_keywords_are_rejected() {
        let text = "dsq-instance v1\nn 1\nservice 0 1 1\nrow 0 0\nbogus 3\n";
        assert!(matches!(
            parse_instance(text),
            Err(ParseInstanceError::Malformed { reason, .. }) if reason.contains("bogus")
        ));
    }

    #[test]
    fn cyclic_edges_fail_validation() {
        let text = "dsq-instance v1\nn 2\nservice 0 1 1\nservice 1 1 1\nrow 0 0 1\nrow 1 1 0\nedge 0 1\nedge 1 0\n";
        assert!(matches!(
            parse_instance(text),
            Err(ParseInstanceError::Invalid(ModelError::PrecedenceCycle))
        ));
    }

    #[test]
    fn row_width_is_checked() {
        let text = "dsq-instance v1\nn 2\nservice 0 1 1\nservice 1 1 1\nrow 0 0 1 2\nrow 1 1 0\n";
        assert!(matches!(
            parse_instance(text),
            Err(ParseInstanceError::Malformed { reason, .. }) if reason.contains("width")
        ));
    }

    #[test]
    fn error_display_and_source() {
        let e = ParseInstanceError::Invalid(ModelError::EmptyInstance);
        assert!(e.to_string().contains("invalid instance"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ParseInstanceError::BadHeader.to_string().contains("dsq-instance"));
    }
}
