//! Instance canonicalization and fingerprinting for the serving layer.
//!
//! Production federated workloads re-optimize near-identical queries
//! constantly: the same pipeline of services, with cost / selectivity /
//! transfer statistics that drift slowly between requests. A plan cache
//! keyed on the *exact* floating-point parameters would never hit; this
//! module derives a **fingerprint** that is stable under (a) small
//! relative drift of every numeric parameter and (b) trivial relabelings
//! of the services, while retaining enough structure that two instances
//! sharing a fingerprint almost always share an optimal ordering.
//!
//! Two pieces:
//!
//! * [`Quantization`] — maps every strictly positive parameter to a
//!   logarithmic bucket index `round(ln v / ln(1 + r))`, so values within
//!   the relative resolution `r` of each other (usually) share a bucket.
//!   Zero gets a dedicated sentinel bucket.
//! * [`CanonicalKey`] — a **sort-normalized** view of the instance: the
//!   services are reordered by a label-independent key (quantized cost,
//!   selectivity, sink, and the sorted multisets of quantized outgoing /
//!   incoming transfer buckets), and the fingerprint hashes the quantized
//!   parameters in that canonical order. Relabeling the services permutes
//!   the canonical order back to the same sequence, so exact relabels
//!   collide (whenever the per-service keys are distinct — ties fall back
//!   to original-index order, a deliberate approximation: canonical graph
//!   labeling is as hard as graph isomorphism).
//!
//! The key also retains the permutation between original and canonical
//! index spaces, so a plan computed for one instance can be transported
//! to any other instance with the same fingerprint
//! ([`CanonicalKey::plan_to_canonical`] /
//! [`CanonicalKey::plan_from_canonical`]). Bucketing is deliberately
//! lossy: consumers (the `dsq-service` plan cache) must validate a
//! transported plan against the **exact** instance before trusting it.

use crate::hash::Fnv1a;
use crate::instance::QueryInstance;
use crate::plan::Plan;

/// Relative quantization used when fingerprinting instance parameters.
///
/// Passive parameter struct; the single knob is the relative bucket
/// width. Two values `a, b > 0` share a bucket whenever their ratio is
/// within roughly `1 ± resolution` (up to boundary effects).
///
/// # Examples
///
/// ```
/// use dsq_core::Quantization;
///
/// let q = Quantization::default();
/// assert_eq!(q.bucket(1.0), q.bucket(1.01));
/// assert_ne!(q.bucket(1.0), q.bucket(2.0));
/// assert_ne!(q.bucket(0.0), q.bucket(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantization {
    /// Relative bucket width; e.g. `0.05` buckets values into ~5% bands.
    pub resolution: f64,
}

impl Default for Quantization {
    /// 5% relative buckets — wide enough that per-request statistical
    /// drift usually stays inside one bucket, narrow enough that plans
    /// rarely change within a bucket.
    fn default() -> Self {
        Quantization { resolution: 0.05 }
    }
}

impl Quantization {
    /// A quantization with the given relative resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < resolution < 1` and finite.
    pub fn new(resolution: f64) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0 && resolution < 1.0,
            "quantization resolution must be in (0, 1), got {resolution}"
        );
        Quantization { resolution }
    }

    /// The logarithmic bucket index of a non-negative value. Zero maps to
    /// a dedicated sentinel bucket that no positive value can reach.
    pub fn bucket(&self, value: f64) -> i64 {
        debug_assert!(value.is_finite() && value >= 0.0, "parameters are finite non-negative");
        if value == 0.0 {
            return i64::MIN;
        }
        // ln(1+r) is strictly positive for r in (0,1); the ratio is finite
        // for every positive finite input, so the cast cannot overflow for
        // model-validated parameters.
        (value.ln() / (1.0 + self.resolution).ln()).round() as i64
    }
}

/// The canonical (sort-normalized, quantized) identity of a
/// [`QueryInstance`]: a 64-bit fingerprint plus the permutation between
/// original and canonical service indices.
///
/// # Examples
///
/// ```
/// use dsq_core::{CanonicalKey, CommMatrix, Quantization, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(1.0, 0.5), Service::new(2.0, 0.9)],
///     CommMatrix::uniform(2, 0.1),
/// )?;
/// // A 0.3% drift of one cost stays inside the default 5% buckets.
/// let drifted = QueryInstance::from_parts(
///     vec![Service::new(1.003, 0.5), Service::new(2.0, 0.9)],
///     CommMatrix::uniform(2, 0.1),
/// )?;
/// let q = Quantization::default();
/// assert_eq!(
///     CanonicalKey::new(&inst, &q).fingerprint(),
///     CanonicalKey::new(&drifted, &q).fingerprint(),
/// );
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalKey {
    fingerprint: u64,
    /// `from_canonical[c]` = original index of canonical position `c`.
    from_canonical: Vec<u32>,
    /// `to_canonical[o]` = canonical position of original index `o`.
    to_canonical: Vec<u32>,
}

impl CanonicalKey {
    /// Canonicalizes and fingerprints an instance under the given
    /// quantization.
    pub fn new(instance: &QueryInstance, quantization: &Quantization) -> Self {
        Self::with_phase(instance, quantization, 0.0)
    }

    /// Like [`CanonicalKey::new`], but with the bucket grid shifted by
    /// `phase` buckets (in log space): the bucket of a positive value
    /// becomes `round(ln v / ln(1 + r) − phase)`.
    ///
    /// A value drifting across a boundary of the unshifted grid sits at
    /// the **center** of the grid shifted by `0.5`, so a cache that
    /// probes both grids keeps a stable key for a parameter that walks
    /// back and forth over one boundary (multi-probe lookup). Keys with
    /// different phases never share a fingerprint: the phase is hashed
    /// in, giving each grid its own keyspace.
    ///
    /// # Panics
    ///
    /// Panics unless `phase` is finite and in `[0, 1)`.
    pub fn with_phase(instance: &QueryInstance, quantization: &Quantization, phase: f64) -> Self {
        assert!(
            phase.is_finite() && (0.0..1.0).contains(&phase),
            "grid phase must be in [0, 1), got {phase}"
        );
        let n = instance.len();
        // Quantize every parameter exactly once into flat arrays: the
        // `ln` behind each bucket dominates the fingerprint cost on the
        // serving hot path, so the divisor is hoisted and no parameter
        // is bucketed twice (the sort keys and the hash below both read
        // these arrays).
        let inv_ln_step = 1.0 / (1.0 + quantization.resolution).ln();
        let bucket = |value: f64| -> i64 {
            debug_assert!(value.is_finite() && value >= 0.0);
            if value == 0.0 {
                i64::MIN
            } else {
                (value.ln() * inv_ln_step - phase).round() as i64
            }
        };
        let scalars: Vec<i64> = (0..n)
            .flat_map(|i| {
                [
                    bucket(instance.cost(i)),
                    bucket(instance.selectivity(i)),
                    bucket(instance.sink_cost(i)),
                ]
            })
            .collect();
        let mut transfers = vec![0i64; n * n];
        for i in 0..n {
            for (j, slot) in transfers[i * n..(i + 1) * n].iter_mut().enumerate() {
                if i != j {
                    *slot = bucket(instance.transfer(i, j));
                }
            }
        }

        // Per-service, label-independent sort key: quantized scalar
        // parameters plus the sorted multisets of outgoing and incoming
        // transfer buckets. Ties (identical keys) fall back to original
        // index order — canonicalization is best-effort for relabels.
        let mut keys: Vec<(Vec<i64>, usize)> = (0..n)
            .map(|i| {
                let mut key = Vec::with_capacity(3 + 2 * n.saturating_sub(1));
                key.extend_from_slice(&scalars[3 * i..3 * i + 3]);
                let row_start = key.len();
                key.extend((0..n).filter(|&j| j != i).map(|j| transfers[i * n + j]));
                key[row_start..].sort_unstable();
                let col_start = key.len();
                key.extend((0..n).filter(|&j| j != i).map(|j| transfers[j * n + i]));
                key[col_start..].sort_unstable();
                (key, i)
            })
            .collect();
        keys.sort();

        let from_canonical: Vec<u32> = keys.iter().map(|(_, i)| *i as u32).collect();
        let mut to_canonical = vec![0u32; n];
        for (c, &o) in from_canonical.iter().enumerate() {
            to_canonical[o as usize] = c as u32;
        }

        // FNV-1a over the quantized parameters in canonical order.
        let mut h = Fnv1a::new();
        h.write_u64(n as u64);
        // Different resolutions (and grid phases) must not share a
        // keyspace.
        h.write_u64(quantization.resolution.to_bits());
        h.write_u64(phase.to_bits());
        for &o in &from_canonical {
            let o = o as usize;
            h.write_i64(scalars[3 * o]);
            h.write_i64(scalars[3 * o + 1]);
            h.write_i64(scalars[3 * o + 2]);
        }
        for &a in &from_canonical {
            for &b in &from_canonical {
                if a != b {
                    h.write_i64(transfers[a as usize * n + b as usize]);
                }
            }
        }
        if let Some(dag) = instance.precedence() {
            let mut edges: Vec<(u32, u32)> =
                dag.edges().iter().map(|&(a, b)| (to_canonical[a], to_canonical[b])).collect();
            edges.sort_unstable();
            for (a, b) in edges {
                h.write_u64(((u64::from(a)) << 32) | u64::from(b));
            }
        }

        CanonicalKey { fingerprint: h.finish(), from_canonical, to_canonical }
    }

    /// The 64-bit fingerprint: equal for instances whose quantized
    /// canonical forms coincide.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of services in the fingerprinted instance.
    pub fn len(&self) -> usize {
        self.from_canonical.len()
    }

    /// Keys are never empty (instances aren't); always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transports a plan over the original instance into canonical index
    /// space (the representation a plan cache should store).
    ///
    /// # Panics
    ///
    /// Panics if the plan length disagrees with the key.
    pub fn plan_to_canonical(&self, plan: &Plan) -> Vec<u32> {
        assert_eq!(plan.len(), self.len(), "plan and key disagree on the service count");
        plan.services().iter().map(|s| self.to_canonical[s.index()]).collect()
    }

    /// Transports a canonical-space plan back into this instance's
    /// original labels.
    ///
    /// # Errors
    ///
    /// Returns `None` if the canonical order has the wrong length or is
    /// not a permutation (e.g. it came from a colliding fingerprint of a
    /// different-sized instance — callers treat that as a cache miss).
    pub fn plan_from_canonical(&self, canonical: &[u32]) -> Option<Plan> {
        if canonical.len() != self.len() {
            return None;
        }
        let order: Option<Vec<usize>> = canonical
            .iter()
            .map(|&c| self.from_canonical.get(c as usize).map(|&o| o as usize))
            .collect();
        Plan::new(order?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommMatrix;
    use crate::precedence::PrecedenceDag;
    use crate::service::Service;

    fn demo_instance() -> QueryInstance {
        QueryInstance::builder()
            .services(vec![Service::new(1.0, 0.5), Service::new(2.5, 0.9), Service::new(0.3, 0.2)])
            .comm(
                CommMatrix::from_rows(vec![
                    vec![0.0, 0.4, 1.1],
                    vec![0.6, 0.0, 0.9],
                    vec![1.3, 0.2, 0.0],
                ])
                .unwrap(),
            )
            .sink(vec![0.1, 0.0, 0.25])
            .build()
            .unwrap()
    }

    /// Relabels an instance: new index `k` hosts old service `perm[k]`.
    fn relabel(inst: &QueryInstance, perm: &[usize]) -> QueryInstance {
        let n = inst.len();
        QueryInstance::builder()
            .services(perm.iter().map(|&o| inst.services()[o].clone()))
            .comm(CommMatrix::from_fn(n, |i, j| inst.transfer(perm[i], perm[j])))
            .sink(perm.iter().map(|&o| inst.sink_cost(o)).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn buckets_are_relative() {
        let q = Quantization::new(0.1);
        assert_eq!(q.bucket(100.0), q.bucket(101.0));
        assert_ne!(q.bucket(100.0), q.bucket(150.0));
        // The same absolute delta far down the scale lands elsewhere.
        assert_ne!(q.bucket(0.001), q.bucket(3.001));
        assert_eq!(q.bucket(0.0), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "resolution must be in (0, 1)")]
    fn zero_resolution_rejected() {
        Quantization::new(0.0);
    }

    #[test]
    fn fingerprint_is_deterministic_and_parameter_sensitive() {
        let q = Quantization::default();
        let a = CanonicalKey::new(&demo_instance(), &q);
        let b = CanonicalKey::new(&demo_instance(), &q);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());

        // A 2× change in one cost must move the fingerprint.
        let mut services: Vec<Service> = demo_instance().services().to_vec();
        services[0] = Service::new(2.0, 0.5);
        let changed = QueryInstance::builder()
            .services(services)
            .comm(demo_instance().comm().clone())
            .build()
            .unwrap();
        assert_ne!(CanonicalKey::new(&changed, &q).fingerprint(), a.fingerprint());
    }

    #[test]
    fn drift_within_resolution_usually_shares_a_bucket() {
        let q = Quantization::default();
        let base = CanonicalKey::new(&demo_instance(), &q);
        // +0.4% drift on every positive parameter: well inside 5% buckets
        // (the demo values sit away from bucket boundaries).
        let inst = demo_instance();
        let drifted = QueryInstance::builder()
            .services(
                inst.services()
                    .iter()
                    .map(|s| Service::new(s.cost() * 1.004, s.selectivity() * 1.004)),
            )
            .comm(CommMatrix::from_fn(3, |i, j| inst.transfer(i, j) * 1.004))
            .sink((0..3).map(|i| inst.sink_cost(i) * 1.004).collect())
            .build()
            .unwrap();
        assert_eq!(CanonicalKey::new(&drifted, &q).fingerprint(), base.fingerprint());
    }

    #[test]
    fn relabeling_preserves_fingerprint_and_transports_plans() {
        let q = Quantization::default();
        let inst = demo_instance();
        let key = CanonicalKey::new(&inst, &q);
        for perm in [[1, 2, 0], [2, 0, 1], [1, 0, 2]] {
            let relabeled = relabel(&inst, &perm);
            let rkey = CanonicalKey::new(&relabeled, &q);
            assert_eq!(rkey.fingerprint(), key.fingerprint(), "perm {perm:?}");

            // A plan stored in canonical space round-trips through either
            // labeling into plans that order the *same physical services*.
            let plan = Plan::new(vec![2, 0, 1]).unwrap();
            let canonical = key.plan_to_canonical(&plan);
            let transported = rkey.plan_from_canonical(&canonical).expect("valid permutation");
            // relabeled service i == original service perm[i]: mapping the
            // transported plan back through perm must recover `plan`.
            let recovered: Vec<usize> = transported.indices().iter().map(|&i| perm[i]).collect();
            assert_eq!(recovered, plan.indices(), "perm {perm:?}");
        }
    }

    #[test]
    fn plan_round_trip_is_identity_on_the_same_instance() {
        let q = Quantization::default();
        let key = CanonicalKey::new(&demo_instance(), &q);
        for order in [vec![0, 1, 2], vec![2, 1, 0], vec![1, 2, 0]] {
            let plan = Plan::new(order).unwrap();
            let canonical = key.plan_to_canonical(&plan);
            assert_eq!(key.plan_from_canonical(&canonical).unwrap(), plan);
        }
    }

    #[test]
    fn malformed_canonical_orders_are_rejected() {
        let key = CanonicalKey::new(&demo_instance(), &Quantization::default());
        assert!(key.plan_from_canonical(&[0, 1]).is_none(), "wrong length");
        assert!(key.plan_from_canonical(&[0, 1, 7]).is_none(), "out of range");
        assert!(key.plan_from_canonical(&[0, 1, 1]).is_none(), "not a permutation");
    }

    #[test]
    fn precedence_feeds_the_fingerprint() {
        let q = Quantization::default();
        let inst = demo_instance();
        let mut dag = PrecedenceDag::new(3).unwrap();
        dag.add_edge(0, 2).unwrap();
        let constrained = QueryInstance::builder()
            .services(inst.services().to_vec())
            .comm(inst.comm().clone())
            .sink((0..3).map(|i| inst.sink_cost(i)).collect())
            .precedence(dag)
            .build()
            .unwrap();
        assert_ne!(
            CanonicalKey::new(&constrained, &q).fingerprint(),
            CanonicalKey::new(&inst, &q).fingerprint()
        );
    }

    #[test]
    fn phases_partition_the_keyspace() {
        let inst = demo_instance();
        let q = Quantization::default();
        let primary = CanonicalKey::with_phase(&inst, &q, 0.0);
        assert_eq!(primary, CanonicalKey::new(&inst, &q), "phase 0 is the default grid");
        let shifted = CanonicalKey::with_phase(&inst, &q, 0.5);
        assert_ne!(primary.fingerprint(), shifted.fingerprint());
    }

    #[test]
    fn shifted_grid_is_stable_across_a_primary_boundary() {
        // Place one cost exactly on a boundary of the primary grid
        // (half-integer position in log-bucket space) and oscillate it:
        // the primary fingerprint must flip, the 0.5-shifted one must
        // not.
        let q = Quantization::new(0.05);
        let step = 1.05f64;
        let at = |offset: f64| {
            QueryInstance::builder()
                .services(vec![
                    Service::new(step.powf(3.5 + offset), 0.5),
                    Service::new(2.5, 0.9),
                    Service::new(0.3, 0.2),
                ])
                .comm(CommMatrix::uniform(3, 0.4))
                .build()
                .unwrap()
        };
        let below = at(-0.1);
        let above = at(0.1);
        assert_ne!(
            CanonicalKey::new(&below, &q).fingerprint(),
            CanonicalKey::new(&above, &q).fingerprint(),
            "the walk crosses a primary bucket boundary"
        );
        assert_eq!(
            CanonicalKey::with_phase(&below, &q, 0.5).fingerprint(),
            CanonicalKey::with_phase(&above, &q, 0.5).fingerprint(),
            "the boundary sits at the center of the shifted grid"
        );
    }

    #[test]
    #[should_panic(expected = "grid phase must be in [0, 1)")]
    fn out_of_range_phases_are_rejected() {
        CanonicalKey::with_phase(&demo_instance(), &Quantization::default(), 1.0);
    }

    #[test]
    fn resolution_changes_the_keyspace() {
        let inst = demo_instance();
        let coarse = CanonicalKey::new(&inst, &Quantization::new(0.5));
        let fine = CanonicalKey::new(&inst, &Quantization::new(0.01));
        assert_ne!(coarse.fingerprint(), fine.fingerprint());
    }
}
