//! A small fixed-capacity bit set.
//!
//! The optimizer tracks which services are already placed in a partial plan
//! and which predecessors a service waits on. Plans never exceed a few
//! hundred services, so a `Vec<u64>`-backed set is both compact and fast,
//! and avoids pulling in an external dependency.

/// Fixed-capacity set of small indices backed by `u64` words.
///
/// The capacity is fixed at construction; inserting an index `>= capacity`
/// panics. Operations used on the optimizer hot path (`contains`, `insert`,
/// `remove`, `is_superset_of`) are branch-light word operations.
///
/// # Examples
///
/// ```
/// use dsq_core::BitSet;
///
/// let mut placed = BitSet::new(10);
/// placed.insert(3);
/// placed.insert(7);
/// assert!(placed.contains(3));
/// assert_eq!(placed.len(), 2);
/// assert_eq!(placed.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64).max(1)], capacity }
    }

    /// Number of indices the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of indices currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set holds no indices.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts `index`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity {}", self.capacity);
        let (w, b) = (index / 64, index % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `index`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity {}", self.capacity);
        let (w, b) = (index / 64, index % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether `index` is in the set. Out-of-capacity indices are absent.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Removes all indices.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether every index of `other` is also in `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_superset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| b & !a == 0)
    }

    /// Iterates over the indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, next: 0 }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the largest index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

/// Iterator over set indices, created by [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.next < self.set.capacity {
            let i = self.next;
            self.next += 1;
            if self.set.contains(i) {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.capacity(), 100);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(70);
        for i in [5, 63, 64, 69, 2] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5, 63, 64, 69]);
    }

    #[test]
    fn superset_relation() {
        let mut a = BitSet::new(8);
        let mut b = BitSet::new(8);
        a.insert(1);
        a.insert(3);
        b.insert(3);
        assert!(a.is_superset_of(&b));
        assert!(!b.is_superset_of(&a));
        let empty = BitSet::new(8);
        assert!(b.is_superset_of(&empty));
        assert!(empty.is_superset_of(&empty.clone()));
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(8);
        s.insert(7);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [4usize, 9, 1].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn zero_capacity_is_usable() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn debug_shows_contents() {
        let mut s = BitSet::new(8);
        s.insert(2);
        assert_eq!(format!("{s:?}"), "{2}");
    }
}
