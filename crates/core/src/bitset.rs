//! A small fixed-capacity bit set.
//!
//! The optimizer tracks which services are already placed in a partial plan
//! and which predecessors a service waits on. Plans never exceed a few
//! hundred services, so a `Vec<u64>`-backed set is both compact and fast,
//! and avoids pulling in an external dependency.

/// Fixed-capacity set of small indices backed by `u64` words.
///
/// The capacity is fixed at construction; inserting an index `>= capacity`
/// panics. Operations used on the optimizer hot path (`contains`, `insert`,
/// `remove`, `is_superset_of`) are branch-light word operations.
///
/// # Examples
///
/// ```
/// use dsq_core::BitSet;
///
/// let mut placed = BitSet::new(10);
/// placed.insert(3);
/// placed.insert(7);
/// assert!(placed.contains(3));
/// assert_eq!(placed.len(), 2);
/// assert_eq!(placed.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64).max(1)], capacity }
    }

    /// Number of indices the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of indices currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set holds no indices.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts `index`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity {}", self.capacity);
        let (w, b) = (index / 64, index % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `index`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity {}", self.capacity);
        let (w, b) = (index / 64, index % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether `index` is in the set. Out-of-capacity indices are absent.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Removes all indices.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether every index of `other` is also in `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_superset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| b & !a == 0)
    }

    /// Inserts every index `0..capacity` at once (word-level fill).
    pub fn insert_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = !0);
        self.mask_tail();
    }

    /// Zeroes the bits of the last word that lie beyond `capacity`, so
    /// whole-word operations never materialize out-of-capacity indices.
    fn mask_tail(&mut self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        } else if self.capacity == 0 {
            // Capacity 0 still allocates one (permanently empty) word.
            self.words[0] = 0;
        }
    }

    /// Iterates over the indices in ascending order.
    ///
    /// The iterator walks whole `u64` words and pops set bits with
    /// `trailing_zeros`, so sparse sets cost one transition per word
    /// rather than one per candidate index.
    pub fn iter(&self) -> Iter<'_> {
        Iter { words: &self.words, word_index: 0, bits: self.words.first().copied().unwrap_or(0) }
    }

    /// Iterates over the indices **not** in the set, in ascending order
    /// (the complement within `0..capacity`), using the same word-level
    /// walk as [`iter`](Self::iter).
    ///
    /// # Examples
    ///
    /// ```
    /// use dsq_core::BitSet;
    ///
    /// let mut placed = BitSet::new(5);
    /// placed.insert(1);
    /// placed.insert(3);
    /// assert_eq!(placed.iter_unset().collect::<Vec<_>>(), vec![0, 2, 4]);
    /// ```
    pub fn iter_unset(&self) -> IterUnset<'_> {
        let mut it =
            IterUnset { words: &self.words, capacity: self.capacity, word_index: 0, bits: 0 };
        it.bits = it.complement_word(0);
        it
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the largest index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

/// Iterator over set indices, created by [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_index: usize,
    /// Unconsumed bits of `words[word_index]`.
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word_index += 1;
            self.bits = *self.words.get(self.word_index)?;
        }
        let bit = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1; // clear lowest set bit
        Some(self.word_index * 64 + bit)
    }
}

/// Iterator over unset indices, created by [`BitSet::iter_unset`].
#[derive(Debug)]
pub struct IterUnset<'a> {
    words: &'a [u64],
    capacity: usize,
    word_index: usize,
    /// Unconsumed bits of the complement of `words[word_index]`, already
    /// masked to the capacity.
    bits: u64,
}

impl IterUnset<'_> {
    /// The complement of word `w`, with bits beyond `capacity` cleared.
    fn complement_word(&self, w: usize) -> u64 {
        let Some(&word) = self.words.get(w) else { return 0 };
        let mut bits = !word;
        let word_base = w * 64;
        if self.capacity < word_base + 64 {
            let tail = self.capacity.saturating_sub(word_base);
            bits &= (1u64 << tail).wrapping_sub(1);
        }
        bits
    }
}

impl Iterator for IterUnset<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.bits = self.complement_word(self.word_index);
        }
        let bit = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word_index * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.capacity(), 100);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(70);
        for i in [5, 63, 64, 69, 2] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5, 63, 64, 69]);
    }

    #[test]
    fn superset_relation() {
        let mut a = BitSet::new(8);
        let mut b = BitSet::new(8);
        a.insert(1);
        a.insert(3);
        b.insert(3);
        assert!(a.is_superset_of(&b));
        assert!(!b.is_superset_of(&a));
        let empty = BitSet::new(8);
        assert!(b.is_superset_of(&empty));
        assert!(empty.is_superset_of(&empty.clone()));
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(8);
        s.insert(7);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [4usize, 9, 1].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn zero_capacity_is_usable() {
        let mut s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.iter_unset().count(), 0);
        s.insert_all();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_unset_is_the_complement() {
        for cap in [0usize, 1, 5, 63, 64, 65, 127, 128, 130] {
            let mut s = BitSet::new(cap);
            for i in (0..cap).step_by(3) {
                s.insert(i);
            }
            let set: Vec<usize> = s.iter().collect();
            let unset: Vec<usize> = s.iter_unset().collect();
            assert_eq!(set, (0..cap).filter(|i| i % 3 == 0).collect::<Vec<_>>());
            assert_eq!(unset, (0..cap).filter(|i| i % 3 != 0).collect::<Vec<_>>());
            assert_eq!(set.len() + unset.len(), cap);
        }
    }

    #[test]
    fn insert_all_fills_to_capacity_only() {
        for cap in [1usize, 63, 64, 65, 128, 130] {
            let mut s = BitSet::new(cap);
            s.insert_all();
            assert_eq!(s.len(), cap, "capacity {cap}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..cap).collect::<Vec<_>>());
            assert_eq!(s.iter_unset().count(), 0);
            // Word-level fill must not create phantom out-of-capacity bits.
            assert!(!s.contains(cap));
        }
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for i in [0, 63, 64, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn debug_shows_contents() {
        let mut s = BitSet::new(8);
        s.insert(2);
        assert_eq!(format!("{s:?}"), "{2}");
    }
}
