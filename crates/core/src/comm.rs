//! Inter-service communication cost matrices.

use crate::error::ModelError;
use std::fmt;

/// Per-tuple transfer costs `t_{i,j}` between service hosts.
///
/// The matrix is square and possibly **asymmetric** (`t_{i,j} ≠ t_{j,i}`),
/// matching the paper's decentralized setting where services stream tuples
/// directly to one another. The diagonal is stored but never consulted by
/// the cost model (a plan never transfers a tuple from a service to itself).
///
/// When tuples move in blocks, `t_{i,j}` is the block transfer cost divided
/// by the number of tuples per block (§2 of the paper); the
/// [simulator](../dsq_simulator/index.html) models the block mechanics
/// explicitly and validates this amortization.
///
/// # Examples
///
/// ```
/// use dsq_core::CommMatrix;
///
/// let comm = CommMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs() * 0.1);
/// assert_eq!(comm.len(), 3);
/// assert_eq!(comm.get(0, 2), 0.2);
/// assert!(comm.is_symmetric(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CommMatrix {
    n: usize,
    data: Vec<f64>, // row-major n×n
}

impl CommMatrix {
    /// Builds an `n × n` matrix by evaluating `f(i, j)` for every pair.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a NaN, infinite, or negative value.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let v = f(i, j);
                assert!(
                    v.is_finite() && v >= 0.0,
                    "transfer cost t[{i}][{j}] must be finite and non-negative, got {v}"
                );
                data.push(v);
            }
        }
        CommMatrix { n, data }
    }

    /// A matrix where every off-diagonal transfer costs `t` — the
    /// *centralized / homogeneous* special case solved in polynomial time
    /// by Srivastava et al. (VLDB'06). The diagonal is zero.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN, infinite, or negative.
    pub fn uniform(n: usize, t: f64) -> Self {
        CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { t })
    }

    /// A matrix of zeros (communication-free queries).
    pub fn zeros(n: usize) -> Self {
        CommMatrix { n, data: vec![0.0; n * n] }
    }

    /// Builds a matrix from rows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] if the rows do not form a
    /// square matrix, and [`ModelError::InvalidValue`] if any entry is NaN,
    /// infinite, or negative.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, ModelError> {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in &rows {
            if row.len() != n {
                return Err(ModelError::DimensionMismatch {
                    what: "communication matrix row",
                    expected: n,
                    found: row.len(),
                });
            }
            for &v in row {
                if !v.is_finite() || v < 0.0 {
                    return Err(ModelError::InvalidValue { what: "transfer cost", value: v });
                }
                data.push(v);
            }
        }
        Ok(CommMatrix { n, data })
    }

    /// The number of services (matrix dimension).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Per-tuple transfer cost from service `i` to service `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of range for {}×{0} matrix", self.n);
        self.data[i * self.n + j]
    }

    /// Sets the transfer cost from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or the value is NaN, infinite, or
    /// negative.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of range for {}×{0} matrix", self.n);
        assert!(
            value.is_finite() && value >= 0.0,
            "transfer cost must be finite and non-negative, got {value}"
        );
        self.data[i * self.n + j] = value;
    }

    /// Row `i` as a slice (`t_{i,0} .. t_{i,n-1}`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "row {i} out of range for {}×{0} matrix", self.n);
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Largest off-diagonal entry, or 0 for matrices smaller than 2×2.
    pub fn max_off_diagonal(&self) -> f64 {
        self.off_diagonal().fold(0.0, f64::max)
    }

    /// Smallest off-diagonal entry, or 0 for matrices smaller than 2×2.
    pub fn min_off_diagonal(&self) -> f64 {
        let min = self.off_diagonal().fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Mean of the off-diagonal entries, or 0 for matrices smaller than 2×2.
    ///
    /// This is the natural "uniform equivalent" communication cost used when
    /// comparing against the centralized optimum of Srivastava et al.
    pub fn mean_off_diagonal(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let count = (self.n * (self.n - 1)) as f64;
        self.off_diagonal().sum::<f64>() / count
    }

    /// Whether `|t_{i,j} - t_{j,i}| <= tol` for all pairs.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        (0..self.n).all(|i| (i + 1..self.n).all(|j| (self.get(i, j) - self.get(j, i)).abs() <= tol))
    }

    fn off_diagonal(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.n)
            .flat_map(move |i| (0..self.n).filter(move |&j| j != i).map(move |j| self.get(i, j)))
    }
}

impl fmt::Display for CommMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:8.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = CommMatrix::from_fn(3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn uniform_has_zero_diagonal() {
        let m = CommMatrix::uniform(4, 2.5);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                if i != j {
                    assert_eq!(m.get(i, j), 2.5);
                }
            }
        }
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn from_rows_validates_shape() {
        let err = CommMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { .. }));
        let err = CommMatrix::from_rows(vec![vec![0.0, -1.0], vec![1.0, 0.0]]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidValue { .. }));
        let ok = CommMatrix::from_rows(vec![vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap();
        assert_eq!(ok.get(1, 0), 2.0);
        assert!(!ok.is_symmetric(0.5));
        assert!(ok.is_symmetric(1.0));
    }

    #[test]
    fn off_diagonal_statistics() {
        let m = CommMatrix::from_rows(vec![vec![9.0, 1.0], vec![3.0, 9.0]]).unwrap();
        assert_eq!(m.max_off_diagonal(), 3.0);
        assert_eq!(m.min_off_diagonal(), 1.0);
        assert_eq!(m.mean_off_diagonal(), 2.0);
    }

    #[test]
    fn degenerate_sizes() {
        let m = CommMatrix::zeros(1);
        assert_eq!(m.max_off_diagonal(), 0.0);
        assert_eq!(m.min_off_diagonal(), 0.0);
        assert_eq!(m.mean_off_diagonal(), 0.0);
        assert!(CommMatrix::zeros(0).is_empty());
    }

    #[test]
    fn set_updates_value() {
        let mut m = CommMatrix::zeros(2);
        m.set(0, 1, 4.0);
        assert_eq!(m.get(0, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        CommMatrix::zeros(2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_fn_rejects_nan() {
        CommMatrix::from_fn(2, |_, _| f64::NAN);
    }

    #[test]
    fn display_renders_rows() {
        let m = CommMatrix::uniform(2, 1.0);
        let text = m.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("1.0000"));
    }
}
