//! A versioned plain-text snapshot format for plan caches, so warm plans
//! survive process restarts and travel between processes.
//!
//! The serving layer (`dsq-service`) keys cached plans by the quantized
//! [`CanonicalKey`](crate::CanonicalKey) fingerprint of an instance. A
//! snapshot serializes each resident entry as the triple the cache needs
//! to rebuild itself: the fingerprint, the canonical-space plan with its
//! reference cost, and the **instance text** of the representative that
//! produced the entry. Carrying the instance (not just the fingerprint)
//! makes the format self-validating — a loader recomputes the fingerprint
//! from the instance under its own quantization and rejects entries that
//! do not hash back — and lets a cache configured for multi-probe lookup
//! re-derive its shifted-grid aliases.
//!
//! # Format
//!
//! Line-oriented, versioned, headed by the [`Quantization`] resolution so
//! a snapshot taken at one bucket width is rejected by a cache using
//! another (the fingerprints would be garbage there):
//!
//! ```text
//! dsq-plan-cache v1
//! resolution 0.05
//! entries 2
//! entry fingerprint 00a1b2c3d4e5f607 cost 1.2345 plan 2,0,1
//! dsq-instance v1
//! …instance lines…
//! end-entry
//! entry …
//! …
//! end-snapshot
//! ```
//!
//! Costs round-trip exactly: `f64` formatting in Rust emits the shortest
//! decimal that parses back to the identical bits. The trailing
//! `end-snapshot` line makes truncation detectable even after the last
//! entry.

use crate::canonical::Quantization;
use std::error::Error;
use std::fmt;

/// Header line of the snapshot format, version included.
pub const SNAPSHOT_HEADER: &str = "dsq-plan-cache v1";

/// One serialized cache entry: fingerprint, canonical plan + reference
/// cost, and the representative instance's text. Passive struct; fields
/// are public.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// The cache fingerprint the entry was stored under.
    pub fingerprint: u64,
    /// Bottleneck cost of the plan on the representative instance (the
    /// value bucket-hits validate against).
    pub cost: f64,
    /// The plan in canonical index space.
    pub canonical_plan: Vec<u32>,
    /// The representative instance, in the `dsq-instance` text format
    /// (see [`format_instance`](crate::format_instance)).
    pub instance: String,
}

/// A parsed (or to-be-written) plan-cache snapshot. Passive struct;
/// fields are public.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSnapshot {
    /// Resolution of the [`Quantization`] the fingerprints were computed
    /// under.
    pub resolution: f64,
    /// The serialized entries, in the order they were written.
    pub entries: Vec<SnapshotEntry>,
}

/// Error raised by [`PlanSnapshot::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The header line is missing or names an unknown version.
    BadHeader,
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The document ended before the declared entries (or the
    /// `end-snapshot` trailer) arrived.
    Truncated {
        /// Entries the header promised.
        expected: usize,
        /// Complete entries actually present.
        found: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => {
                write!(f, "expected header line `{SNAPSHOT_HEADER}`")
            }
            SnapshotError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            SnapshotError::Truncated { expected, found } => {
                write!(f, "snapshot truncated: expected {expected} entries, found {found}")
            }
        }
    }
}

impl Error for SnapshotError {}

impl PlanSnapshot {
    /// Renders the snapshot in the text format (see module docs). The
    /// output round-trips through [`PlanSnapshot::parse`] bit-exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::from(SNAPSHOT_HEADER);
        out.push('\n');
        out.push_str(&format!("resolution {}\n", self.resolution));
        out.push_str(&format!("entries {}\n", self.entries.len()));
        for entry in &self.entries {
            out.push_str(&format!(
                "entry fingerprint {:016x} cost {} plan {}\n",
                entry.fingerprint,
                entry.cost,
                entry.canonical_plan.iter().map(u32::to_string).collect::<Vec<_>>().join(","),
            ));
            out.push_str(&entry.instance);
            if !entry.instance.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("end-entry\n");
        }
        out.push_str("end-snapshot\n");
        out
    }

    /// Convenience constructor pairing a [`Quantization`] with entries.
    pub fn new(quantization: &Quantization, entries: Vec<SnapshotEntry>) -> Self {
        PlanSnapshot { resolution: quantization.resolution, entries }
    }

    /// Splits the snapshot into `(moved, retained)` by a fingerprint
    /// predicate, preserving entry order in both halves and the
    /// resolution header in each. This is the partition step of a fleet
    /// rebalance: `moved(fp)` is "does this entry's consistent-hash
    /// owner change under the new ring" — the `moved` half streams to
    /// the inheriting backend, the `retained` half stays home. Every
    /// entry lands in exactly one half.
    pub fn partition(self, mut moved: impl FnMut(u64) -> bool) -> (PlanSnapshot, PlanSnapshot) {
        let resolution = self.resolution;
        let (moving, staying): (Vec<SnapshotEntry>, Vec<SnapshotEntry>) =
            self.entries.into_iter().partition(|entry| moved(entry.fingerprint));
        (
            PlanSnapshot { resolution, entries: moving },
            PlanSnapshot { resolution, entries: staying },
        )
    }

    /// Parses the text format (see module docs).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] naming the offending line, a bad or
    /// missing header, or truncation (fewer complete entries than the
    /// header declared, or a missing `end-snapshot` trailer).
    pub fn parse(text: &str) -> Result<PlanSnapshot, SnapshotError> {
        let malformed = |line: usize, reason: &str| SnapshotError::Malformed {
            line,
            reason: reason.to_string(),
        };
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));

        match lines.next() {
            Some((_, l)) if l.trim() == SNAPSHOT_HEADER => {}
            _ => return Err(SnapshotError::BadHeader),
        }
        let resolution: f64 = match lines.next() {
            Some((lineno, l)) => l
                .trim()
                .strip_prefix("resolution ")
                .and_then(|v| v.trim().parse().ok())
                .filter(|r: &f64| r.is_finite() && *r > 0.0 && *r < 1.0)
                .ok_or_else(|| malformed(lineno, "expected `resolution R` with R in (0, 1)"))?,
            None => return Err(malformed(2, "expected `resolution R` with R in (0, 1)")),
        };
        let expected: usize = match lines.next() {
            Some((lineno, l)) => l
                .trim()
                .strip_prefix("entries ")
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| malformed(lineno, "expected `entries N`"))?,
            None => return Err(malformed(3, "expected `entries N`")),
        };

        let mut entries: Vec<SnapshotEntry> = Vec::with_capacity(expected);
        let mut sealed = false;
        while let Some((lineno, line)) = lines.next() {
            let line = line.trim_end();
            if line == "end-snapshot" {
                sealed = true;
                if lines.next().is_some() {
                    return Err(malformed(lineno + 1, "content after end-snapshot"));
                }
                break;
            }
            let rest = line.strip_prefix("entry fingerprint ").ok_or_else(|| {
                malformed(lineno, "expected `entry fingerprint …` or `end-snapshot`")
            })?;
            let mut fields = rest.split_whitespace();
            let fingerprint = fields
                .next()
                .and_then(|f| u64::from_str_radix(f, 16).ok())
                .ok_or_else(|| malformed(lineno, "bad fingerprint"))?;
            let cost: f64 = match (fields.next(), fields.next()) {
                (Some("cost"), Some(v)) => v
                    .parse()
                    .ok()
                    .filter(|c: &f64| c.is_finite())
                    .ok_or_else(|| malformed(lineno, "bad entry cost"))?,
                _ => return Err(malformed(lineno, "bad entry cost")),
            };
            let canonical_plan: Vec<u32> = match (fields.next(), fields.next()) {
                (Some("plan"), Some(spec)) => spec
                    .split(',')
                    .map(|f| f.parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| malformed(lineno, "bad canonical plan"))?,
                _ => return Err(malformed(lineno, "bad canonical plan")),
            };
            if fields.next().is_some() {
                return Err(malformed(lineno, "trailing fields after plan"));
            }

            let mut instance = String::new();
            let mut closed = false;
            for (_, body) in lines.by_ref() {
                if body.trim_end() == "end-entry" {
                    closed = true;
                    break;
                }
                instance.push_str(body);
                instance.push('\n');
            }
            if !closed {
                return Err(SnapshotError::Truncated { expected, found: entries.len() });
            }
            entries.push(SnapshotEntry { fingerprint, cost, canonical_plan, instance });
        }

        if !sealed || entries.len() != expected {
            return Err(SnapshotError::Truncated { expected, found: entries.len() });
        }
        Ok(PlanSnapshot { resolution, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> PlanSnapshot {
        PlanSnapshot {
            resolution: 0.05,
            entries: vec![
                SnapshotEntry {
                    fingerprint: 0x00a1_b2c3_d4e5_f607,
                    cost: 1.0 / 3.0,
                    canonical_plan: vec![2, 0, 1],
                    instance: "dsq-instance v1\nname a\nn 1\nservice 0 1 0.5\nrow 0 0\n".into(),
                },
                SnapshotEntry {
                    fingerprint: u64::MAX,
                    cost: 7.25,
                    canonical_plan: vec![0],
                    instance: "dsq-instance v1\nname b\nn 1\nservice 0 2 0.5\nrow 0 0\n".into(),
                },
            ],
        }
    }

    #[test]
    fn partition_splits_every_entry_into_exactly_one_half() {
        let snapshot = demo();
        let all = snapshot.entries.clone();
        let (moved, retained) = snapshot.partition(|fp| fp == u64::MAX);
        assert_eq!(moved.resolution, 0.05);
        assert_eq!(retained.resolution, 0.05);
        assert_eq!(moved.entries.len(), 1);
        assert_eq!(retained.entries.len(), 1);
        assert_eq!(moved.entries[0], all[1]);
        assert_eq!(retained.entries[0], all[0]);

        let (everything, nothing) = demo().partition(|_| true);
        assert_eq!(everything.entries, all);
        assert!(nothing.entries.is_empty());
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let snapshot = demo();
        let text = snapshot.to_text();
        let parsed = PlanSnapshot::parse(&text).expect("round trip parses");
        assert_eq!(parsed, snapshot);
        assert_eq!(parsed.entries[0].cost.to_bits(), (1.0f64 / 3.0).to_bits());
        // Idempotent: re-rendering the parse gives the same bytes.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn empty_snapshots_round_trip() {
        let empty = PlanSnapshot::new(&Quantization::default(), Vec::new());
        let parsed = PlanSnapshot::parse(&empty.to_text()).expect("parses");
        assert_eq!(parsed, empty);
    }

    #[test]
    fn header_and_version_are_enforced() {
        assert_eq!(PlanSnapshot::parse(""), Err(SnapshotError::BadHeader));
        assert_eq!(PlanSnapshot::parse("dsq-plan-cache v2\n"), Err(SnapshotError::BadHeader));
        assert_eq!(PlanSnapshot::parse("dsq-instance v1\n"), Err(SnapshotError::BadHeader));
        assert_eq!(
            PlanSnapshot::parse("dsq-plan-cache v2\n").unwrap_err().to_string(),
            "expected header line `dsq-plan-cache v1`"
        );
    }

    #[test]
    fn truncation_is_detected() {
        let text = demo().to_text();
        // Chopping anywhere after the header must never parse: either a
        // truncation error or a malformed line, never a silent partial
        // snapshot.
        for cut in ["end-snapshot\n", "end-entry\n", "service 0 2 0.5\n"] {
            let truncated = &text[..text.rfind(cut).expect("marker present")];
            let err = PlanSnapshot::parse(truncated).expect_err("truncated must not parse");
            assert!(matches!(err, SnapshotError::Truncated { .. }), "cut at {cut:?} gave {err:?}");
        }
        let err = PlanSnapshot::parse(&text[..text.rfind("end-snapshot\n").unwrap()]).unwrap_err();
        assert_eq!(err.to_string(), "snapshot truncated: expected 2 entries, found 2");
    }

    #[test]
    fn corrupt_lines_are_rejected_with_positions() {
        let text = demo().to_text();
        let corrupted = text.replacen("entry fingerprint 00a1", "entry fingerprint zz", 1);
        match PlanSnapshot::parse(&corrupted) {
            Err(SnapshotError::Malformed { line, reason }) => {
                assert_eq!(line, 4);
                assert_eq!(reason, "bad fingerprint");
            }
            other => panic!("expected malformed fingerprint, got {other:?}"),
        }
        let corrupted = text.replacen("plan 2,0,1", "plan 2,x,1", 1);
        assert!(matches!(
            PlanSnapshot::parse(&corrupted),
            Err(SnapshotError::Malformed { reason, .. }) if reason == "bad canonical plan"
        ));
        let corrupted = text.replacen("resolution 0.05", "resolution 7", 1);
        assert!(matches!(
            PlanSnapshot::parse(&corrupted),
            Err(SnapshotError::Malformed { line: 2, .. })
        ));
        let trailing = format!("{text}junk\n");
        assert!(matches!(
            PlanSnapshot::parse(&trailing),
            Err(SnapshotError::Malformed { reason, .. }) if reason == "content after end-snapshot"
        ));
    }

    #[test]
    fn entry_count_mismatch_is_truncation() {
        let text = demo().to_text().replacen("entries 2", "entries 3", 1);
        assert_eq!(
            PlanSnapshot::parse(&text),
            Err(SnapshotError::Truncated { expected: 3, found: 2 })
        );
    }
}
