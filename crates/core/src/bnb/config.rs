//! Optimizer configuration and ablation switches.

use crate::plan::Plan;
use std::time::Duration;

/// Configuration of the branch-and-bound optimizer.
///
/// The default configuration reproduces the algorithm exactly as described
/// in the paper: Lemma-1 incumbent pruning, Lemma-2 closure (`ε ≥ ε̄`), and
/// Lemma-3 back-jumping, with successors expanded cheapest-transfer-first.
/// The remaining switches exist for the ablation experiments (E3) and for
/// bounding long searches; **every configuration returns an optimal plan**
/// (given no budget), the switches only change how much of the search space
/// is visited.
///
/// This is a passive parameter struct; fields are public by design.
///
/// # Examples
///
/// ```
/// use dsq_core::BnbConfig;
///
/// let cfg = BnbConfig { use_backjump: false, ..BnbConfig::paper() };
/// assert!(cfg.use_epsilon_bar);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BnbConfig {
    /// Apply the Lemma-2 closure: when the partial plan's bottleneck `ε`
    /// already dominates the largest cost `ε̄` any remaining service could
    /// incur, every completion costs exactly `ε` — record a candidate and
    /// stop expanding.
    pub use_epsilon_bar: bool,
    /// Apply Lemma-3 back-jumping: after establishing a bottleneck, resume
    /// the search *above* the bottleneck service instead of at the deepest
    /// level, pruning every plan that shares the prefix up to and including
    /// the bottleneck.
    pub use_backjump: bool,
    /// Compute `ε̄` over the *remaining* services only (tight, the paper's
    /// reading) rather than over precomputed whole-row maxima (loose,
    /// historically cheaper per node but weaker).
    ///
    /// With the incremental bound engine
    /// ([`SearchContext`](crate::bnb::SearchContext)) the tight mode's
    /// per-row maxima come from pre-sorted transfer rows — `O(1)` per row
    /// while the row head is unplaced, `O(depth)` worst case — so tight
    /// nodes are near-linear in `|R|` in practice instead of
    /// unconditionally quadratic; the switch remains for the E3 ablation
    /// and for bound-quality comparisons.
    pub tight_epsilon_bar: bool,
    /// **Extension beyond the paper**: prune nodes whose optimistic
    /// completion bound (best prefix × best outgoing transfer per remaining
    /// service) already reaches the incumbent.
    pub use_lower_bound: bool,
    /// Seed the incumbent `ρ` with a greedy plan before the search starts.
    /// The paper starts from an empty incumbent; seeding is a conventional
    /// strengthening kept off by default for fidelity.
    pub seed_with_greedy: bool,
    /// Abort after visiting this many nodes, returning the best plan found
    /// (flagged as not proven optimal).
    pub node_limit: Option<u64>,
    /// Abort after this much wall-clock time, returning the best plan found
    /// (flagged as not proven optimal).
    pub time_limit: Option<Duration>,
    /// **Warm start**: seed the incumbent `ρ` with this complete plan
    /// (evaluated on the instance being optimized) before the search
    /// begins. Used by the `dsq-service` plan cache to resume from a
    /// cached plan of a near-identical instance; any plan whose cost is
    /// close to optimal prunes most of the tree immediately. The search
    /// still proves optimality: the result is never worse than the seed,
    /// and the returned plan is bit-identical to a cold search's whenever
    /// the seed is not itself optimal (a seed that *is* optimal is simply
    /// returned).
    ///
    /// A seed whose length disagrees with the instance or that violates
    /// the instance's precedence constraints is ignored.
    pub initial_incumbent: Option<Plan>,
}

impl BnbConfig {
    /// The algorithm exactly as published (all lemmas, no extensions).
    pub fn paper() -> Self {
        BnbConfig {
            use_epsilon_bar: true,
            use_backjump: true,
            tight_epsilon_bar: true,
            use_lower_bound: false,
            seed_with_greedy: false,
            node_limit: None,
            time_limit: None,
            initial_incumbent: None,
        }
    }

    /// Lemma-1 incumbent pruning only (both Lemma-2 and Lemma-3 disabled).
    /// The weakest sound configuration; the E3 ablation baseline.
    pub fn incumbent_only() -> Self {
        BnbConfig { use_epsilon_bar: false, use_backjump: false, ..BnbConfig::paper() }
    }

    /// The paper's algorithm without the Lemma-2 closure.
    pub fn without_epsilon_bar() -> Self {
        BnbConfig { use_epsilon_bar: false, ..BnbConfig::paper() }
    }

    /// The paper's algorithm without Lemma-3 back-jumping.
    pub fn without_backjump() -> Self {
        BnbConfig { use_backjump: false, ..BnbConfig::paper() }
    }

    /// The paper's algorithm plus every extension (greedy seed, optimistic
    /// completion bound).
    pub fn extended() -> Self {
        BnbConfig { use_lower_bound: true, seed_with_greedy: true, ..BnbConfig::paper() }
    }

    /// Returns this configuration with a node budget.
    pub fn with_node_limit(mut self, nodes: u64) -> Self {
        self.node_limit = Some(nodes);
        self
    }

    /// Returns this configuration with a wall-clock budget.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns this configuration warm-started from `plan` (see
    /// [`initial_incumbent`](Self::initial_incumbent)).
    pub fn with_initial_incumbent(mut self, plan: Plan) -> Self {
        self.initial_incumbent = Some(plan);
        self
    }
}

impl Default for BnbConfig {
    /// Defaults to [`BnbConfig::paper`].
    fn default() -> Self {
        BnbConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_is_default() {
        assert_eq!(BnbConfig::default(), BnbConfig::paper());
        let cfg = BnbConfig::paper();
        assert!(cfg.use_epsilon_bar && cfg.use_backjump && cfg.tight_epsilon_bar);
        assert!(!cfg.use_lower_bound && !cfg.seed_with_greedy);
        assert!(cfg.node_limit.is_none() && cfg.time_limit.is_none());
    }

    #[test]
    fn ablation_presets_toggle_the_right_switches() {
        assert!(!BnbConfig::incumbent_only().use_epsilon_bar);
        assert!(!BnbConfig::incumbent_only().use_backjump);
        assert!(!BnbConfig::without_epsilon_bar().use_epsilon_bar);
        assert!(BnbConfig::without_epsilon_bar().use_backjump);
        assert!(!BnbConfig::without_backjump().use_backjump);
        assert!(BnbConfig::without_backjump().use_epsilon_bar);
        assert!(BnbConfig::extended().use_lower_bound);
        assert!(BnbConfig::extended().seed_with_greedy);
    }

    #[test]
    fn budget_builders() {
        let cfg =
            BnbConfig::paper().with_node_limit(1000).with_time_limit(Duration::from_millis(5));
        assert_eq!(cfg.node_limit, Some(1000));
        assert_eq!(cfg.time_limit, Some(Duration::from_millis(5)));
    }

    #[test]
    fn incumbent_builder_attaches_the_plan() {
        let plan = Plan::new(vec![1, 0]).unwrap();
        let cfg = BnbConfig::paper().with_initial_incumbent(plan.clone());
        assert_eq!(cfg.initial_incumbent, Some(plan));
        assert!(BnbConfig::paper().initial_incumbent.is_none());
    }
}
