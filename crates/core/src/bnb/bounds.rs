//! **Reference oracles** for the two guiding measures of the search, `ε̄`
//! and the optimistic completion bound.
//!
//! The production search evaluates these bounds through the incremental
//! engine in [`context`](super::context) (flat arrays, pre-sorted transfer
//! rows, `O(1)` product maintenance). This module keeps the original
//! closed-form, recompute-from-scratch implementations — compiled only for
//! tests — as the executable specification: the property tests in
//! `context` pin the incremental engine to these within `1e-12` across
//! random push/pop/rewind sequences, and the tests at the bottom of this
//! file prove the definitions themselves sound against random completions.
//!
//! Notation: the current partial plan `C` has last service `u`;
//! `prefix_last = Π σ` over the services *before* `u`; `R` is the set of
//! services not yet placed.

use crate::bitset::BitSet;
use crate::instance::QueryInstance;

/// Upper bound `ε̄` on the cost of any term not yet finalized in any
/// completion of the current partial plan (Lemma 2's companion measure).
///
/// Three ingredients, each a sound over-approximation:
///
/// * the last placed service `u` completes with some successor in `R`, so
///   its term is at most `prefix_last · (c_u + σ_u · max_{l∈R} t_{u,l})`;
/// * a remaining service `j` sees at most
///   `P · Π_{k∈R∖{j}, σ_k>1} σ_k` tuples, where `P = prefix_last · σ_u`
///   (the paper's "slightly modified" computation for selectivities above
///   one — with all `σ ≤ 1` the inflation factor is 1 and this reduces to
///   `P`, exactly the brief announcement's measure);
/// * `j`'s outgoing transfer goes to a service in `R∖{j}` or to the sink.
///
/// With `tight == false` the per-service transfer maxima are taken from
/// `row_max` (precomputed over *all* services), trading bound quality for
/// `O(|R|)` instead of `O(|R|²)` work per node.
///
/// # Panics
///
/// Debug builds assert `R` is non-empty (callers only need `ε̄` for
/// incomplete plans).
pub(crate) fn epsilon_bar(
    inst: &QueryInstance,
    placed: &BitSet,
    last: usize,
    prefix_last: f64,
    tight: bool,
    row_max: &[f64],
) -> f64 {
    let n = inst.len();
    debug_assert!(placed.len() < n, "epsilon_bar is only defined for incomplete plans");
    let p = prefix_last * inst.selectivity(last);

    // Inflation: product of remaining selectivities above one.
    let mut inflation = 1.0;
    for j in 0..n {
        if !placed.contains(j) && inst.selectivity(j) > 1.0 {
            inflation *= inst.selectivity(j);
        }
    }

    // Last service's not-yet-finalized term: successor must be in R.
    let mut max_t_last = 0.0_f64;
    if tight {
        for l in 0..n {
            if !placed.contains(l) {
                max_t_last = max_t_last.max(inst.transfer(last, l));
            }
        }
    } else {
        max_t_last = row_max[last];
    }
    let mut bound = prefix_last * (inst.cost(last) + inst.selectivity(last) * max_t_last);

    for (j, &loose_max) in row_max.iter().enumerate() {
        if placed.contains(j) {
            continue;
        }
        let sigma_j = inst.selectivity(j);
        let max_out = if tight {
            let mut m = inst.sink_cost(j);
            for l in 0..n {
                if l != j && !placed.contains(l) {
                    m = m.max(inst.transfer(j, l));
                }
            }
            m
        } else {
            loose_max
        };
        let inflation_j = if sigma_j > 1.0 { inflation / sigma_j } else { inflation };
        bound = bound.max(p * inflation_j * (inst.cost(j) + sigma_j * max_out));
    }
    bound
}

/// Optimistic lower bound on the bottleneck cost of *any* completion of the
/// current partial plan (the `use_lower_bound` extension).
///
/// Mirror image of [`epsilon_bar`]: each remaining service `j` is charged
/// its *best* case — the smallest prefix it could see (`P` shrunk by every
/// remaining selectivity below one except its own) times its cost plus its
/// *cheapest* outgoing transfer. The last placed service is likewise
/// charged its cheapest remaining successor. Any completion must pay each
/// of these terms somewhere, so their maximum is a valid bound.
pub(crate) fn completion_lower_bound(
    inst: &QueryInstance,
    placed: &BitSet,
    last: usize,
    prefix_last: f64,
) -> f64 {
    let n = inst.len();
    debug_assert!(placed.len() < n);
    let p = prefix_last * inst.selectivity(last);

    // Shrink: product of remaining selectivities below one.
    let mut shrink = 1.0;
    for j in 0..n {
        if !placed.contains(j) && inst.selectivity(j) < 1.0 {
            shrink *= inst.selectivity(j);
        }
    }

    let mut min_t_last = f64::INFINITY;
    for l in 0..n {
        if !placed.contains(l) {
            min_t_last = min_t_last.min(inst.transfer(last, l));
        }
    }
    let mut bound = prefix_last * (inst.cost(last) + inst.selectivity(last) * min_t_last);

    for j in 0..n {
        if placed.contains(j) {
            continue;
        }
        let sigma_j = inst.selectivity(j);
        let mut min_out = inst.sink_cost(j);
        for l in 0..n {
            if l != j && !placed.contains(l) {
                min_out = min_out.min(inst.transfer(j, l));
            }
        }
        let shrink_j = if sigma_j < 1.0 && sigma_j > 0.0 { shrink / sigma_j } else { shrink };
        bound = bound.max(p * shrink_j * (inst.cost(j) + sigma_j * min_out));
    }
    bound
}

/// Precomputes, for every service `j`, the largest possible outgoing
/// per-tuple transfer `max(max_{l≠j} t_{j,l}, sink_j)` — the loose-mode
/// row maxima for [`epsilon_bar`].
pub(crate) fn row_maxima(inst: &QueryInstance) -> Vec<f64> {
    let n = inst.len();
    (0..n)
        .map(|j| {
            let mut m = inst.sink_cost(j);
            for l in 0..n {
                if l != j {
                    m = m.max(inst.transfer(j, l));
                }
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommMatrix;
    use crate::cost::{bottleneck_cost, cost_terms};
    use crate::plan::Plan;
    use crate::service::Service;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize, proliferative: bool) -> QueryInstance {
        let services: Vec<Service> = (0..n)
            .map(|_| {
                let sigma_max = if proliferative { 3.0 } else { 1.0 };
                Service::new(rng.gen_range(0.01..5.0), rng.gen_range(0.05..sigma_max))
            })
            .collect();
        let comm =
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..4.0) });
        let sink: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        QueryInstance::builder().services(services).comm(comm).sink(sink).build().unwrap()
    }

    /// For random prefixes and random completions, every term introduced by
    /// the completion is bounded by `ε̄`, and the completed plan's cost is
    /// at least the optimistic completion bound.
    #[test]
    fn bounds_bracket_random_completions() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..300 {
            let n = rng.gen_range(3..8);
            let inst = random_instance(&mut rng, n, trial % 2 == 0);
            let row_max = row_maxima(&inst);

            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let split = rng.gen_range(1..n); // at least 1 placed, at least 1 remaining

            let mut placed = BitSet::new(n);
            let mut prefix_last = 1.0;
            for &s in &order[..split - 1] {
                prefix_last *= inst.selectivity(s);
            }
            for &s in &order[..split] {
                placed.insert(s);
            }
            let last = order[split - 1];

            let ebar_tight = epsilon_bar(&inst, &placed, last, prefix_last, true, &row_max);
            let ebar_loose = epsilon_bar(&inst, &placed, last, prefix_last, false, &row_max);
            assert!(
                ebar_loose >= ebar_tight - 1e-9,
                "loose bound must dominate tight: {ebar_loose} vs {ebar_tight}"
            );

            let lb = completion_lower_bound(&inst, &placed, last, prefix_last);

            let plan = Plan::new(order.clone()).unwrap();
            let terms = cost_terms(&inst, &plan);
            // Terms introduced at or after the prefix boundary (the last
            // placed service's term is finalized by the completion too).
            let new_term_max = terms[split - 1..].iter().map(|t| t.term).fold(0.0_f64, f64::max);
            assert!(
                ebar_tight >= new_term_max - 1e-9,
                "ε̄ {ebar_tight} must dominate completion terms {new_term_max} (trial {trial})"
            );
            let total = bottleneck_cost(&inst, &plan);
            assert!(
                total >= lb - 1e-9,
                "completion cost {total} must be at least lower bound {lb} (trial {trial})"
            );
        }
    }

    #[test]
    fn epsilon_bar_reduces_to_paper_form_for_selective_services() {
        // All σ ≤ 1 → inflation factor 1: ε̄ = max(last-term bound,
        // P · max_j (c_j + σ_j max_t)). Hand-check a tiny case.
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 0.5), Service::new(2.0, 0.5), Service::new(3.0, 0.5)],
            CommMatrix::uniform(3, 2.0),
        )
        .unwrap();
        let row_max = row_maxima(&inst);
        let mut placed = BitSet::new(3);
        placed.insert(0);
        // C = [WS0]: prefix_last = 1, P = 0.5.
        // last bound: 1·(1 + 0.5·2) = 2.
        // WS1: 0.5·(2 + 0.5·2) = 1.5;  WS2: 0.5·(3 + 1) = 2.
        let ebar = epsilon_bar(&inst, &placed, 0, 1.0, true, &row_max);
        assert!((ebar - 2.0).abs() < 1e-12);
    }

    #[test]
    fn row_maxima_include_sink() {
        let inst = QueryInstance::builder()
            .services(vec![Service::new(1.0, 1.0), Service::new(1.0, 1.0)])
            .comm(CommMatrix::uniform(2, 0.5))
            .sink(vec![9.0, 0.0])
            .build()
            .unwrap();
        let maxima = row_maxima(&inst);
        assert_eq!(maxima[0], 9.0);
        assert_eq!(maxima[1], 0.5);
    }

    #[test]
    fn lower_bound_never_exceeds_true_optimum() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = rng.gen_range(3..7);
            let inst = random_instance(&mut rng, n, false);
            // Prefix = single service i; bound must not exceed the best
            // completion starting with i.
            let start = rng.gen_range(0..n);
            let mut placed = BitSet::new(n);
            placed.insert(start);
            let lb = completion_lower_bound(&inst, &placed, start, 1.0);

            let rest: Vec<usize> = (0..n).filter(|&s| s != start).collect();
            let mut best = f64::INFINITY;
            permute(rest, &mut |tail| {
                let mut order = vec![start];
                order.extend_from_slice(tail);
                let plan = Plan::new(order).unwrap();
                best = best.min(bottleneck_cost(&inst, &plan));
            });
            assert!(lb <= best + 1e-9, "lb {lb} exceeds best completion {best}");
        }
    }

    fn permute(items: Vec<usize>, f: &mut impl FnMut(&[usize])) {
        let mut items = items;
        let len = items.len();
        heap_permute(&mut items, len, f);
    }

    fn heap_permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k <= 1 {
            f(items);
            return;
        }
        for i in 0..k {
            heap_permute(items, k - 1, f);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
}
