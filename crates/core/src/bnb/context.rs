//! Cache-friendly shared search data and the incremental bound engine.
//!
//! The branch-and-bound hot path evaluates `ε̄` and the optimistic
//! completion bound at every node. Doing that against [`QueryInstance`]
//! directly costs an accessor indirection per parameter, an `O(n)` product
//! rebuild per bound, and — in tight mode — an `O(|R|²)` max scan per node.
//! This module replaces all of that with two pieces:
//!
//! * [`SearchContext`] — an immutable, per-instance snapshot built **once**
//!   per `optimize` call (and shared by every worker of
//!   [`optimize_parallel`](crate::optimize_parallel)): flat structure-of-
//!   arrays copies of cost/selectivity/sink, the row-major transfer matrix,
//!   the loose-mode row maxima, and per-row successor lists pre-sorted both
//!   ascending (candidate expansion, lower-bound minima) and descending
//!   (tight `ε̄` row maxima). "Max/min transfer into the remaining set"
//!   becomes a first-remaining-entry scan of a sorted row — `O(1)` while
//!   the head of the row is unplaced, `O(depth)` worst case when the
//!   search has placed exactly the row's cheapest/most-expensive entries
//!   — instead of an unconditional `O(n)` loop.
//! * [`IncrementalBounds`] — the mutable per-worker state: the placed /
//!   remaining sets plus stacks of the inflation (`Π σ>1` over remaining)
//!   and shrink (`Π σ<1` over remaining) selectivity products, updated in
//!   `O(1)` on [`push`](IncrementalBounds::push) and restored **exactly**
//!   on [`pop`](IncrementalBounds::pop) (pops truncate the stack rather
//!   than multiplying back, so no rounding error accumulates across
//!   backtracks; only the divisions along the current path — at most `n`
//!   of them — can drift, keeping the products within a few ulps of the
//!   closed-form recomputation).
//!
//! The closed-form bound definitions these accelerate are retained in the
//! `bounds` module as `#[cfg(test)]` reference oracles; the property tests
//! at the bottom of this file pin every incremental quantity to them within
//! `1e-12` relative error across random push/pop/rewind sequences.

use crate::bitset::BitSet;
use crate::instance::QueryInstance;

/// Immutable, cache-friendly snapshot of a [`QueryInstance`] for the
/// branch-and-bound search: flat parameter arrays plus pre-sorted per-row
/// transfer orderings.
///
/// Built once per optimization and shared (by reference) across all
/// parallel workers. This type is exported for the workspace benchmarks
/// and the experiment harness; it is not a stability-guaranteed API.
#[derive(Debug, Clone)]
pub struct SearchContext {
    n: usize,
    cost: Box<[f64]>,
    selectivity: Box<[f64]>,
    sink: Box<[f64]>,
    /// Row-major `n × n` transfer costs `t_{i,j}`.
    transfer: Box<[f64]>,
    /// Loose-mode row maxima `max(max_{l≠j} t_{j,l}, sink_j)`.
    row_max: Box<[f64]>,
    /// `n` rows of `n-1` successor indices, ascending by `t_{u,·}`.
    succ_asc: Box<[u32]>,
    /// `n` rows of `n-1` successor indices, descending by `t_{u,·}`.
    succ_desc: Box<[u32]>,
    /// `Π σ_j` over **all** services with `σ_j > 1`.
    total_inflation: f64,
    /// `Π σ_j` over all services with `0 < σ_j < 1` (zeros tracked apart).
    total_shrink: f64,
    /// Number of services with `σ_j == 0`.
    total_zero_sel: u32,
}

impl SearchContext {
    /// Builds the context: `O(n² log n)` for the per-row sorts, done once.
    pub fn new(inst: &QueryInstance) -> Self {
        let n = inst.len();
        let cost: Box<[f64]> = (0..n).map(|i| inst.cost(i)).collect();
        let selectivity: Box<[f64]> = (0..n).map(|i| inst.selectivity(i)).collect();
        let sink: Box<[f64]> = inst.sink_costs().into();
        let mut transfer = Vec::with_capacity(n * n);
        for i in 0..n {
            transfer.extend_from_slice(inst.comm().row(i));
        }

        let row_max: Box<[f64]> = (0..n)
            .map(|j| {
                let mut m = sink[j];
                for l in 0..n {
                    if l != j {
                        m = m.max(transfer[j * n + l]);
                    }
                }
                m
            })
            .collect();

        let stride = n.saturating_sub(1);
        let mut succ_asc = Vec::with_capacity(n * stride);
        let mut succ_desc = Vec::with_capacity(n * stride);
        for u in 0..n {
            let mut row: Vec<u32> = (0..n as u32).filter(|&j| j as usize != u).collect();
            row.sort_by(|&a, &b| {
                transfer[u * n + a as usize].total_cmp(&transfer[u * n + b as usize])
            });
            succ_asc.extend_from_slice(&row);
            row.reverse();
            succ_desc.extend_from_slice(&row);
        }

        let mut total_inflation = 1.0;
        let mut total_shrink = 1.0;
        let mut total_zero_sel = 0u32;
        for &s in selectivity.iter() {
            if s > 1.0 {
                total_inflation *= s;
            } else if s == 0.0 {
                total_zero_sel += 1;
            } else if s < 1.0 {
                total_shrink *= s;
            }
        }

        SearchContext {
            n,
            cost,
            selectivity,
            sink,
            transfer: transfer.into(),
            row_max,
            succ_asc: succ_asc.into(),
            succ_desc: succ_desc.into(),
            total_inflation,
            total_shrink,
            total_zero_sel,
        }
    }

    /// Number of services.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Contexts are never empty (instances aren't); always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Per-tuple processing cost `c_i`.
    #[inline]
    pub fn cost(&self, i: usize) -> f64 {
        self.cost[i]
    }

    /// Selectivity `σ_i`.
    #[inline]
    pub fn selectivity(&self, i: usize) -> f64 {
        self.selectivity[i]
    }

    /// Sink delivery cost of service `i`.
    #[inline]
    pub fn sink_cost(&self, i: usize) -> f64 {
        self.sink[i]
    }

    /// Transfer cost `t_{i,j}` (row-major flat lookup).
    #[inline]
    pub fn transfer(&self, i: usize, j: usize) -> f64 {
        self.transfer[i * self.n + j]
    }

    /// Loose-mode row maximum `max(max_{l≠j} t_{j,l}, sink_j)`.
    #[inline]
    pub fn row_max(&self, j: usize) -> f64 {
        self.row_max[j]
    }

    /// Successors of `u` (all services except `u`), cheapest transfer
    /// first — the candidate-expansion order that makes Lemma-3 sound.
    #[inline]
    pub fn successors_ascending(&self, u: usize) -> &[u32] {
        let stride = self.n - 1;
        &self.succ_asc[u * stride..(u + 1) * stride]
    }

    /// Successors of `u`, most expensive transfer first — the scan order
    /// for tight `ε̄` row maxima.
    #[inline]
    pub fn successors_descending(&self, u: usize) -> &[u32] {
        let stride = self.n - 1;
        &self.succ_desc[u * stride..(u + 1) * stride]
    }

    /// `max_{l ∈ remaining, l ≠ u} t_{u,l}`: first remaining entry of the
    /// descending row — `O(1)` while the head of the row is unplaced,
    /// `O(#placed)` worst case — or `0.0` when no such `l` exists
    /// (transfers are non-negative, so the `0.0` floor is absorbed by the
    /// caller's `max`).
    #[inline]
    pub fn max_transfer_to(&self, u: usize, remaining: &BitSet) -> f64 {
        for &l in self.successors_descending(u) {
            if remaining.contains(l as usize) {
                return self.transfer[u * self.n + l as usize];
            }
        }
        0.0
    }

    /// `min_{l ∈ remaining, l ≠ u} t_{u,l}`: first remaining entry of the
    /// ascending row, or `+∞` when no such `l` exists.
    #[inline]
    pub fn min_transfer_to(&self, u: usize, remaining: &BitSet) -> f64 {
        for &l in self.successors_ascending(u) {
            if remaining.contains(l as usize) {
                return self.transfer[u * self.n + l as usize];
            }
        }
        f64::INFINITY
    }

    /// Upper bound `ε̄` on any not-yet-finalized term of any completion
    /// (Lemma 2's companion measure), evaluated from the incremental state.
    ///
    /// Semantics are identical to the closed-form definition (see the
    /// `bounds` reference module): the last placed service `u` completes
    /// with some successor in the remaining set `R`, every remaining `j`
    /// sees at most `P` inflated by the remaining proliferative
    /// selectivities other than its own, and `j`'s output goes to
    /// `R∖{j}` or the sink. With `tight == false` the per-row maxima come
    /// from the precomputed whole-row table instead of the remaining set.
    ///
    /// Cost: `O(|R|)` row-maximum lookups, each `O(1)` while the head of
    /// its sorted row is unplaced and `O(depth)` worst case — so
    /// `O(|R| · depth)` adversarially, but near-linear in practice,
    /// versus the closed form's unconditional `O(n·|R|)`.
    pub fn epsilon_bar(
        &self,
        state: &IncrementalBounds,
        last: usize,
        prefix_last: f64,
        tight: bool,
    ) -> f64 {
        let remaining = state.remaining();
        debug_assert!(!remaining.is_empty(), "ε̄ is only defined for incomplete plans");
        let p = prefix_last * self.selectivity[last];
        let inflation = state.inflation();

        let max_t_last =
            if tight { self.max_transfer_to(last, remaining) } else { self.row_max[last] };
        let mut bound = prefix_last * (self.cost[last] + self.selectivity[last] * max_t_last);

        for j in remaining.iter() {
            let sigma_j = self.selectivity[j];
            let max_out = if tight {
                self.sink[j].max(self.max_transfer_to(j, remaining))
            } else {
                self.row_max[j]
            };
            let inflation_j = if sigma_j > 1.0 { inflation / sigma_j } else { inflation };
            bound = bound.max(p * inflation_j * (self.cost[j] + sigma_j * max_out));
        }
        bound
    }

    /// Optimistic lower bound on the bottleneck cost of any completion of
    /// the current partial plan (the `use_lower_bound` extension),
    /// evaluated from the incremental state. Mirror image of
    /// [`epsilon_bar`](Self::epsilon_bar): every remaining service is
    /// charged its best case.
    pub fn completion_lower_bound(
        &self,
        state: &IncrementalBounds,
        last: usize,
        prefix_last: f64,
    ) -> f64 {
        let remaining = state.remaining();
        debug_assert!(!remaining.is_empty());
        let p = prefix_last * self.selectivity[last];
        let shrink = state.shrink();

        let min_t_last = self.min_transfer_to(last, remaining);
        let mut bound = prefix_last * (self.cost[last] + self.selectivity[last] * min_t_last);

        for j in remaining.iter() {
            let sigma_j = self.selectivity[j];
            let min_out = self.sink[j].min(self.min_transfer_to(j, remaining));
            let shrink_j = if sigma_j < 1.0 && sigma_j > 0.0 {
                state.shrink_excluding(sigma_j)
            } else {
                shrink
            };
            bound = bound.max(p * shrink_j * (self.cost[j] + sigma_j * min_out));
        }
        bound
    }
}

/// Incrementally-maintained search-path state: placed/remaining sets and
/// the inflation/shrink selectivity products over the remaining services.
///
/// Products are kept as **stacks** aligned with the search path: a
/// [`push`](Self::push) appends one value derived from the previous top in
/// `O(1)`, and a [`pop`](Self::pop) truncates, restoring the pre-push value
/// bit-for-bit. Exported alongside [`SearchContext`] for benchmarks; not a
/// stability-guaranteed API.
#[derive(Debug, Clone)]
pub struct IncrementalBounds {
    placed: BitSet,
    remaining: BitSet,
    /// `products[d]` = the remaining-set products after `d` pushes; one
    /// stack of one small `Copy` frame keeps a push to a single append.
    products: Vec<Products>,
}

/// One stack frame of remaining-set selectivity products.
#[derive(Debug, Clone, Copy)]
struct Products {
    /// `Π σ>1` over the remaining services.
    inflation: f64,
    /// `Π 0<σ<1` over the remaining services (zeros counted apart).
    shrink: f64,
    /// Number of remaining services with `σ == 0`.
    zero_sel: u32,
}

impl IncrementalBounds {
    /// Fresh state over `ctx`: nothing placed, everything remaining.
    pub fn new(ctx: &SearchContext) -> Self {
        let n = ctx.len();
        let mut state = IncrementalBounds {
            placed: BitSet::new(n),
            remaining: BitSet::new(n),
            products: Vec::with_capacity(n + 1),
        };
        state.reset(ctx);
        state
    }

    /// Returns to the nothing-placed state in `O(n / 64)`.
    pub fn reset(&mut self, ctx: &SearchContext) {
        self.placed.clear();
        self.remaining.insert_all();
        self.products.clear();
        self.products.push(Products {
            inflation: ctx.total_inflation,
            shrink: ctx.total_shrink,
            zero_sel: ctx.total_zero_sel,
        });
    }

    #[inline]
    fn top(&self) -> &Products {
        self.products.last().expect("stack never empty")
    }

    /// Marks `j` placed, dividing its selectivity out of the remaining
    /// products. `O(1)`.
    #[inline]
    pub fn push(&mut self, ctx: &SearchContext, j: usize) {
        debug_assert!(!self.placed.contains(j), "push of already-placed service {j}");
        self.placed.insert(j);
        self.remaining.remove(j);
        let s = ctx.selectivity[j];
        let mut frame = *self.top();
        if s > 1.0 {
            frame.inflation /= s;
        } else if s == 0.0 {
            frame.zero_sel -= 1;
        } else if s < 1.0 {
            frame.shrink /= s;
        }
        self.products.push(frame);
    }

    /// Unplaces `j` (the most recently pushed service), restoring the
    /// previous products exactly by truncating the stack. `O(1)`.
    #[inline]
    pub fn pop(&mut self, j: usize) {
        debug_assert!(self.placed.contains(j), "pop of unplaced service {j}");
        debug_assert!(self.products.len() > 1, "pop without matching push");
        self.placed.remove(j);
        self.remaining.insert(j);
        self.products.pop();
    }

    /// Whether service `j` is placed.
    #[inline]
    pub fn is_placed(&self, j: usize) -> bool {
        self.placed.contains(j)
    }

    /// The placed set (for precedence-readiness checks).
    #[inline]
    pub fn placed(&self) -> &BitSet {
        &self.placed
    }

    /// The remaining set `R` (complement of placed).
    #[inline]
    pub fn remaining(&self) -> &BitSet {
        &self.remaining
    }

    /// Number of placed services.
    #[inline]
    pub fn placed_len(&self) -> usize {
        self.products.len() - 1
    }

    /// `Π σ_j` over remaining services with `σ_j > 1` (the proliferative
    /// inflation factor of `ε̄`).
    #[inline]
    pub fn inflation(&self) -> f64 {
        self.top().inflation
    }

    /// `Π σ_j` over remaining services with `σ_j < 1` (the shrink factor
    /// of the completion lower bound; `0.0` when a remaining selectivity
    /// is zero, matching the closed-form product).
    #[inline]
    pub fn shrink(&self) -> f64 {
        let top = self.top();
        if top.zero_sel > 0 {
            0.0
        } else {
            top.shrink
        }
    }

    /// The shrink product with one remaining factor `sigma ∈ (0, 1)`
    /// divided back out (the per-service `shrink_j` of the lower bound).
    #[inline]
    fn shrink_excluding(&self, sigma: f64) -> f64 {
        let top = self.top();
        if top.zero_sel > 0 {
            0.0
        } else {
            top.shrink / sigma
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::bounds;
    use crate::comm::CommMatrix;
    use crate::service::Service;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut StdRng, n: usize, proliferative: bool) -> QueryInstance {
        let services: Vec<Service> = (0..n)
            .map(|_| {
                let sigma_max = if proliferative { 3.0 } else { 1.0 };
                let sigma = if rng.gen_bool(0.1) { 0.0 } else { rng.gen_range(0.05..sigma_max) };
                Service::new(rng.gen_range(0.01..5.0), sigma)
            })
            .collect();
        let comm =
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..4.0) });
        let sink: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        QueryInstance::builder().services(services).comm(comm).sink(sink).build().unwrap()
    }

    fn assert_within(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0),
            "{what}: incremental {a} vs reference {b}"
        );
    }

    /// Closed-form inflation product over the unplaced services.
    fn reference_inflation(inst: &QueryInstance, placed: &BitSet) -> f64 {
        let mut inflation = 1.0;
        for j in 0..inst.len() {
            if !placed.contains(j) && inst.selectivity(j) > 1.0 {
                inflation *= inst.selectivity(j);
            }
        }
        inflation
    }

    /// Closed-form shrink product over the unplaced services (zeros
    /// collapse the product, as in `completion_lower_bound`).
    fn reference_shrink(inst: &QueryInstance, placed: &BitSet) -> f64 {
        let mut shrink = 1.0;
        for j in 0..inst.len() {
            if !placed.contains(j) && inst.selectivity(j) < 1.0 {
                shrink *= inst.selectivity(j);
            }
        }
        shrink
    }

    /// Closed-form `max(max_{l∈R∖{u}} t_{u,l})` with a `0.0` floor, and
    /// the matching min with a `+∞` floor.
    fn reference_row_extrema(inst: &QueryInstance, placed: &BitSet, u: usize) -> (f64, f64) {
        let (mut max_t, mut min_t) = (0.0_f64, f64::INFINITY);
        for l in 0..inst.len() {
            if l != u && !placed.contains(l) {
                max_t = max_t.max(inst.transfer(u, l));
                min_t = min_t.min(inst.transfer(u, l));
            }
        }
        (max_t, min_t)
    }

    /// Compares every incremental quantity against the closed-form
    /// oracles at the current search position.
    fn check_against_reference(
        inst: &QueryInstance,
        ctx: &SearchContext,
        state: &IncrementalBounds,
        plan: &[usize],
        row_max: &[f64],
    ) {
        let n = inst.len();
        let placed = state.placed();
        assert_eq!(state.placed_len(), plan.len());
        for j in 0..n {
            assert_eq!(placed.contains(j), plan.contains(&j), "placed set tracks the plan");
            assert_eq!(
                state.remaining().contains(j),
                !plan.contains(&j),
                "remaining is the complement"
            );
        }

        assert_within(state.inflation(), reference_inflation(inst, placed), "inflation");
        assert_within(state.shrink(), reference_shrink(inst, placed), "shrink");

        // Row extrema over the remaining set are exact (same floats, found
        // through the sorted rows instead of a scan).
        for u in 0..n {
            let (max_ref, min_ref) = reference_row_extrema(inst, placed, u);
            assert_eq!(ctx.max_transfer_to(u, state.remaining()), max_ref, "row {u} max");
            assert_eq!(ctx.min_transfer_to(u, state.remaining()), min_ref, "row {u} min");
        }

        // Full bounds, against the retained closed-form implementations.
        if !plan.is_empty() && plan.len() < n {
            let last = *plan.last().unwrap();
            let mut prefix_last = 1.0;
            for &s in &plan[..plan.len() - 1] {
                prefix_last *= inst.selectivity(s);
            }
            for tight in [true, false] {
                let fast = ctx.epsilon_bar(state, last, prefix_last, tight);
                let slow = bounds::epsilon_bar(inst, placed, last, prefix_last, tight, row_max);
                assert_within(fast, slow, &format!("ε̄ tight={tight}"));
            }
            let fast = ctx.completion_lower_bound(state, last, prefix_last);
            let slow = bounds::completion_lower_bound(inst, placed, last, prefix_last);
            assert_within(fast, slow, "completion lower bound");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Random push/pop/rewind walks: the incremental engine tracks the
        /// closed-form oracles at every step, in both selectivity regimes.
        #[test]
        fn incremental_engine_matches_reference_oracles(
            seed in 0u64..u64::MAX,
            n in 3usize..10,
            proliferative in 0u32..2,
            steps in 20usize..60,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, n, proliferative == 1);
            let ctx = SearchContext::new(&inst);
            let row_max = bounds::row_maxima(&inst);
            let mut state = IncrementalBounds::new(&ctx);
            let mut plan: Vec<usize> = Vec::new();

            check_against_reference(&inst, &ctx, &state, &plan, &row_max);
            for _ in 0..steps {
                match rng.gen_range(0..4u32) {
                    // Push a random unplaced service.
                    0 | 1 => {
                        if plan.len() < n {
                            let unplaced: Vec<usize> = state.remaining().iter().collect();
                            let j = unplaced[rng.gen_range(0..unplaced.len())];
                            state.push(&ctx, j);
                            plan.push(j);
                        }
                    }
                    // Pop the most recent service.
                    2 => {
                        if let Some(j) = plan.pop() {
                            state.pop(j);
                        }
                    }
                    // Rewind (multi-level truncation, as after Lemma 3).
                    _ => {
                        if !plan.is_empty() {
                            let keep = rng.gen_range(0..plan.len());
                            while plan.len() > keep {
                                state.pop(plan.pop().unwrap());
                            }
                        }
                    }
                }
                check_against_reference(&inst, &ctx, &state, &plan, &row_max);
            }

            // A reset must return to the pristine state.
            state.reset(&ctx);
            plan.clear();
            check_against_reference(&inst, &ctx, &state, &plan, &row_max);
        }
    }

    #[test]
    fn context_mirrors_instance_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = random_instance(&mut rng, 6, true);
        let ctx = SearchContext::new(&inst);
        assert_eq!(ctx.len(), 6);
        assert!(!ctx.is_empty());
        let row_max = bounds::row_maxima(&inst);
        for (i, &expected_row_max) in row_max.iter().enumerate() {
            assert_eq!(ctx.cost(i), inst.cost(i));
            assert_eq!(ctx.selectivity(i), inst.selectivity(i));
            assert_eq!(ctx.sink_cost(i), inst.sink_cost(i));
            assert_eq!(ctx.row_max(i), expected_row_max);
            for j in 0..6 {
                assert_eq!(ctx.transfer(i, j), inst.transfer(i, j));
            }
        }
    }

    #[test]
    fn sorted_rows_are_permutations_in_transfer_order() {
        let mut rng = StdRng::seed_from_u64(11);
        let inst = random_instance(&mut rng, 7, false);
        let ctx = SearchContext::new(&inst);
        for u in 0..7 {
            let asc = ctx.successors_ascending(u);
            let desc = ctx.successors_descending(u);
            assert_eq!(asc.len(), 6);
            let mut sorted: Vec<u32> = asc.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7u32).filter(|&j| j as usize != u).collect::<Vec<_>>());
            assert!(asc
                .windows(2)
                .all(|w| ctx.transfer(u, w[0] as usize) <= ctx.transfer(u, w[1] as usize)));
            assert!(desc
                .windows(2)
                .all(|w| ctx.transfer(u, w[0] as usize) >= ctx.transfer(u, w[1] as usize)));
        }
    }

    #[test]
    fn zero_selectivity_collapses_shrink_until_placed() {
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 0.0), Service::new(1.0, 0.5), Service::new(1.0, 2.0)],
            CommMatrix::uniform(3, 1.0),
        )
        .unwrap();
        let ctx = SearchContext::new(&inst);
        let mut state = IncrementalBounds::new(&ctx);
        assert_eq!(state.shrink(), 0.0, "zero σ remaining collapses the product");
        assert!((state.inflation() - 2.0).abs() < 1e-15);
        state.push(&ctx, 0);
        assert!((state.shrink() - 0.5).abs() < 1e-15, "placing the zero restores the product");
        state.pop(0);
        assert_eq!(state.shrink(), 0.0);
    }

    #[test]
    fn single_service_context_is_degenerate_but_valid() {
        let inst = QueryInstance::builder()
            .service(Service::new(1.0, 0.5))
            .comm(CommMatrix::zeros(1))
            .sink(vec![2.0])
            .build()
            .unwrap();
        let ctx = SearchContext::new(&inst);
        assert_eq!(ctx.successors_ascending(0).len(), 0);
        assert_eq!(ctx.row_max(0), 2.0);
        let state = IncrementalBounds::new(&ctx);
        assert_eq!(ctx.max_transfer_to(0, state.remaining()), 0.0);
        assert_eq!(ctx.min_transfer_to(0, state.remaining()), f64::INFINITY);
    }
}
