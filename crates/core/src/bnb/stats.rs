//! Search statistics: the raw material of the pruning-effectiveness
//! experiments (E3).

use std::fmt;
use std::time::Duration;

/// Counters collected during one branch-and-bound run.
///
/// `nodes_visited` counts partial plans whose node checks ran;
/// `nodes_expanded` counts service appends. A plain exhaustive enumeration
/// of `n!` orderings visits `Σ n!/k!` prefixes, so the ratio of
/// `nodes_visited` to that quantity measures pruning effectiveness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Partial plans whose entry checks were evaluated.
    pub nodes_visited: u64,
    /// Services appended to partial plans.
    pub nodes_expanded: u64,
    /// Incumbent updates (improved plans found, incl. Lemma-2 closures).
    pub candidates_recorded: u64,
    /// Lemma-2 closures (`ε ≥ ε̄` nodes whose completions all cost `ε`).
    pub lemma2_closures: u64,
    /// Lemma-3 back-jumps executed.
    pub backjumps: u64,
    /// Levels skipped by back-jumps beyond a plain backtrack.
    pub backjump_levels_saved: u64,
    /// Nodes pruned because `ε ≥ ρ` (Lemma 1).
    pub prunes_incumbent: u64,
    /// Nodes pruned by the optimistic completion bound (extension).
    pub prunes_lower_bound: u64,
    /// Root pairs whose subtree was searched.
    pub roots_explored: u64,
    /// Root pairs skipped because their pair cost already reached `ρ`.
    pub roots_pruned: u64,
    /// Deepest partial plan reached.
    pub max_depth: usize,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Whether the search ran to completion (no node/time budget hit), so
    /// the returned plan is proven optimal.
    pub proven_optimal: bool,
}

impl SearchStats {
    /// Folds another run's statistics into `self`: counters add,
    /// `max_depth` takes the maximum, `elapsed` accumulates (per-worker
    /// search time; [`optimize_parallel`](crate::optimize_parallel)
    /// overwrites the merged total with wall-clock time at the end), and
    /// `proven_optimal` holds only if it held on both sides.
    ///
    /// The body destructures `other` exhaustively, so adding a counter to
    /// [`SearchStats`] without deciding how it merges is a compile error —
    /// new counters cannot be silently dropped from the parallel path.
    pub fn merge(&mut self, other: &SearchStats) {
        let SearchStats {
            nodes_visited,
            nodes_expanded,
            candidates_recorded,
            lemma2_closures,
            backjumps,
            backjump_levels_saved,
            prunes_incumbent,
            prunes_lower_bound,
            roots_explored,
            roots_pruned,
            max_depth,
            elapsed,
            proven_optimal,
        } = other;
        self.nodes_visited += nodes_visited;
        self.nodes_expanded += nodes_expanded;
        self.candidates_recorded += candidates_recorded;
        self.lemma2_closures += lemma2_closures;
        self.backjumps += backjumps;
        self.backjump_levels_saved += backjump_levels_saved;
        self.prunes_incumbent += prunes_incumbent;
        self.prunes_lower_bound += prunes_lower_bound;
        self.roots_explored += roots_explored;
        self.roots_pruned += roots_pruned;
        self.max_depth = self.max_depth.max(*max_depth);
        self.elapsed += *elapsed;
        self.proven_optimal &= proven_optimal;
    }

    /// Node throughput of the search: `nodes_visited` per second of
    /// `elapsed` wall-clock time (`0.0` when no time was recorded). The
    /// headline measure of the per-node bound-evaluation cost, reported by
    /// the `bounds_eval` / `pruning_ablation` benches.
    pub fn nodes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.nodes_visited as f64 / secs
        } else {
            0.0
        }
    }

    /// Total prefixes a pruning-free depth-first enumeration of all
    /// feasible plans would visit for `n` services, `Σ_{k=1..n} n!/(n-k)!`
    /// (ignoring precedence, which only shrinks it). Saturates at
    /// `u64::MAX`; useful as the denominator of pruning ratios for
    /// `n ≲ 20`.
    pub fn unpruned_prefix_count(n: usize) -> u64 {
        let mut total: u64 = 0;
        let mut falling: u64 = 1;
        for k in 0..n {
            falling = match falling.checked_mul((n - k) as u64) {
                Some(v) => v,
                None => return u64::MAX,
            };
            total = match total.checked_add(falling) {
                Some(v) => v,
                None => return u64::MAX,
            };
        }
        total
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes visited      {:>12}", self.nodes_visited)?;
        writeln!(f, "nodes expanded     {:>12}", self.nodes_expanded)?;
        writeln!(f, "incumbent updates  {:>12}", self.candidates_recorded)?;
        writeln!(f, "lemma-2 closures   {:>12}", self.lemma2_closures)?;
        writeln!(
            f,
            "lemma-3 backjumps  {:>12} (saved {} levels)",
            self.backjumps, self.backjump_levels_saved
        )?;
        writeln!(f, "incumbent prunes   {:>12}", self.prunes_incumbent)?;
        writeln!(f, "lower-bound prunes {:>12}", self.prunes_lower_bound)?;
        writeln!(
            f,
            "roots explored     {:>12} (pruned {})",
            self.roots_explored, self.roots_pruned
        )?;
        writeln!(f, "max depth          {:>12}", self.max_depth)?;
        writeln!(f, "elapsed            {:>12?}", self.elapsed)?;
        writeln!(f, "node throughput    {:>12.0} nodes/s", self.nodes_per_sec())?;
        write!(f, "proven optimal     {:>12}", self.proven_optimal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpruned_counts_small() {
        // n=1: 1 prefix; n=2: 2 + 2 = 4; n=3: 3 + 6 + 6 = 15.
        assert_eq!(SearchStats::unpruned_prefix_count(0), 0);
        assert_eq!(SearchStats::unpruned_prefix_count(1), 1);
        assert_eq!(SearchStats::unpruned_prefix_count(2), 4);
        assert_eq!(SearchStats::unpruned_prefix_count(3), 15);
        assert_eq!(SearchStats::unpruned_prefix_count(4), 4 + 12 + 24 + 24);
    }

    #[test]
    fn unpruned_count_saturates() {
        assert_eq!(SearchStats::unpruned_prefix_count(100), u64::MAX);
    }

    #[test]
    fn merge_covers_every_field() {
        let a = SearchStats {
            nodes_visited: 10,
            nodes_expanded: 9,
            candidates_recorded: 8,
            lemma2_closures: 7,
            backjumps: 6,
            backjump_levels_saved: 5,
            prunes_incumbent: 4,
            prunes_lower_bound: 3,
            roots_explored: 2,
            roots_pruned: 1,
            max_depth: 4,
            elapsed: Duration::from_millis(100),
            proven_optimal: true,
        };
        let b = SearchStats {
            nodes_visited: 100,
            nodes_expanded: 90,
            candidates_recorded: 80,
            lemma2_closures: 70,
            backjumps: 60,
            backjump_levels_saved: 50,
            prunes_incumbent: 40,
            prunes_lower_bound: 30,
            roots_explored: 20,
            roots_pruned: 10,
            max_depth: 3,
            elapsed: Duration::from_millis(50),
            proven_optimal: true,
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.nodes_visited, 110);
        assert_eq!(merged.nodes_expanded, 99);
        assert_eq!(merged.candidates_recorded, 88);
        assert_eq!(merged.lemma2_closures, 77);
        assert_eq!(merged.backjumps, 66);
        assert_eq!(merged.backjump_levels_saved, 55);
        assert_eq!(merged.prunes_incumbent, 44);
        assert_eq!(merged.prunes_lower_bound, 33);
        assert_eq!(merged.roots_explored, 22);
        assert_eq!(merged.roots_pruned, 11);
        assert_eq!(merged.max_depth, 4, "max depth takes the maximum");
        assert_eq!(merged.elapsed, Duration::from_millis(150));
        assert!(merged.proven_optimal);

        // One interrupted side poisons the merged optimality claim.
        merged.merge(&SearchStats { proven_optimal: false, ..SearchStats::default() });
        assert!(!merged.proven_optimal);
    }

    #[test]
    fn nodes_per_sec_is_guarded_against_zero_elapsed() {
        let mut stats = SearchStats { nodes_visited: 500, ..SearchStats::default() };
        assert_eq!(stats.nodes_per_sec(), 0.0);
        stats.elapsed = Duration::from_millis(250);
        assert!((stats.nodes_per_sec() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_counters() {
        let stats =
            SearchStats { nodes_visited: 42, proven_optimal: true, ..SearchStats::default() };
        let text = stats.to_string();
        for needle in ["nodes visited", "lemma-2", "backjumps", "proven optimal", "42"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
