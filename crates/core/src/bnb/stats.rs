//! Search statistics: the raw material of the pruning-effectiveness
//! experiments (E3).

use std::fmt;
use std::time::Duration;

/// Counters collected during one branch-and-bound run.
///
/// `nodes_visited` counts partial plans whose node checks ran;
/// `nodes_expanded` counts service appends. A plain exhaustive enumeration
/// of `n!` orderings visits `Σ n!/k!` prefixes, so the ratio of
/// `nodes_visited` to that quantity measures pruning effectiveness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Partial plans whose entry checks were evaluated.
    pub nodes_visited: u64,
    /// Services appended to partial plans.
    pub nodes_expanded: u64,
    /// Incumbent updates (improved plans found, incl. Lemma-2 closures).
    pub candidates_recorded: u64,
    /// Lemma-2 closures (`ε ≥ ε̄` nodes whose completions all cost `ε`).
    pub lemma2_closures: u64,
    /// Lemma-3 back-jumps executed.
    pub backjumps: u64,
    /// Levels skipped by back-jumps beyond a plain backtrack.
    pub backjump_levels_saved: u64,
    /// Nodes pruned because `ε ≥ ρ` (Lemma 1).
    pub prunes_incumbent: u64,
    /// Nodes pruned by the optimistic completion bound (extension).
    pub prunes_lower_bound: u64,
    /// Root pairs whose subtree was searched.
    pub roots_explored: u64,
    /// Root pairs skipped because their pair cost already reached `ρ`.
    pub roots_pruned: u64,
    /// Deepest partial plan reached.
    pub max_depth: usize,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Whether the search ran to completion (no node/time budget hit), so
    /// the returned plan is proven optimal.
    pub proven_optimal: bool,
}

impl SearchStats {
    /// Total prefixes a pruning-free depth-first enumeration of all
    /// feasible plans would visit for `n` services, `Σ_{k=1..n} n!/(n-k)!`
    /// (ignoring precedence, which only shrinks it). Saturates at
    /// `u64::MAX`; useful as the denominator of pruning ratios for
    /// `n ≲ 20`.
    pub fn unpruned_prefix_count(n: usize) -> u64 {
        let mut total: u64 = 0;
        let mut falling: u64 = 1;
        for k in 0..n {
            falling = match falling.checked_mul((n - k) as u64) {
                Some(v) => v,
                None => return u64::MAX,
            };
            total = match total.checked_add(falling) {
                Some(v) => v,
                None => return u64::MAX,
            };
        }
        total
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes visited      {:>12}", self.nodes_visited)?;
        writeln!(f, "nodes expanded     {:>12}", self.nodes_expanded)?;
        writeln!(f, "incumbent updates  {:>12}", self.candidates_recorded)?;
        writeln!(f, "lemma-2 closures   {:>12}", self.lemma2_closures)?;
        writeln!(
            f,
            "lemma-3 backjumps  {:>12} (saved {} levels)",
            self.backjumps, self.backjump_levels_saved
        )?;
        writeln!(f, "incumbent prunes   {:>12}", self.prunes_incumbent)?;
        writeln!(f, "lower-bound prunes {:>12}", self.prunes_lower_bound)?;
        writeln!(
            f,
            "roots explored     {:>12} (pruned {})",
            self.roots_explored, self.roots_pruned
        )?;
        writeln!(f, "max depth          {:>12}", self.max_depth)?;
        writeln!(f, "elapsed            {:>12?}", self.elapsed)?;
        write!(f, "proven optimal     {:>12}", self.proven_optimal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpruned_counts_small() {
        // n=1: 1 prefix; n=2: 2 + 2 = 4; n=3: 3 + 6 + 6 = 15.
        assert_eq!(SearchStats::unpruned_prefix_count(0), 0);
        assert_eq!(SearchStats::unpruned_prefix_count(1), 1);
        assert_eq!(SearchStats::unpruned_prefix_count(2), 4);
        assert_eq!(SearchStats::unpruned_prefix_count(3), 15);
        assert_eq!(SearchStats::unpruned_prefix_count(4), 4 + 12 + 24 + 24);
    }

    #[test]
    fn unpruned_count_saturates() {
        assert_eq!(SearchStats::unpruned_prefix_count(100), u64::MAX);
    }

    #[test]
    fn display_mentions_all_counters() {
        let stats =
            SearchStats { nodes_visited: 42, proven_optimal: true, ..SearchStats::default() };
        let text = stats.to_string();
        for needle in ["nodes visited", "lemma-2", "backjumps", "proven optimal", "42"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
