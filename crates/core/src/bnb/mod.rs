//! The paper's contribution: branch-and-bound search for the optimal
//! linear service ordering under the bottleneck cost metric.
//!
//! # Lemma-to-code map
//!
//! | Paper | Code |
//! |-------|------|
//! | Lemma 1 — `ε` never decreases along a prefix | `ε` is a running max over finalized terms (the searcher keeps it in the `eps_fin` stack); nodes with `ε ≥ ρ` are pruned, and root pairs are abandoned once their pair cost reaches `ρ` |
//! | Lemma 2 — `ε ≥ ε̄` fixes the cost of all completions | [`BnbConfig::use_epsilon_bar`]; `ε̄` computed in `bounds::epsilon_bar`, including the proliferative-selectivity modification |
//! | Lemma 3 — pruning up to the bottleneck service | [`BnbConfig::use_backjump`]; the search rewinds to the earliest position whose finalized term reaches `ρ`, which is sound because successors are expanded cheapest-transfer-first |
//!
//! The private `search` module's source documents the full search-tree
//! layout, per-node checks, and the back-jumping mechanics.

mod bounds;
mod config;
mod search;
mod stats;

pub use config::BnbConfig;
pub use search::{optimize, optimize_parallel, optimize_with, BnbResult};
pub use stats::SearchStats;
