//! The paper's contribution: branch-and-bound search for the optimal
//! linear service ordering under the bottleneck cost metric.
//!
//! # Lemma-to-code map
//!
//! | Paper | Code |
//! |-------|------|
//! | Lemma 1 — `ε` never decreases along a prefix | `ε` is a running max over finalized terms (the searcher keeps it in the `eps_fin` stack); nodes with `ε ≥ ρ` are pruned, and root pairs are abandoned once their pair cost reaches `ρ` |
//! | Lemma 2 — `ε ≥ ε̄` fixes the cost of all completions | [`BnbConfig::use_epsilon_bar`]; `ε̄` evaluated by [`SearchContext::epsilon_bar`] from the incremental engine state, including the proliferative-selectivity modification |
//! | Lemma 3 — pruning up to the bottleneck service | [`BnbConfig::use_backjump`]; the search rewinds to the earliest position whose finalized term reaches `ρ`, which is sound because successors are expanded cheapest-transfer-first |
//!
//! # Architecture of the hot path
//!
//! Evaluating `ε̄` (and the optional completion lower bound) at every node
//! *is* the optimizer's throughput ceiling, so the per-node work is split
//! into two pieces (see [`context`]):
//!
//! * **[`SearchContext`]** — immutable, built once per `optimize` call and
//!   shared by reference across all [`optimize_parallel`] workers: flat
//!   structure-of-arrays copies of cost/selectivity/sink, the row-major
//!   transfer matrix, loose-mode row maxima, and per-row successor lists
//!   pre-sorted ascending (candidate expansion, lower-bound minima) and
//!   descending (tight `ε̄` maxima). "Max/min transfer into the remaining
//!   set" is a first-remaining-entry scan of a sorted row (`O(1)` while
//!   the row head is unplaced, `O(depth)` worst case) instead of an
//!   unconditional `O(n)` loop, and the sorted rows double as the
//!   cheapest-transfer-first expansion order that makes Lemma 3 sound.
//! * **[`IncrementalBounds`]** — mutable per-worker state updated in `O(1)`
//!   on every push/pop: the placed/remaining bit sets (iterated word-level)
//!   and stacks of the inflation (`Π σ>1`) and shrink (`Π σ<1`) products
//!   over the remaining services, so no bound evaluation ever rebuilds a
//!   product from scratch. Pops truncate the stacks, restoring pre-push
//!   values exactly.
//!
//! The original closed-form bound implementations are retained in a
//! test-only `bounds` module as reference oracles; property tests pin the
//! incremental engine to them within `1e-12` over random push/pop/rewind
//! sequences.
//!
//! The private `search` module's source documents the full search-tree
//! layout, per-node checks, and the back-jumping mechanics.

#[cfg(test)]
mod bounds;
mod config;
pub mod context;
mod search;
mod stats;

pub use config::BnbConfig;
pub use context::{IncrementalBounds, SearchContext};
pub use search::{optimize, optimize_parallel, optimize_with, BnbResult};
pub use stats::SearchStats;
