//! The branch-and-bound search.
//!
//! # Search tree
//!
//! * **Roots** are ordered service pairs `(a, b)` sorted by pair cost
//!   `w(a,b) = c_a + σ_a·t_{a,b}` — the (finalized) first term of any plan
//!   beginning `a, b`. Once the next unexplored pair satisfies `w ≥ ρ`
//!   (the incumbent), no better plan can exist (Lemma 1) and the search
//!   exits. This realizes the paper's "at most n(n−1) prefixes of size
//!   two" observation.
//! * A node of the tree is a partial plan; the child chosen at *level* `m`
//!   fills plan position `m`. Successor candidates of the last service `u`
//!   are tried in **ascending `t_{u,j}`** ("the less expensive WS with
//!   respect to the last service that has not been investigated yet").
//!   This ordering is what makes Lemma-3 pruning sound: once a finalized
//!   term of `u` reaches `ρ`, every untried successor of `u` yields an
//!   even larger term.
//!
//! # Per-node checks (in order)
//!
//! 1. `ε ≥ ρ` → prune (Lemma 1, monotone `ε`), with Lemma-3 back-jump.
//! 2. complete plan → candidate, update `ρ`, back-jump.
//! 3. `ε ≥ ε̄` → Lemma-2 closure: every completion costs exactly `ε`;
//!    record one (greedy feasible completion), update `ρ`, back-jump.
//! 4. optional optimistic completion bound `≥ ρ` → prune (extension).
//!
//! # Back-jumping (Lemma 3)
//!
//! After a candidate/prune, the search scans the partial plan's finalized
//! terms for the **earliest** position `b` with `term(b) ≥ ρ` and resumes
//! choosing position `b` directly: every completion of the prefix up to
//! and including the bottleneck service would finalize `b`'s term with an
//! untried (hence at least as expensive) successor, so the whole subtree
//! is dominated. The prefixes discarded this way are exactly the paper's
//! `V` structure; we count them in [`SearchStats`] instead of storing
//! them.

use crate::bitset::BitSet;
use crate::bnb::config::BnbConfig;
use crate::bnb::context::{IncrementalBounds, SearchContext};
use crate::bnb::stats::SearchStats;
use crate::cost::bottleneck_cost;
use crate::instance::QueryInstance;
use crate::plan::Plan;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Outcome of a branch-and-bound run: the best plan found, its bottleneck
/// cost, and the search statistics.
#[derive(Debug, Clone)]
pub struct BnbResult {
    plan: Plan,
    cost: f64,
    stats: SearchStats,
}

impl BnbResult {
    /// The best plan found.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The plan's bottleneck cost (Eq. 1), recomputed from scratch.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Statistics of the search.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Whether the search completed within its budgets, proving optimality.
    pub fn is_proven_optimal(&self) -> bool {
        self.stats.proven_optimal
    }

    /// Consumes the result, returning the plan.
    pub fn into_plan(self) -> Plan {
        self.plan
    }
}

/// Finds the optimal linear ordering with the paper's default
/// configuration.
///
/// # Examples
///
/// ```
/// use dsq_core::{optimize, CommMatrix, QueryInstance, Service};
///
/// let inst = QueryInstance::from_parts(
///     vec![Service::new(1.0, 0.2), Service::new(1.0, 0.9)],
///     CommMatrix::uniform(2, 0.5),
/// )?;
/// let result = optimize(&inst);
/// assert!(result.is_proven_optimal());
/// assert_eq!(result.plan().len(), 2);
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
pub fn optimize(instance: &QueryInstance) -> BnbResult {
    optimize_with(instance, &BnbConfig::paper())
}

/// Finds the optimal linear ordering under the given configuration.
///
/// Every configuration returns an optimal plan unless a node or time
/// budget interrupts the search, in which case the best plan found so far
/// is returned with [`BnbResult::is_proven_optimal`] `== false`.
pub fn optimize_with(instance: &QueryInstance, config: &BnbConfig) -> BnbResult {
    let ctx = SearchContext::new(instance);
    Searcher::new(instance, &ctx, config.clone()).run()
}

/// Finds the optimal linear ordering using `threads` worker threads that
/// share one incumbent.
///
/// Root pairs (already sorted by pair cost) are claimed from a shared
/// queue; each worker runs the same lemma-driven depth-first search with
/// its incumbent `ρ` synchronized through an atomic cell, so a bound
/// found by one worker immediately prunes the others. The returned
/// statistics are summed across workers; `elapsed` is wall-clock time.
///
/// Sharing `ρ` can only shrink it faster than the sequential search, so
/// every pruning rule stays sound and the result is identical in cost.
/// When the search completes (no budget interruption), the returned
/// **plan** is also deterministic: a final replay pass with the proven
/// optimal cost as a pinned bound re-derives the plan the *sequential*
/// search order records first, so the result does not depend on worker
/// scheduling or thread count. Node/time budgets apply **per worker**,
/// and a budget-interrupted run skips the replay (its plan is then
/// whichever incumbent happened to be best).
///
/// # Examples
///
/// ```
/// use dsq_core::{optimize, optimize_parallel, BnbConfig};
/// use std::num::NonZeroUsize;
///
/// # let inst = dsq_core::QueryInstance::from_parts(
/// #     (0..8).map(|i| dsq_core::Service::new(1.0 + i as f64 * 0.3, 0.8)).collect(),
/// #     dsq_core::CommMatrix::from_fn(8, |i, j| ((3 * i + j) % 5) as f64 * 0.2),
/// # ).unwrap();
/// let sequential = optimize(&inst);
/// let parallel = optimize_parallel(&inst, &BnbConfig::paper(), NonZeroUsize::new(4).unwrap());
/// assert_eq!(sequential.cost(), parallel.cost());
/// ```
pub fn optimize_parallel(
    instance: &QueryInstance,
    config: &BnbConfig,
    threads: NonZeroUsize,
) -> BnbResult {
    let threads = threads.get().min(instance.len().max(1));
    if threads <= 1 || instance.len() <= 2 {
        return optimize_with(instance, config);
    }
    let started = Instant::now();
    let next_root = AtomicUsize::new(0);
    // The cache-friendly context (flat parameter arrays, sorted successor
    // rows) and the globally sorted root list are built once and shared by
    // every worker, instead of paying the O(n² log n) setup per thread.
    let ctx = SearchContext::new(instance);
    let setup = Searcher::new(instance, &ctx, config.clone());
    let roots = setup.sorted_roots();
    // Warm start: the seed plan bounds every worker from the first node
    // (workers pull it through the shared cell) and survives as the
    // result if nothing beats it.
    let incumbent_seed = setup.incumbent_seed();
    let shared_rho = AtomicU64::new(match &incumbent_seed {
        Some((_, cost)) => cost.to_bits(),
        None => f64::INFINITY.to_bits(),
    });

    // (best order + cost, per-worker stats).
    type WorkerOutcome = (Option<(Vec<usize>, f64)>, SearchStats);
    let worker_results: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let ctx = &ctx;
                let roots = &roots;
                let shared_rho = &shared_rho;
                let next_root = &next_root;
                let cfg = config.clone();
                scope.spawn(move || {
                    let mut searcher = Searcher::new(instance, ctx, cfg);
                    searcher.shared_rho = Some(shared_rho);
                    if searcher.cfg.seed_with_greedy {
                        if let Some((order, cost)) = searcher.greedy_plan() {
                            searcher.publish_incumbent(cost);
                            searcher.rho = cost;
                            searcher.best = Some(order);
                        }
                    }
                    loop {
                        let idx = next_root.fetch_add(1, Ordering::Relaxed);
                        if idx >= roots.len() {
                            break;
                        }
                        let (a, b, w) = roots[idx];
                        searcher.sync_rho();
                        if w >= searcher.rho {
                            // Roots are sorted: nothing later can help.
                            searcher.stats.roots_pruned += 1;
                            break;
                        }
                        searcher.stats.roots_explored += 1;
                        searcher.explore_root(a, b, w);
                        if searcher.interrupted {
                            break;
                        }
                    }
                    let best = searcher.best.take().map(|order| {
                        let plan = Plan::new(order.clone()).expect("valid permutation");
                        let cost = bottleneck_cost(instance, &plan);
                        (order, cost)
                    });
                    searcher.stats.proven_optimal = !searcher.interrupted;
                    (best, searcher.stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker does not panic")).collect()
    });

    let mut stats = SearchStats { proven_optimal: true, ..SearchStats::default() };
    let mut best: Option<(Vec<usize>, f64)> = incumbent_seed;
    for (candidate, worker_stats) in worker_results {
        stats.merge(&worker_stats);
        if let Some((order, cost)) = candidate {
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((order, cost));
            }
        }
    }
    let (mut order, mut cost) = best.unwrap_or_else(|| {
        let fallback = Searcher::new(instance, &ctx, config.clone());
        let (order, cost) = fallback.greedy_plan().expect("acyclic precedence admits a plan");
        stats.proven_optimal = false;
        (order, cost)
    });
    if stats.proven_optimal {
        // The workers proved `cost` optimal, but *which* optimal plan won
        // the race depends on scheduling. Replay the sequential search
        // order with the optimum as a pinned bound to pick the canonical
        // one, so results are reproducible across runs and thread counts.
        if let Some(canonical) = deterministic_optimum(instance, &ctx, config, cost) {
            let plan = Plan::new(canonical.clone()).expect("replay produces valid permutations");
            cost = bottleneck_cost(instance, &plan);
            order = canonical;
        }
    }
    stats.elapsed = started.elapsed();
    BnbResult { plan: Plan::new(order).expect("search produces valid permutations"), cost, stats }
}

/// Re-derives the canonical optimal plan for a **proven** optimal cost:
/// the plan the sequential search order records first. Runs the ordinary
/// search with the incumbent pinned to the smallest float above
/// `optimal`, so `ε ≥ ρ` prunes exactly the subtrees containing no
/// optimal plan (the bound is perfect, making the pass cheap) and the
/// first candidate recorded — cost `≤ optimal`, hence `== optimal` — is
/// the sequential winner; [`Searcher::halt_on_candidate`] stops there.
/// Greedy / warm-start seeds participate exactly as in the sequential
/// search so that an already-optimal seed is returned unchanged, keeping
/// warm and cold results bit-identical.
fn deterministic_optimum(
    instance: &QueryInstance,
    ctx: &SearchContext,
    config: &BnbConfig,
    optimal: f64,
) -> Option<Vec<usize>> {
    let cfg = BnbConfig { node_limit: None, time_limit: None, ..config.clone() };
    let mut searcher = Searcher::new(instance, ctx, cfg);
    searcher.apply_seeds();
    searcher.rho = searcher.rho.min(next_up(optimal));
    searcher.halt_on_candidate = true;
    let roots = searcher.sorted_roots();
    for &(a, b, w) in &roots {
        if searcher.halted || w >= searcher.rho {
            break;
        }
        searcher.stats.roots_explored += 1;
        searcher.explore_root(a, b, w);
    }
    searcher.best.take()
}

/// The smallest `f64` strictly greater than a non-negative finite value
/// (a stand-in for `f64::next_up`, which stabilized after this
/// workspace's minimum supported Rust version).
fn next_up(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x >= 0.0);
    f64::from_bits(x.to_bits() + 1)
}

struct Searcher<'a> {
    inst: &'a QueryInstance,
    /// Shared immutable search data: flat parameter arrays, sorted
    /// successor rows, loose-mode row maxima. Built once per optimization
    /// (and shared across parallel workers).
    ctx: &'a SearchContext,
    cfg: BnbConfig,
    n: usize,
    // --- mutable search state ---
    plan: Vec<usize>,
    /// Placed/remaining sets plus the incrementally-maintained
    /// inflation/shrink selectivity products feeding the bounds.
    state: IncrementalBounds,
    /// `prefix[k]` = Π σ of `plan[0..k]` (so `prefix[0] == 1`).
    prefix: Vec<f64>,
    /// `terms[k]` = finalized term of position `k` (`k ≤ plan.len()-2`).
    terms: Vec<f64>,
    /// `eps_fin[k]` = running max of `terms[0..=k]`.
    eps_fin: Vec<f64>,
    /// Candidate cursor per level.
    cand_idx: Vec<usize>,
    rho: f64,
    best: Option<Vec<usize>>,
    stats: SearchStats,
    started: Instant,
    interrupted: bool,
    /// Replay mode (see [`deterministic_optimum`]): stop the search at
    /// the first recorded candidate instead of exhausting the tree.
    halt_on_candidate: bool,
    /// Set once a candidate has been recorded in replay mode.
    halted: bool,
    /// Incumbent cell shared between parallel workers (bit-encoded `f64`;
    /// non-negative floats order identically to their bit patterns, so
    /// `fetch_min` on bits is a numeric min).
    shared_rho: Option<&'a AtomicU64>,
}

impl<'a> Searcher<'a> {
    fn new(inst: &'a QueryInstance, ctx: &'a SearchContext, cfg: BnbConfig) -> Self {
        let n = inst.len();
        Searcher {
            inst,
            ctx,
            cfg,
            n,
            plan: Vec::with_capacity(n),
            state: IncrementalBounds::new(ctx),
            prefix: Vec::with_capacity(n),
            terms: Vec::with_capacity(n),
            eps_fin: Vec::with_capacity(n),
            cand_idx: vec![0; n + 1],
            rho: f64::INFINITY,
            best: None,
            stats: SearchStats { proven_optimal: true, ..SearchStats::default() },
            started: Instant::now(),
            interrupted: false,
            halt_on_candidate: false,
            halted: false,
            shared_rho: None,
        }
    }

    /// The validated warm-start seed from the configuration: the seed
    /// plan's indices and its cost on **this** instance. A seed of the
    /// wrong length or violating the precedence constraints is ignored
    /// (warm starts must never make the search unsound).
    fn incumbent_seed(&self) -> Option<(Vec<usize>, f64)> {
        let plan = self.cfg.initial_incumbent.as_ref()?;
        if plan.len() != self.n {
            return None;
        }
        if let Some(dag) = self.inst.precedence() {
            if !plan.satisfies(dag) {
                return None;
            }
        }
        let cost = bottleneck_cost(self.inst, plan);
        Some((plan.indices(), cost))
    }

    /// Primes `ρ`/`best` from the configured seeds — greedy first, then
    /// the warm-start incumbent — keeping strict improvements only.
    /// Shared by [`run`](Self::run) and [`deterministic_optimum`]: the
    /// replay must mirror the main search's seeding exactly, or the
    /// warm≡cold and thread-count-determinism guarantees break.
    fn apply_seeds(&mut self) {
        if self.cfg.seed_with_greedy {
            if let Some((order, cost)) = self.greedy_plan() {
                if cost < self.rho {
                    self.rho = cost;
                    self.best = Some(order);
                }
            }
        }
        if let Some((order, cost)) = self.incumbent_seed() {
            if cost < self.rho {
                self.rho = cost;
                self.best = Some(order);
            }
        }
    }

    /// Pulls a tighter incumbent published by another worker, if any.
    fn sync_rho(&mut self) {
        if let Some(cell) = self.shared_rho {
            let global = f64::from_bits(cell.load(Ordering::Relaxed));
            if global < self.rho {
                self.rho = global;
            }
        }
    }

    /// Publishes an improved incumbent cost to the shared cell.
    fn publish_incumbent(&self, cost: f64) {
        if let Some(cell) = self.shared_rho {
            // `abs` normalizes -0.0; costs are never negative.
            cell.fetch_min(cost.abs().to_bits(), Ordering::Relaxed);
        }
    }

    /// All feasible root pairs `(a, b, w)` sorted ascending by pair cost
    /// `w = c_a + σ_a·t_{a,b}`.
    fn sorted_roots(&self) -> Vec<(usize, usize, f64)> {
        let mut roots: Vec<(usize, usize, f64)> = Vec::new();
        for a in 0..self.n {
            if !self.first_position_feasible(a) {
                continue;
            }
            for b in 0..self.n {
                if a == b || !self.second_position_feasible(a, b) {
                    continue;
                }
                let w = self.ctx.cost(a) + self.ctx.selectivity(a) * self.ctx.transfer(a, b);
                roots.push((a, b, w));
            }
        }
        roots.sort_by(|x, y| x.2.total_cmp(&y.2));
        roots
    }

    fn run(mut self) -> BnbResult {
        if self.n == 1 {
            return self.finish(vec![0]);
        }

        self.apply_seeds();

        // Root pairs sorted by pair cost (the plan's first term).
        let roots = self.sorted_roots();

        for (idx, &(a, b, w)) in roots.iter().enumerate() {
            if self.interrupted {
                break;
            }
            if w >= self.rho {
                self.stats.roots_pruned += (roots.len() - idx) as u64;
                break;
            }
            self.stats.roots_explored += 1;
            self.explore_root(a, b, w);
        }

        let order = match self.best.take() {
            Some(order) => order,
            // Budgets can interrupt before any candidate is recorded; fall
            // back to a greedy plan so callers always receive one.
            None => self.greedy_plan().expect("acyclic precedence admits a plan").0,
        };
        self.finish(order)
    }

    fn finish(mut self, order: Vec<usize>) -> BnbResult {
        self.stats.elapsed = self.started.elapsed();
        self.stats.proven_optimal = !self.interrupted;
        let plan = Plan::new(order).expect("search produces valid permutations");
        let cost = bottleneck_cost(self.inst, &plan);
        BnbResult { plan, cost, stats: self.stats }
    }

    /// Depth-first exploration of the subtree rooted at the pair `(a, b)`.
    fn explore_root(&mut self, a: usize, b: usize, w: f64) {
        self.plan.clear();
        self.state.reset(self.ctx);
        self.prefix.clear();
        self.terms.clear();
        self.eps_fin.clear();

        self.plan.extend([a, b]);
        self.state.push(self.ctx, a);
        self.state.push(self.ctx, b);
        self.prefix.extend([1.0, self.ctx.selectivity(a)]);
        self.terms.push(w);
        self.eps_fin.push(w);
        self.cand_idx[2] = 0;

        let mut entering = true;
        loop {
            if self.halted {
                return;
            }
            if self.budget_exhausted() {
                self.interrupted = true;
                return;
            }
            if entering {
                entering = false;
                if !self.enter_node() {
                    // Node was pruned or completed; `enter_node` already
                    // repositioned the search (or exhausted the root).
                    if self.plan.len() < 2 {
                        return;
                    }
                    continue;
                }
                self.cand_idx[self.plan.len()] = 0;
            }

            match self.next_child() {
                Some(j) => {
                    self.push(j);
                    entering = true;
                }
                None => {
                    // Level exhausted: abandon this node, resume the parent.
                    if !self.pop_one() {
                        return;
                    }
                }
            }
        }
    }

    /// Entry checks for the current node. Returns `true` if the node
    /// should be expanded, `false` if it was pruned/closed (in which case
    /// the plan has already been rewound; a plan shorter than 2 means the
    /// root is exhausted).
    fn enter_node(&mut self) -> bool {
        self.stats.nodes_visited += 1;
        self.sync_rho();
        let m = self.plan.len();
        self.stats.max_depth = self.stats.max_depth.max(m);
        let last = self.plan[m - 1];
        let proc_term = self.prefix[m - 1] * self.ctx.cost(last);
        let eps = self.eps_fin[m - 2].max(proc_term);

        if eps >= self.rho {
            self.stats.prunes_incumbent += 1;
            self.rewind();
            return false;
        }

        if m == self.n {
            let final_term = self.prefix[m - 1]
                * (self.ctx.cost(last) + self.ctx.selectivity(last) * self.ctx.sink_cost(last));
            let total = self.eps_fin[m - 2].max(final_term);
            if total < self.rho {
                self.rho = total;
                self.best = Some(self.plan.clone());
                self.stats.candidates_recorded += 1;
                self.publish_incumbent(total);
                if self.halt_on_candidate {
                    self.halted = true;
                }
            }
            self.rewind();
            return false;
        }

        if self.cfg.use_epsilon_bar {
            let ebar = self.ctx.epsilon_bar(
                &self.state,
                last,
                self.prefix[m - 1],
                self.cfg.tight_epsilon_bar,
            );
            if eps >= ebar {
                // Lemma 2: every completion of this prefix costs exactly ε.
                self.stats.lemma2_closures += 1;
                if eps < self.rho {
                    let full = self.greedy_completion();
                    debug_assert!(
                        {
                            let plan =
                                Plan::new(full.clone()).expect("completion is a permutation");
                            let actual = bottleneck_cost(self.inst, &plan);
                            (actual - eps).abs() <= 1e-9 * eps.max(1.0)
                        },
                        "Lemma-2 closure must equal the completion's true cost"
                    );
                    self.rho = eps;
                    self.best = Some(full);
                    self.stats.candidates_recorded += 1;
                    self.publish_incumbent(eps);
                    if self.halt_on_candidate {
                        self.halted = true;
                    }
                }
                self.rewind();
                return false;
            }
        }

        if self.cfg.use_lower_bound {
            let lb = self.ctx.completion_lower_bound(&self.state, last, self.prefix[m - 1]);
            if lb >= self.rho {
                self.stats.prunes_lower_bound += 1;
                // The bound covers every completion of this node, but says
                // nothing about siblings: plain backtrack, no back-jump.
                self.pop_one();
                return false;
            }
        }

        true
    }

    /// Next feasible successor at the current level, honouring the
    /// cheapest-transfer-first order and the incumbent cut-off.
    fn next_child(&mut self) -> Option<usize> {
        let m = self.plan.len();
        let u = self.plan[m - 1];
        let prefix_u = self.prefix[m - 1];
        let (c_u, s_u) = (self.ctx.cost(u), self.ctx.selectivity(u));
        let succ = self.ctx.successors_ascending(u);
        while self.cand_idx[m] < succ.len() {
            let j = succ[self.cand_idx[m]] as usize;
            self.cand_idx[m] += 1;
            if self.state.is_placed(j) || !self.feasible_next(j) {
                continue;
            }
            let term_u = prefix_u * (c_u + s_u * self.ctx.transfer(u, j));
            if term_u >= self.rho {
                // Successors are sorted by transfer cost: all remaining
                // candidates finalize an even larger term. Exhaust level.
                self.cand_idx[m] = succ.len();
                return None;
            }
            return Some(j);
        }
        None
    }

    fn push(&mut self, j: usize) {
        let m = self.plan.len();
        let u = self.plan[m - 1];
        let term_u = self.prefix[m - 1]
            * (self.ctx.cost(u) + self.ctx.selectivity(u) * self.ctx.transfer(u, j));
        self.terms.push(term_u);
        let top = self.eps_fin.last().copied().unwrap_or(0.0);
        self.eps_fin.push(top.max(term_u));
        self.prefix.push(self.prefix[m - 1] * self.ctx.selectivity(u));
        self.plan.push(j);
        self.state.push(self.ctx, j);
        self.stats.nodes_expanded += 1;
    }

    /// Abandons the current node and resumes its parent's candidate
    /// iteration. Returns `false` when that would step into the root pair
    /// (root exhausted).
    fn pop_one(&mut self) -> bool {
        if self.plan.len() <= 2 {
            self.plan.clear();
            return false;
        }
        self.truncate_to(self.plan.len() - 1);
        true
    }

    /// Lemma-3 rewind: resume choosing the earliest position whose
    /// finalized term already reaches `ρ`; plain backtrack otherwise.
    fn rewind(&mut self) {
        if self.cfg.use_backjump {
            if let Some(b) = self.terms.iter().position(|&t| t >= self.rho) {
                let m = self.plan.len();
                // A plain backtrack would resume at level m-1; the jump
                // resumes at level b (positions b..m-1 discarded at once).
                if b < m - 1 {
                    self.stats.backjumps += 1;
                    self.stats.backjump_levels_saved += (m - 1 - b) as u64;
                }
                if b <= 1 {
                    // The dominated prefix reaches into the root pair:
                    // the whole root is exhausted.
                    self.plan.clear();
                } else {
                    self.truncate_to(b);
                }
                return;
            }
        }
        self.pop_one();
    }

    fn truncate_to(&mut self, len: usize) {
        debug_assert!(len >= 2 && len <= self.plan.len());
        while self.plan.len() > len {
            let j = self.plan.pop().expect("plan is non-empty while truncating");
            self.state.pop(j);
        }
        self.prefix.truncate(len);
        self.terms.truncate(len - 1);
        self.eps_fin.truncate(len - 1);
    }

    fn feasible_next(&self, j: usize) -> bool {
        match self.inst.precedence() {
            Some(dag) => dag.is_ready(j, self.state.placed()),
            None => true,
        }
    }

    fn first_position_feasible(&self, a: usize) -> bool {
        match self.inst.precedence() {
            Some(dag) => dag.predecessors(a).is_empty(),
            None => true,
        }
    }

    fn second_position_feasible(&self, a: usize, b: usize) -> bool {
        match self.inst.precedence() {
            Some(dag) => dag.predecessors(b).iter().all(|p| p == a),
            None => true,
        }
    }

    /// Completes the current partial plan greedily (cheapest feasible
    /// successor first). Used for Lemma-2 closures, where every feasible
    /// completion has the same cost.
    fn greedy_completion(&self) -> Vec<usize> {
        let mut order = self.plan.clone();
        let mut placed = self.state.placed().clone();
        while order.len() < self.n {
            let u = *order.last().expect("partial plan is non-empty");
            let next = self
                .ctx
                .successors_ascending(u)
                .iter()
                .map(|&j| j as usize)
                .find(|&j| {
                    !placed.contains(j)
                        && self.inst.precedence().is_none_or(|dag| dag.is_ready(j, &placed))
                })
                .expect("acyclic precedence always leaves a ready service");
            order.push(next);
            placed.insert(next);
        }
        order
    }

    /// Full greedy plan: best cheapest-successor chain over all feasible
    /// starting services. Used for seeding and as a budget-exhaustion
    /// fallback.
    fn greedy_plan(&self) -> Option<(Vec<usize>, f64)> {
        let mut best: Option<(Vec<usize>, f64)> = None;
        for start in 0..self.n {
            if !self.first_position_feasible(start) {
                continue;
            }
            let mut order = vec![start];
            let mut placed = BitSet::new(self.n);
            placed.insert(start);
            while order.len() < self.n {
                let u = *order.last().expect("non-empty");
                let next =
                    self.ctx.successors_ascending(u).iter().map(|&j| j as usize).find(|&j| {
                        !placed.contains(j)
                            && self.inst.precedence().is_none_or(|dag| dag.is_ready(j, &placed))
                    });
                match next {
                    Some(j) => {
                        order.push(j);
                        placed.insert(j);
                    }
                    None => break,
                }
            }
            if order.len() < self.n {
                continue;
            }
            let plan = Plan::new(order.clone()).expect("greedy chain is a permutation");
            let cost = bottleneck_cost(self.inst, &plan);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((order, cost));
            }
        }
        best
    }

    fn budget_exhausted(&self) -> bool {
        if let Some(limit) = self.cfg.node_limit {
            if self.stats.nodes_visited >= limit {
                return true;
            }
        }
        if let Some(limit) = self.cfg.time_limit {
            // Clock reads are cheap relative to node work at these sizes;
            // check every node for responsive budgets.
            if self.started.elapsed() >= limit {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommMatrix;
    use crate::precedence::PrecedenceDag;
    use crate::service::Service;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference: exhaustive search over all feasible permutations.
    fn brute_force(inst: &QueryInstance) -> (Vec<usize>, f64) {
        let n = inst.len();
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut order: Vec<usize> = Vec::new();
        let mut used = vec![false; n];
        fn recurse(
            inst: &QueryInstance,
            order: &mut Vec<usize>,
            used: &mut Vec<bool>,
            best: &mut Option<(Vec<usize>, f64)>,
        ) {
            let n = inst.len();
            if order.len() == n {
                let plan = Plan::new(order.clone()).unwrap();
                let cost = bottleneck_cost(inst, &plan);
                if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                    *best = Some((order.clone(), cost));
                }
                return;
            }
            for s in 0..n {
                if used[s] {
                    continue;
                }
                if let Some(dag) = inst.precedence() {
                    let placed: BitSet = {
                        let mut b = BitSet::new(n);
                        for &o in order.iter() {
                            b.insert(o);
                        }
                        b
                    };
                    if !dag.is_ready(s, &placed) {
                        continue;
                    }
                }
                used[s] = true;
                order.push(s);
                recurse(inst, order, used, best);
                order.pop();
                used[s] = false;
            }
        }
        recurse(inst, &mut order, &mut used, &mut best);
        best.expect("at least one feasible plan")
    }

    fn random_instance(rng: &mut StdRng, n: usize, opts: (bool, bool, bool)) -> QueryInstance {
        let (proliferative, precedence, sinks) = opts;
        let services: Vec<Service> = (0..n)
            .map(|_| {
                let hi = if proliferative { 2.5 } else { 1.0 };
                Service::new(rng.gen_range(0.01..4.0), rng.gen_range(0.05..hi))
            })
            .collect();
        let comm =
            CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.0..3.0) });
        let mut builder = QueryInstance::builder().services(services).comm(comm);
        if sinks {
            builder = builder.sink((0..n).map(|_| rng.gen_range(0.0..1.0)).collect());
        }
        if precedence {
            let mut dag = PrecedenceDag::new(n).unwrap();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.2) {
                        dag.add_edge(a, b).unwrap();
                    }
                }
            }
            builder = builder.precedence(dag);
        }
        builder.build().unwrap()
    }

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0), "{what}: {a} vs {b}");
    }

    #[test]
    fn single_service() {
        let inst = QueryInstance::builder()
            .service(Service::new(2.0, 0.5))
            .comm(CommMatrix::zeros(1))
            .sink(vec![3.0])
            .build()
            .unwrap();
        let result = optimize(&inst);
        assert_eq!(result.plan().indices(), vec![0]);
        assert_close(result.cost(), 3.5, "single service cost");
        assert!(result.is_proven_optimal());
    }

    #[test]
    fn two_services_pick_cheaper_order() {
        // WS0 expensive and non-selective, WS1 cheap filter: filter first.
        let inst = QueryInstance::from_parts(
            vec![Service::new(10.0, 1.0), Service::new(1.0, 0.1)],
            CommMatrix::uniform(2, 0.0),
        )
        .unwrap();
        let result = optimize(&inst);
        assert_eq!(result.plan().indices(), vec![1, 0]);
        assert_close(result.cost(), 1.0, "filter-first cost");
    }

    #[test]
    fn matches_brute_force_across_families_and_configs() {
        let configs = [
            BnbConfig::paper(),
            BnbConfig::incumbent_only(),
            BnbConfig::without_epsilon_bar(),
            BnbConfig::without_backjump(),
            BnbConfig::extended(),
            BnbConfig { tight_epsilon_bar: false, ..BnbConfig::paper() },
        ];
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..120 {
            let n = rng.gen_range(2..7);
            let opts = (trial % 2 == 0, trial % 3 == 0, trial % 5 == 0);
            let inst = random_instance(&mut rng, n, opts);
            let (_, expected) = brute_force(&inst);
            for cfg in &configs {
                let result = optimize_with(&inst, cfg);
                assert!(result.is_proven_optimal());
                assert_close(result.cost(), expected, &format!("trial {trial} cfg {cfg:?}"));
                // Returned plan must actually achieve the reported cost.
                assert_close(
                    bottleneck_cost(&inst, result.plan()),
                    result.cost(),
                    "reported cost matches plan",
                );
                if let Some(dag) = inst.precedence() {
                    assert!(result.plan().satisfies(dag), "precedence respected");
                }
            }
        }
    }

    #[test]
    fn bottleneck_tsp_reduction_case() {
        // σ = 1, c = 0: pure bottleneck TSP path. Optimal = minimize the
        // largest edge used.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let n = rng.gen_range(3..7);
            let services: Vec<Service> = (0..n).map(|_| Service::new(0.0, 1.0)).collect();
            let comm =
                CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(1.0..10.0) });
            let inst = QueryInstance::from_parts(services, comm).unwrap();
            let (_, expected) = brute_force(&inst);
            let result = optimize(&inst);
            assert_close(result.cost(), expected, "BTSP case");
        }
    }

    #[test]
    fn precedence_chain_forces_unique_plan() {
        let mut dag = PrecedenceDag::new(4).unwrap();
        dag.add_edge(3, 2).unwrap();
        dag.add_edge(2, 1).unwrap();
        dag.add_edge(1, 0).unwrap();
        let inst = QueryInstance::builder()
            .services((0..4).map(|i| Service::new(1.0 + i as f64, 0.5)))
            .comm(CommMatrix::uniform(4, 1.0))
            .precedence(dag)
            .build()
            .unwrap();
        let result = optimize(&inst);
        assert_eq!(result.plan().indices(), vec![3, 2, 1, 0]);
        assert!(result.is_proven_optimal());
    }

    #[test]
    fn node_budget_interrupts_but_returns_a_plan() {
        // Seed chosen (for the vendored xoshiro-based StdRng stream) so the
        // unbudgeted search visits tens of nodes; a tiny node budget must
        // then interrupt it. Degenerate draws where the greedy incumbent is
        // proven optimal from the root bounds would never hit the budget.
        let mut rng = StdRng::seed_from_u64(31);
        let inst = random_instance(&mut rng, 9, (false, false, false));
        let cfg = BnbConfig::paper().with_node_limit(3);
        let result = optimize_with(&inst, &cfg);
        assert!(!result.is_proven_optimal());
        assert_eq!(result.plan().len(), 9);
        // The fallback/best plan must be properly costed.
        assert_close(bottleneck_cost(&inst, result.plan()), result.cost(), "budget plan cost");
    }

    #[test]
    fn stats_are_consistent() {
        let mut rng = StdRng::seed_from_u64(11);
        let inst = random_instance(&mut rng, 8, (true, false, true));
        let full = optimize_with(&inst, &BnbConfig::paper());
        let weak = optimize_with(&inst, &BnbConfig::incumbent_only());
        assert_close(full.cost(), weak.cost(), "same optimum across configs");
        let s = full.stats();
        assert!(s.nodes_visited > 0);
        assert!(s.roots_explored >= 1);
        assert!(s.max_depth <= 8);
        assert!(s.candidates_recorded >= 1);
        assert!(s.elapsed.as_nanos() > 0);
        // The full configuration never visits more nodes than the
        // incumbent-only ablation on the same instance.
        assert!(
            s.nodes_visited <= weak.stats().nodes_visited,
            "pruning must not increase visited nodes: {} vs {}",
            s.nodes_visited,
            weak.stats().nodes_visited
        );
    }

    #[test]
    fn proliferative_selectivities_are_handled() {
        // A proliferative service placed early inflates downstream load;
        // check B&B still matches brute force on a crafted instance where
        // the inflation matters.
        let inst = QueryInstance::from_parts(
            vec![Service::new(0.1, 4.0), Service::new(2.0, 0.5), Service::new(0.5, 1.0)],
            CommMatrix::from_rows(vec![
                vec![0.0, 0.2, 2.0],
                vec![0.1, 0.0, 0.3],
                vec![1.0, 0.4, 0.0],
            ])
            .unwrap(),
        )
        .unwrap();
        let (_, expected) = brute_force(&inst);
        let result = optimize(&inst);
        assert_close(result.cost(), expected, "proliferative instance");
    }

    #[test]
    fn greedy_seed_does_not_change_the_answer() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let inst = random_instance(&mut rng, 6, (false, false, false));
            let plain = optimize_with(&inst, &BnbConfig::paper());
            let seeded =
                optimize_with(&inst, &BnbConfig { seed_with_greedy: true, ..BnbConfig::paper() });
            assert_close(plain.cost(), seeded.cost(), "seeding preserves optimum");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2025);
        for trial in 0..40 {
            let n = rng.gen_range(2..9);
            let opts = (trial % 2 == 0, trial % 3 == 0, trial % 4 == 0);
            let inst = random_instance(&mut rng, n, opts);
            let sequential = optimize(&inst);
            for threads in [1usize, 2, 4] {
                let parallel = optimize_parallel(
                    &inst,
                    &BnbConfig::paper(),
                    NonZeroUsize::new(threads).expect("non-zero"),
                );
                assert!(parallel.is_proven_optimal());
                assert_close(
                    parallel.cost(),
                    sequential.cost(),
                    &format!("trial {trial} threads {threads}"),
                );
                assert_close(
                    bottleneck_cost(&inst, parallel.plan()),
                    parallel.cost(),
                    "parallel plan achieves reported cost",
                );
                if let Some(dag) = inst.precedence() {
                    assert!(parallel.plan().satisfies(dag));
                }
            }
        }
    }

    #[test]
    fn parallel_handles_hard_instances() {
        // BTSP-hard core: the search does real work, workers share bounds.
        let mut rng = StdRng::seed_from_u64(4);
        let services: Vec<Service> = (0..11).map(|_| Service::new(0.0, 1.0)).collect();
        let comm =
            CommMatrix::from_fn(11, |i, j| if i == j { 0.0 } else { rng.gen_range(1.0..100.0) });
        let inst = QueryInstance::from_parts(services, comm).unwrap();
        let sequential = optimize(&inst);
        let parallel =
            optimize_parallel(&inst, &BnbConfig::paper(), NonZeroUsize::new(3).expect("nz"));
        assert_close(parallel.cost(), sequential.cost(), "hard instance");
        assert!(parallel.stats().nodes_visited > 0);
        assert!(parallel.stats().roots_explored >= 1);
    }

    #[test]
    fn parallel_respects_per_worker_budgets() {
        // BTSP-hard instance: the search cannot terminate within two
        // visited nodes per worker, so the budget must interrupt it.
        let mut rng = StdRng::seed_from_u64(6);
        let services: Vec<Service> = (0..9).map(|_| Service::new(0.0, 1.0)).collect();
        let comm =
            CommMatrix::from_fn(9, |i, j| if i == j { 0.0 } else { rng.gen_range(1.0..100.0) });
        let inst = QueryInstance::from_parts(services, comm).unwrap();
        let cfg = BnbConfig::paper().with_node_limit(2);
        let result = optimize_parallel(&inst, &cfg, NonZeroUsize::new(2).expect("nz"));
        assert!(!result.is_proven_optimal());
        assert_eq!(result.plan().len(), 9);
    }

    #[test]
    fn warm_start_from_the_optimum_is_bit_identical_and_cheaper() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..25 {
            let inst = random_instance(&mut rng, 7, (trial % 2 == 0, false, trial % 3 == 0));
            let cold = optimize_with(&inst, &BnbConfig::paper());
            let warm_cfg = BnbConfig::paper().with_initial_incumbent(cold.plan().clone());
            let warm = optimize_with(&inst, &warm_cfg);
            assert_eq!(warm.plan(), cold.plan(), "trial {trial}");
            assert_eq!(warm.cost().to_bits(), cold.cost().to_bits(), "trial {trial}");
            assert!(
                warm.stats().nodes_visited <= cold.stats().nodes_visited,
                "warm start must not enlarge the tree: {} vs {}",
                warm.stats().nodes_visited,
                cold.stats().nodes_visited
            );
            assert!(warm.is_proven_optimal());
        }
    }

    #[test]
    fn warm_start_from_a_suboptimal_plan_matches_cold_search() {
        let mut rng = StdRng::seed_from_u64(123);
        for trial in 0..25 {
            let inst = random_instance(&mut rng, 7, (false, false, false));
            let cold = optimize_with(&inst, &BnbConfig::paper());
            let seed = Plan::identity(7);
            let seed_cost = bottleneck_cost(&inst, &seed);
            let warm =
                optimize_with(&inst, &BnbConfig::paper().with_initial_incumbent(seed.clone()));
            assert_close(warm.cost(), cold.cost(), "warm never worse than cold");
            if seed_cost > cold.cost() {
                // A strictly suboptimal seed only tightens pruning: the
                // search trajectory to the first optimal candidate is
                // unchanged, so the plan is bit-identical.
                assert_eq!(warm.plan(), cold.plan(), "trial {trial}");
            } else {
                // The seed itself was optimal; it is returned as-is.
                assert_eq!(warm.plan(), &seed);
            }
        }
    }

    #[test]
    fn infeasible_or_mismatched_incumbents_are_ignored() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = random_instance(&mut rng, 6, (false, true, false));
        let cold = optimize_with(&inst, &BnbConfig::paper());
        // Wrong length: ignored.
        let warm =
            optimize_with(&inst, &BnbConfig::paper().with_initial_incumbent(Plan::identity(4)));
        assert_eq!(warm.plan(), cold.plan());
        // Precedence-violating seeds are ignored rather than poisoning ρ
        // with an infeasible (possibly too-low) bound.
        if let Some(dag) = inst.precedence() {
            let violating = (0..6).rev().collect::<Vec<_>>();
            if !Plan::new(violating.clone()).unwrap().satisfies(dag) {
                let warm = optimize_with(
                    &inst,
                    &BnbConfig::paper().with_initial_incumbent(Plan::new(violating).unwrap()),
                );
                assert_eq!(warm.plan(), cold.plan());
                assert!(warm.plan().satisfies(dag));
            }
        }
    }

    #[test]
    fn parallel_plans_are_thread_count_independent() {
        let mut rng = StdRng::seed_from_u64(2026);
        for trial in 0..15 {
            let n = rng.gen_range(5..10);
            let inst = random_instance(&mut rng, n, (trial % 2 == 0, false, trial % 3 == 0));
            let reference = optimize_parallel(
                &inst,
                &BnbConfig::paper(),
                NonZeroUsize::new(1).expect("non-zero"),
            );
            for threads in [2usize, 3, 4] {
                let parallel = optimize_parallel(
                    &inst,
                    &BnbConfig::paper(),
                    NonZeroUsize::new(threads).expect("non-zero"),
                );
                assert_eq!(
                    parallel.plan(),
                    reference.plan(),
                    "trial {trial}: plan must not depend on thread count"
                );
                assert_eq!(parallel.cost().to_bits(), reference.cost().to_bits());
            }
        }
    }

    #[test]
    fn zero_communication_reduces_to_uniform_case() {
        // With t ≡ 0 the problem is the classical selective-ordering one;
        // sanity-check a known-optimal structure: cheap strong filters go
        // first when costs are equal.
        let inst = QueryInstance::from_parts(
            vec![Service::new(1.0, 0.9), Service::new(1.0, 0.1), Service::new(1.0, 0.5)],
            CommMatrix::zeros(3),
        )
        .unwrap();
        let result = optimize(&inst);
        // Every order starts with a term of 1.0 (first service, prefix 1)
        // and all selectivities are ≤ 1, so the optimum is exactly 1.0.
        assert_close(result.cost(), 1.0, "uniform-free optimum");
    }
}
