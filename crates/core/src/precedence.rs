//! Precedence constraints between services.

use crate::bitset::BitSet;
use crate::error::ModelError;

/// A DAG of precedence constraints: an edge `a → b` requires service `a`
/// to appear before service `b` in every plan.
///
/// The paper's restricted setting has no precedence constraints, but notes
/// that the solution "can be applied with minor modifications when these
/// restrictions are relaxed". The optimizer honours constraints by only
/// appending services whose predecessors are already placed; all three
/// pruning lemmas remain sound because the feasible-successor set of a
/// prefix depends only on the prefix (see `bnb` module docs).
///
/// # Examples
///
/// ```
/// use dsq_core::PrecedenceDag;
///
/// let mut dag = PrecedenceDag::new(3)?;
/// dag.add_edge(0, 2)?; // WS0 must run before WS2
/// assert!(dag.is_feasible_order(&[0, 1, 2]));
/// assert!(!dag.is_feasible_order(&[2, 0, 1]));
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PrecedenceDag {
    n: usize,
    preds: Vec<BitSet>,
    edges: Vec<(usize, usize)>,
}

impl PrecedenceDag {
    /// Creates an empty constraint set over `n` services.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyInstance`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::EmptyInstance);
        }
        Ok(PrecedenceDag { n, preds: (0..n).map(|_| BitSet::new(n)).collect(), edges: Vec::new() })
    }

    /// Number of services the constraints range over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether any constraint has been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Requires `before` to precede `after` in every plan.
    ///
    /// Duplicate edges are ignored. Cycle detection is deferred to
    /// [`validate`](Self::validate) (or instance building) so DAGs can be
    /// assembled in any edge order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SelfPrecedence`] if `before == after` and
    /// [`ModelError::PrecedenceOutOfRange`] if either index is `>= n`.
    pub fn add_edge(&mut self, before: usize, after: usize) -> Result<(), ModelError> {
        if before == after {
            return Err(ModelError::SelfPrecedence(before));
        }
        for s in [before, after] {
            if s >= self.n {
                return Err(ModelError::PrecedenceOutOfRange { service: s, len: self.n });
            }
        }
        if self.preds[after].insert(before) {
            self.edges.push((before, after));
        }
        Ok(())
    }

    /// The constraint edges in insertion order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of constraint edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The set of direct predecessors of `service`.
    ///
    /// # Panics
    ///
    /// Panics if `service >= n`.
    pub fn predecessors(&self, service: usize) -> &BitSet {
        &self.preds[service]
    }

    /// Whether `service` may be appended once the services in `placed` have
    /// run — i.e. all its predecessors are placed.
    ///
    /// # Panics
    ///
    /// Panics if `service >= n` or `placed` has a different capacity.
    pub fn is_ready(&self, service: usize, placed: &BitSet) -> bool {
        placed.is_superset_of(&self.preds[service])
    }

    /// Whether the given complete or partial order satisfies every
    /// constraint among the services it mentions (a service may only appear
    /// after all of its predecessors, and predecessors outside the order
    /// make it infeasible).
    pub fn is_feasible_order(&self, order: &[usize]) -> bool {
        let mut placed = BitSet::new(self.n);
        for &s in order {
            if s >= self.n || !self.is_ready(s, &placed) {
                return false;
            }
            placed.insert(s);
        }
        true
    }

    /// Checks acyclicity and returns a topological order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PrecedenceCycle`] if the constraints cannot be
    /// linearized.
    pub fn validate(&self) -> Result<Vec<usize>, ModelError> {
        let mut indegree: Vec<usize> = (0..self.n).map(|s| self.preds[s].len()).collect();
        let mut ready: Vec<usize> = (0..self.n).filter(|&s| indegree[s] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            succs[a].push(b);
        }
        while let Some(s) = ready.pop() {
            order.push(s);
            for &t in &succs[s] {
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    ready.push(t);
                }
            }
        }
        if order.len() == self.n {
            Ok(order)
        } else {
            Err(ModelError::PrecedenceCycle)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dag_allows_everything() {
        let dag = PrecedenceDag::new(3).unwrap();
        assert!(dag.is_empty());
        assert_eq!(dag.edge_count(), 0);
        assert!(dag.is_feasible_order(&[2, 1, 0]));
        let placed = BitSet::new(3);
        for s in 0..3 {
            assert!(dag.is_ready(s, &placed));
        }
    }

    #[test]
    fn zero_services_rejected() {
        assert_eq!(PrecedenceDag::new(0).unwrap_err(), ModelError::EmptyInstance);
    }

    #[test]
    fn edge_gates_readiness() {
        let mut dag = PrecedenceDag::new(3).unwrap();
        dag.add_edge(0, 2).unwrap();
        let mut placed = BitSet::new(3);
        assert!(!dag.is_ready(2, &placed));
        placed.insert(0);
        assert!(dag.is_ready(2, &placed));
        assert!(dag.predecessors(2).contains(0));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut dag = PrecedenceDag::new(2).unwrap();
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 1).unwrap();
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn self_and_range_errors() {
        let mut dag = PrecedenceDag::new(2).unwrap();
        assert_eq!(dag.add_edge(1, 1).unwrap_err(), ModelError::SelfPrecedence(1));
        assert!(matches!(
            dag.add_edge(0, 5).unwrap_err(),
            ModelError::PrecedenceOutOfRange { service: 5, len: 2 }
        ));
    }

    #[test]
    fn feasibility_of_orders() {
        let mut dag = PrecedenceDag::new(4).unwrap();
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(1, 3).unwrap();
        assert!(dag.is_feasible_order(&[0, 1, 2, 3]));
        assert!(dag.is_feasible_order(&[2, 0, 1, 3]));
        assert!(!dag.is_feasible_order(&[1, 0, 2, 3]));
        assert!(!dag.is_feasible_order(&[0, 3, 1, 2]));
        // Partial prefix feasibility.
        assert!(dag.is_feasible_order(&[0, 1]));
        assert!(!dag.is_feasible_order(&[3]));
    }

    #[test]
    fn validate_returns_topological_order() {
        let mut dag = PrecedenceDag::new(4).unwrap();
        dag.add_edge(2, 0).unwrap();
        dag.add_edge(0, 1).unwrap();
        let order = dag.validate().unwrap();
        assert_eq!(order.len(), 4);
        assert!(dag.is_feasible_order(&order));
    }

    #[test]
    fn validate_detects_cycle() {
        let mut dag = PrecedenceDag::new(3).unwrap();
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(1, 2).unwrap();
        dag.add_edge(2, 0).unwrap();
        assert_eq!(dag.validate().unwrap_err(), ModelError::PrecedenceCycle);
    }

    #[test]
    fn chain_has_unique_order() {
        let mut dag = PrecedenceDag::new(3).unwrap();
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(1, 2).unwrap();
        assert_eq!(dag.validate().unwrap(), vec![0, 1, 2]);
    }
}
