//! Linear execution plans.

use crate::error::ModelError;
use crate::precedence::PrecedenceDag;
use crate::service::ServiceId;
use std::fmt;

/// A complete linear ordering of the services of a query instance.
///
/// Invariant: a `Plan` over `n` services is always a permutation of
/// `0..n`; constructors enforce this.
///
/// # Examples
///
/// ```
/// use dsq_core::Plan;
///
/// let plan = Plan::new(vec![2, 0, 1])?;
/// assert_eq!(plan.len(), 3);
/// assert_eq!(plan.position_of(0.into()), Some(1));
/// assert_eq!(plan.to_string(), "WS2 → WS0 → WS1");
/// # Ok::<(), dsq_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Plan {
    order: Vec<ServiceId>,
}

impl Plan {
    /// Creates a plan from a permutation of `0..order.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPlan`] if the order is empty, contains
    /// an out-of-range index, or repeats a service.
    pub fn new(order: Vec<usize>) -> Result<Self, ModelError> {
        let n = order.len();
        if n == 0 {
            return Err(ModelError::InvalidPlan("plan is empty".into()));
        }
        let mut seen = vec![false; n];
        for &s in &order {
            if s >= n {
                return Err(ModelError::InvalidPlan(format!(
                    "service index {s} out of range for {n} services"
                )));
            }
            if seen[s] {
                return Err(ModelError::InvalidPlan(format!("service {s} appears twice")));
            }
            seen[s] = true;
        }
        Ok(Plan { order: order.into_iter().map(ServiceId::new).collect() })
    }

    /// The identity plan `0, 1, …, n-1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "a plan must contain at least one service");
        Plan { order: (0..n).map(ServiceId::new).collect() }
    }

    /// Number of services in the plan.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// A plan is never empty; always `false`. Provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ordered services.
    pub fn services(&self) -> &[ServiceId] {
        &self.order
    }

    /// The service at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= len`.
    pub fn service_at(&self, position: usize) -> ServiceId {
        self.order[position]
    }

    /// Position of `service` in the plan, if present.
    pub fn position_of(&self, service: ServiceId) -> Option<usize> {
        self.order.iter().position(|&s| s == service)
    }

    /// Iterates over the services in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, ServiceId> {
        self.order.iter()
    }

    /// The plan as plain indices (convenient for numeric code).
    pub fn indices(&self) -> Vec<usize> {
        self.order.iter().map(|s| s.index()).collect()
    }

    /// Whether this plan satisfies the given precedence constraints.
    pub fn satisfies(&self, precedence: &PrecedenceDag) -> bool {
        precedence.is_feasible_order(&self.indices())
    }
}

impl<'a> IntoIterator for &'a Plan {
    type Item = &'a ServiceId;
    type IntoIter = std::slice::Iter<'a, ServiceId>;

    fn into_iter(self) -> Self::IntoIter {
        self.order.iter()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_permutation_accepted() {
        let p = Plan::new(vec![1, 2, 0]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.indices(), vec![1, 2, 0]);
        assert_eq!(p.service_at(0), ServiceId::new(1));
        assert_eq!(p.position_of(ServiceId::new(0)), Some(2));
        assert_eq!(p.position_of(ServiceId::new(9)), None);
    }

    #[test]
    fn rejects_empty_duplicate_and_out_of_range() {
        assert!(matches!(Plan::new(vec![]), Err(ModelError::InvalidPlan(_))));
        assert!(matches!(Plan::new(vec![0, 0]), Err(ModelError::InvalidPlan(_))));
        assert!(matches!(Plan::new(vec![0, 2]), Err(ModelError::InvalidPlan(_))));
    }

    #[test]
    fn identity_is_sorted() {
        let p = Plan::identity(4);
        assert_eq!(p.indices(), vec![0, 1, 2, 3]);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one service")]
    fn identity_of_zero_panics() {
        Plan::identity(0);
    }

    #[test]
    fn display_uses_arrows() {
        let p = Plan::new(vec![2, 0, 1]).unwrap();
        assert_eq!(p.to_string(), "WS2 → WS0 → WS1");
    }

    #[test]
    fn iteration_orders_match() {
        let p = Plan::new(vec![2, 1, 0]).unwrap();
        let via_iter: Vec<usize> = p.iter().map(|s| s.index()).collect();
        let via_ref: Vec<usize> = (&p).into_iter().map(|s| s.index()).collect();
        assert_eq!(via_iter, vec![2, 1, 0]);
        assert_eq!(via_iter, via_ref);
    }

    #[test]
    fn satisfies_precedence() {
        let mut dag = PrecedenceDag::new(3).unwrap();
        dag.add_edge(2, 0).unwrap();
        assert!(Plan::new(vec![2, 0, 1]).unwrap().satisfies(&dag));
        assert!(!Plan::new(vec![0, 2, 1]).unwrap().satisfies(&dag));
    }
}
