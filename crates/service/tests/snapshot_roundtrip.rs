//! Property-based coverage of the cache snapshot format: for arbitrary
//! filled caches, `restore(snapshot(cache))` preserves fingerprints,
//! plans, reference costs, and the serve-time validation behavior —
//! through the in-memory [`PlanSnapshot`] and through its text form.

use dsq_core::{BnbConfig, CommMatrix, PlanSnapshot, QueryInstance, Service, SnapshotEntry};
use dsq_service::{CacheConfig, HashRing, PlanCache, ServeSource};
use proptest::prelude::*;

/// A deterministic instance distinct per `seed` (parameters sit at
/// bucket centers of the default 5% quantization, so fingerprints are
/// stable and distinct).
fn centered_instance(seed: i32, n: usize) -> QueryInstance {
    let step = 1.05f64;
    QueryInstance::builder()
        .name("restore-capacity")
        .services((0..n).map(|i| {
            let i = i as i32;
            Service::new(step.powi((seed * 3 + i) % 11 - 5), step.powi(-((seed + i) % 9) - 1))
        }))
        .comm(CommMatrix::from_fn(n, |i, j| {
            if i == j {
                0.0
            } else {
                step.powi(((seed + i as i32 * 2 + j as i32) % 7) - 3)
            }
        }))
        .build()
        .expect("centered instances are valid")
}

/// Two occurrences of one query whose single walking parameter sits on
/// opposite sides of a primary bucket boundary: only the second,
/// shifted-grid probe bridges them.
fn boundary_pair() -> (QueryInstance, QueryInstance) {
    let step = 1.05f64;
    let at = |offset: f64| {
        QueryInstance::builder()
            .services(vec![
                Service::new(step.powf(3.5 + offset), step.powi(-6)),
                Service::new(step.powi(12), step.powi(-2)),
                Service::new(step.powi(-4), step.powi(-9)),
            ])
            .comm(CommMatrix::uniform(3, step.powi(-3)))
            .build()
            .expect("boundary instances are valid")
    };
    (at(-0.1), at(0.1))
}

/// With `probes: 2`, restore re-derives one shifted-grid alias per
/// primary entry. Those aliases are derived state: they must neither
/// count against shard capacity nor evict the primaries being restored
/// — a snapshot that exactly fills the cache restores losslessly.
#[test]
fn restored_probe_aliases_do_not_evict_primaries() {
    let capacity = 4;
    // During live serving each logical plan occupies two slots (primary
    // + alias), so the fill cache gets double headroom; the restore
    // target is sized to hold exactly the snapshot's primaries.
    let filled = CacheConfig {
        shards: 1,
        capacity_per_shard: 2 * capacity,
        probes: 2,
        ..CacheConfig::default()
    };
    let cache = PlanCache::new(filled.clone());
    let instances: Vec<QueryInstance> =
        (0..capacity as i32).map(|s| centered_instance(s, 5)).collect();
    let first: Vec<_> =
        instances.iter().map(|inst| cache.serve(inst, &BnbConfig::paper())).collect();

    let snapshot = cache.snapshot();
    assert_eq!(snapshot.entries.len(), capacity, "one primary entry per instance");

    let restored = PlanCache::new(CacheConfig { capacity_per_shard: capacity, ..filled });
    assert_eq!(restored.restore(&snapshot).expect("restores"), capacity);
    let stats = restored.stats();
    assert_eq!(
        stats.entries,
        2 * capacity,
        "all primaries survive alongside their re-derived aliases"
    );
    assert_eq!(stats.evictions, 0, "aliases are exempt from capacity during restore");
    for (inst, original) in instances.iter().zip(&first) {
        let served = restored.serve(inst, &BnbConfig::paper());
        assert_eq!(served.source, ServeSource::CacheHit, "no restored primary was evicted");
        assert_eq!(served.plan, original.plan);
        assert_eq!(served.fingerprint, original.fingerprint);
    }
}

/// The shifted-grid alias keeps working across a snapshot/restore
/// cycle: a boundary-crossing request that needed the second probe
/// before the restart still counts a `probe2_hits` after it.
#[test]
fn probe2_hits_survive_a_warm_restart() {
    let (below, above) = boundary_pair();
    let config = CacheConfig { probes: 2, ..CacheConfig::default() };
    let cache = PlanCache::new(config.clone());
    cache.serve(&below, &BnbConfig::paper());
    assert_eq!(cache.serve(&above, &BnbConfig::paper()).source, ServeSource::CacheHit);
    assert_eq!(cache.stats().probe2_hits, 1, "the crossing needs the second probe");

    let restored = PlanCache::new(config);
    restored.restore_from_text(&cache.snapshot().to_text()).expect("restores");
    let served = restored.serve(&above, &BnbConfig::paper());
    assert_eq!(served.source, ServeSource::CacheHit, "warm restart keeps the alias");
    assert_eq!(restored.stats().probe2_hits, 1, "and it still answers via probe 2");
}

/// Strategy: a batch of small arbitrary instances (strictly positive
/// parameters — the serving path quantizes them).
fn arb_batch(max_n: usize, max_count: usize) -> impl Strategy<Value = Vec<QueryInstance>> {
    proptest::collection::vec(
        (2..=max_n).prop_flat_map(|n| {
            let services = proptest::collection::vec((0.05f64..4.0, 0.05f64..2.5), n..=n);
            let comm = proptest::collection::vec(0.05f64..3.0, n * n..=n * n);
            (services, comm).prop_map(move |(sv, cm)| {
                QueryInstance::builder()
                    .name("snapshot-prop")
                    .services(sv.into_iter().map(|(c, s)| Service::new(c, s)))
                    .comm(CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { cm[i * n + j] }))
                    .build()
                    .expect("generated instances are valid")
            })
        }),
        1..=max_count,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// restore(snapshot(cache)) is lossless: every request that hits the
    /// original cache hits the restored one with the same plan, cost
    /// bits, and fingerprint — and the re-snapshot is byte-identical.
    #[test]
    fn snapshot_restore_preserves_serving_behavior(
        batch in arb_batch(6, 6),
        probes in 1usize..=2,
    ) {
        let config = CacheConfig { probes, ..CacheConfig::default() };
        let cache = PlanCache::new(config.clone());
        let first: Vec<_> =
            batch.iter().map(|inst| cache.serve(inst, &BnbConfig::paper())).collect();

        let text = cache.snapshot().to_text();
        let parsed = PlanSnapshot::parse(&text).expect("snapshot text parses");
        let restored = PlanCache::new(config);
        restored.restore(&parsed).expect("snapshot restores");

        for (inst, original) in batch.iter().zip(&first) {
            let served = restored.serve(inst, &BnbConfig::paper());
            prop_assert_eq!(served.source, ServeSource::CacheHit);
            prop_assert_eq!(&served.plan, &original.plan);
            prop_assert_eq!(served.cost.to_bits(), original.cost.to_bits());
            prop_assert_eq!(served.fingerprint, original.fingerprint);
        }
        prop_assert_eq!(restored.snapshot().to_text(), text);
    }

    /// Partition export is an exact set partition of the cache's
    /// exact-tier entries: exported ∪ retained covers everything,
    /// disjointly, split precisely by consistent-hash ring ownership —
    /// and the moved half restores bit-exactly on an inheriting cache,
    /// where every moved key serves as a validated hit.
    #[test]
    fn partition_export_restore_round_trips_bit_exactly(
        batch in arb_batch(6, 6),
        backends in 2usize..=4,
        vnodes in 1usize..=48,
        keep_salt in 0usize..4,
        probes in 1usize..=2,
    ) {
        let config = CacheConfig { probes, ..CacheConfig::default() };
        let cache = PlanCache::new(config.clone());
        let first: Vec<_> =
            batch.iter().map(|inst| cache.serve(inst, &BnbConfig::paper())).collect();
        let before = cache.snapshot();

        let labels: Vec<String> = (0..backends).map(|i| format!("backend-{i}")).collect();
        let ring = HashRing::with_vnodes(&labels, vnodes);
        let keep = keep_salt % backends;
        let moved = cache.export_partition(|fp| ring.route(fp) != keep);
        let retained = cache.snapshot();

        // Disjoint, exhaustive, and split exactly by ring ownership.
        let key = |e: &SnapshotEntry| {
            (e.fingerprint, e.cost.to_bits(), e.canonical_plan.clone(), e.instance.clone())
        };
        let mut union: Vec<_> = moved.entries.iter().map(key).collect();
        union.extend(retained.entries.iter().map(key));
        union.sort();
        let mut everything: Vec<_> = before.entries.iter().map(key).collect();
        everything.sort();
        prop_assert_eq!(union, everything);
        prop_assert!(moved.entries.iter().all(|e| ring.route(e.fingerprint) != keep));
        prop_assert!(retained.entries.iter().all(|e| ring.route(e.fingerprint) == keep));

        // The moved half restores bit-exactly through its text form...
        let inheritor = PlanCache::new(config);
        let text = moved.to_text();
        prop_assert_eq!(
            inheritor
                .restore_from_text(&text)
                .expect("partition restores"),
            moved.entries.len()
        );
        prop_assert_eq!(inheritor.snapshot().to_text(), text);

        // ...and every moved key serves as a validated hit carrying the
        // original cost bits and fingerprint.
        for (inst, original) in batch.iter().zip(&first) {
            if ring.route(original.fingerprint) == keep {
                continue;
            }
            let served = inheritor.serve(inst, &BnbConfig::paper());
            prop_assert_eq!(served.source, ServeSource::CacheHit);
            prop_assert_eq!(served.cost.to_bits(), original.cost.to_bits());
            prop_assert_eq!(served.fingerprint, original.fingerprint);
        }
    }

    /// Truncating snapshot text anywhere strictly inside the document
    /// never yields a silently-partial restore: it is either a parse
    /// error or (for cuts inside a trailing comment-free line) rejected
    /// by restore verification.
    #[test]
    fn truncated_snapshot_text_never_partially_restores(
        batch in arb_batch(5, 3),
        frac in 0.05f64..0.95,
    ) {
        let cache = PlanCache::new(CacheConfig::default());
        for inst in &batch {
            cache.serve(inst, &BnbConfig::paper());
        }
        let text = cache.snapshot().to_text();
        let cut = ((text.len() as f64 * frac) as usize).min(text.len() - 1);
        let truncated = &text[..cut];
        prop_assert!(truncated.len() < text.len());
        let fresh = PlanCache::new(CacheConfig::default());
        prop_assert!(fresh.restore_from_text(truncated).is_err());
        prop_assert_eq!(fresh.stats().entries, 0);
    }
}
