//! Property-based coverage of the cache snapshot format: for arbitrary
//! filled caches, `restore(snapshot(cache))` preserves fingerprints,
//! plans, reference costs, and the serve-time validation behavior —
//! through the in-memory [`PlanSnapshot`] and through its text form.

use dsq_core::{BnbConfig, CommMatrix, PlanSnapshot, QueryInstance, Service};
use dsq_service::{CacheConfig, PlanCache, ServeSource};
use proptest::prelude::*;

/// Strategy: a batch of small arbitrary instances (strictly positive
/// parameters — the serving path quantizes them).
fn arb_batch(max_n: usize, max_count: usize) -> impl Strategy<Value = Vec<QueryInstance>> {
    proptest::collection::vec(
        (2..=max_n).prop_flat_map(|n| {
            let services = proptest::collection::vec((0.05f64..4.0, 0.05f64..2.5), n..=n);
            let comm = proptest::collection::vec(0.05f64..3.0, n * n..=n * n);
            (services, comm).prop_map(move |(sv, cm)| {
                QueryInstance::builder()
                    .name("snapshot-prop")
                    .services(sv.into_iter().map(|(c, s)| Service::new(c, s)))
                    .comm(CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { cm[i * n + j] }))
                    .build()
                    .expect("generated instances are valid")
            })
        }),
        1..=max_count,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// restore(snapshot(cache)) is lossless: every request that hits the
    /// original cache hits the restored one with the same plan, cost
    /// bits, and fingerprint — and the re-snapshot is byte-identical.
    #[test]
    fn snapshot_restore_preserves_serving_behavior(
        batch in arb_batch(6, 6),
        probes in 1usize..=2,
    ) {
        let config = CacheConfig { probes, ..CacheConfig::default() };
        let cache = PlanCache::new(config.clone());
        let first: Vec<_> =
            batch.iter().map(|inst| cache.serve(inst, &BnbConfig::paper())).collect();

        let text = cache.snapshot().to_text();
        let parsed = PlanSnapshot::parse(&text).expect("snapshot text parses");
        let restored = PlanCache::new(config);
        restored.restore(&parsed).expect("snapshot restores");

        for (inst, original) in batch.iter().zip(&first) {
            let served = restored.serve(inst, &BnbConfig::paper());
            prop_assert_eq!(served.source, ServeSource::CacheHit);
            prop_assert_eq!(&served.plan, &original.plan);
            prop_assert_eq!(served.cost.to_bits(), original.cost.to_bits());
            prop_assert_eq!(served.fingerprint, original.fingerprint);
        }
        prop_assert_eq!(restored.snapshot().to_text(), text);
    }

    /// Truncating snapshot text anywhere strictly inside the document
    /// never yields a silently-partial restore: it is either a parse
    /// error or (for cuts inside a trailing comment-free line) rejected
    /// by restore verification.
    #[test]
    fn truncated_snapshot_text_never_partially_restores(
        batch in arb_batch(5, 3),
        frac in 0.05f64..0.95,
    ) {
        let cache = PlanCache::new(CacheConfig::default());
        for inst in &batch {
            cache.serve(inst, &BnbConfig::paper());
        }
        let text = cache.snapshot().to_text();
        let cut = ((text.len() as f64 * frac) as usize).min(text.len() - 1);
        let truncated = &text[..cut];
        prop_assert!(truncated.len() < text.len());
        let fresh = PlanCache::new(CacheConfig::default());
        prop_assert!(fresh.restore_from_text(truncated).is_err());
        prop_assert_eq!(fresh.stats().entries, 0);
    }
}
