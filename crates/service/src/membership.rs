//! Dynamic fleet membership: a versioned, re-resolvable backend list.
//!
//! A [`FleetConfig`] is the on-disk source of truth for which backends
//! exist — an endpoint list plus a monotonically increasing generation
//! number. Clients load it at startup and re-resolve it between
//! requests through a [`FleetMembership`] watcher: a generation bump is
//! an **atomic cutover** (the watcher hands back the complete new
//! config, never a half-applied edit, and keeps the previous generation
//! for rollback), mirroring a non-destructive deploy — build the new
//! version, cut over atomically, keep the old one around.
//!
//! The text format is deliberately shaped like the cache snapshot
//! format (versioned header, one record per line, explicit trailer) so
//! truncated or concatenated files are detected, not half-parsed:
//!
//! ```text
//! dsq-fleet-config v1
//! generation 3
//! backend unix:///var/run/dsq-a.sock
//! backend tcp://127.0.0.1:4001
//! end-fleet-config
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Header line of the fleet-config text format.
pub const FLEET_CONFIG_HEADER: &str = "dsq-fleet-config v1";

/// Error parsing or loading a [`FleetConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetConfigError {
    /// The first line is not [`FLEET_CONFIG_HEADER`].
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A line inside the document does not match the grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The same backend address appears more than once. Duplicate
    /// endpoints would silently occupy multiple ring slots and receive
    /// a double share of the keyspace.
    DuplicateBackend {
        /// The repeated address.
        address: String,
    },
    /// The document ended before its `end-fleet-config` trailer.
    Truncated,
    /// The config listed no backends.
    Empty,
    /// Reading the file failed (message carries the io error text).
    Io(String),
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::BadHeader { found } => {
                write!(f, "fleet config must start with `{FLEET_CONFIG_HEADER}`, found `{found}`")
            }
            FleetConfigError::Malformed { line, reason } => {
                write!(f, "fleet config line {line}: {reason}")
            }
            FleetConfigError::DuplicateBackend { address } => {
                write!(f, "duplicate backend address `{address}` in fleet config")
            }
            FleetConfigError::Truncated => {
                f.write_str("fleet config is truncated (missing `end-fleet-config`)")
            }
            FleetConfigError::Empty => f.write_str("fleet config lists no backends"),
            FleetConfigError::Io(message) => write!(f, "fleet config unreadable: {message}"),
        }
    }
}

impl Error for FleetConfigError {}

/// One generation of fleet membership: who the backends are, and which
/// version of the list this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Monotonically increasing version of the membership list. A
    /// watcher cuts over only when it sees a strictly larger value.
    pub generation: u64,
    /// Backend endpoints in ring order (`unix://PATH` or `tcp://ADDR`).
    pub endpoints: Vec<String>,
}

impl FleetConfig {
    /// A config over `endpoints` at `generation`, validating the same
    /// invariants as [`parse`](Self::parse) (no empty list, no
    /// duplicate addresses).
    ///
    /// # Errors
    ///
    /// [`FleetConfigError::Empty`] or
    /// [`FleetConfigError::DuplicateBackend`].
    pub fn new<S: Into<String>>(
        generation: u64,
        endpoints: impl IntoIterator<Item = S>,
    ) -> Result<Self, FleetConfigError> {
        let endpoints: Vec<String> = endpoints.into_iter().map(Into::into).collect();
        if endpoints.is_empty() {
            return Err(FleetConfigError::Empty);
        }
        for (i, address) in endpoints.iter().enumerate() {
            if endpoints[..i].contains(address) {
                return Err(FleetConfigError::DuplicateBackend { address: address.clone() });
            }
        }
        Ok(FleetConfig { generation, endpoints })
    }

    /// Parses the text format (see the [module docs](self) for the
    /// grammar). Exact inverse of [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// A [`FleetConfigError`] describing the first problem found.
    pub fn parse(text: &str) -> Result<Self, FleetConfigError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, line)) if line == FLEET_CONFIG_HEADER => {}
            Some((_, line)) => return Err(FleetConfigError::BadHeader { found: line.to_string() }),
            None => return Err(FleetConfigError::BadHeader { found: String::new() }),
        }
        let generation = match lines.next() {
            Some((number, line)) => match line.strip_prefix("generation ") {
                Some(value) => value.parse::<u64>().map_err(|_| FleetConfigError::Malformed {
                    line: number + 1,
                    reason: format!("generation is not a non-negative integer: `{value}`"),
                })?,
                None => {
                    return Err(FleetConfigError::Malformed {
                        line: number + 1,
                        reason: format!("expected `generation N`, found `{line}`"),
                    })
                }
            },
            None => return Err(FleetConfigError::Truncated),
        };
        let mut endpoints = Vec::new();
        let mut terminated = false;
        for (number, line) in lines {
            if line == "end-fleet-config" {
                terminated = true;
                break;
            }
            match line.strip_prefix("backend ") {
                Some(address) if !address.trim().is_empty() => {
                    endpoints.push(address.to_string());
                }
                _ => {
                    return Err(FleetConfigError::Malformed {
                        line: number + 1,
                        reason: format!(
                            "expected `backend ADDRESS` or `end-fleet-config`, found `{line}`"
                        ),
                    })
                }
            }
        }
        if !terminated {
            return Err(FleetConfigError::Truncated);
        }
        FleetConfig::new(generation, endpoints)
    }

    /// Serializes to the text format. Exact inverse of
    /// [`parse`](Self::parse).
    pub fn to_text(&self) -> String {
        let mut text = String::new();
        text.push_str(FLEET_CONFIG_HEADER);
        text.push('\n');
        text.push_str(&format!("generation {}\n", self.generation));
        for endpoint in &self.endpoints {
            text.push_str(&format!("backend {endpoint}\n"));
        }
        text.push_str("end-fleet-config\n");
        text
    }

    /// Loads and parses the config at `path`.
    ///
    /// # Errors
    ///
    /// [`FleetConfigError::Io`] if the file is unreadable, otherwise
    /// any [`parse`](Self::parse) error.
    pub fn load(path: &Path) -> Result<Self, FleetConfigError> {
        let text = fs::read_to_string(path).map_err(|e| FleetConfigError::Io(e.to_string()))?;
        FleetConfig::parse(&text)
    }

    /// Writes the config to `path` atomically (tmp file + rename), so a
    /// watcher polling the path never observes a half-written
    /// generation.
    ///
    /// # Errors
    ///
    /// [`FleetConfigError::Io`] if writing or renaming fails.
    pub fn store(&self, path: &Path) -> Result<(), FleetConfigError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_text()).map_err(|e| FleetConfigError::Io(e.to_string()))?;
        fs::rename(&tmp, path).map_err(|e| FleetConfigError::Io(e.to_string()))
    }
}

/// A client-side membership watcher: holds the current generation and
/// re-resolves the config file on demand, cutting over atomically and
/// keeping the previous generation for rollback.
#[derive(Debug)]
pub struct FleetMembership {
    path: PathBuf,
    current: FleetConfig,
    previous: Option<FleetConfig>,
}

impl FleetMembership {
    /// Loads the initial generation from `path`.
    ///
    /// # Errors
    ///
    /// Any [`FleetConfigError`] from the initial load.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, FleetConfigError> {
        let path = path.into();
        let current = FleetConfig::load(&path)?;
        Ok(FleetMembership { path, current, previous: None })
    }

    /// The generation currently in effect.
    pub fn current(&self) -> &FleetConfig {
        &self.current
    }

    /// The generation that was in effect before the last cutover, kept
    /// for rollback; `None` until the first cutover.
    pub fn previous(&self) -> Option<&FleetConfig> {
        self.previous.as_ref()
    }

    /// Re-reads the config file. If it parses and carries a **strictly
    /// larger** generation, cuts over to it (retiring the current
    /// config to the rollback slot) and returns the new config. A
    /// same-or-older generation, an unreadable file, or a malformed
    /// document leaves the current generation untouched — a botched
    /// config push can never take the fleet down.
    pub fn refresh(&mut self) -> Option<&FleetConfig> {
        let next = FleetConfig::load(&self.path).ok()?;
        if next.generation <= self.current.generation {
            return None;
        }
        self.previous = Some(std::mem::replace(&mut self.current, next));
        Some(&self.current)
    }

    /// Rolls back to the previous generation (the inverse of the last
    /// cutover), returning the restored config. No-op returning `None`
    /// if there is nothing to roll back to. The abandoned generation
    /// becomes the rollback slot, so rollback is its own inverse.
    pub fn rollback(&mut self) -> Option<&FleetConfig> {
        let previous = self.previous.take()?;
        self.previous = Some(std::mem::replace(&mut self.current, previous));
        Some(&self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(generation: u64, n: usize) -> FleetConfig {
        FleetConfig::new(generation, (0..n).map(|i| format!("unix:///tmp/b{i}.sock")))
            .expect("valid test config")
    }

    #[test]
    fn text_round_trips_exactly() {
        let original = config(7, 3);
        let text = original.to_text();
        let parsed = FleetConfig::parse(&text).expect("round trip parses");
        assert_eq!(parsed, original);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn parse_errors_are_exact() {
        let cases: Vec<(&str, String)> = vec![
            (
                "dsq-fleet-config v2\n",
                "fleet config must start with `dsq-fleet-config v1`, found `dsq-fleet-config v2`"
                    .to_string(),
            ),
            (
                "dsq-fleet-config v1\ngeneration x\nend-fleet-config\n",
                "fleet config line 2: generation is not a non-negative integer: `x`".to_string(),
            ),
            (
                "dsq-fleet-config v1\nbackends nope\n",
                "fleet config line 2: expected `generation N`, found `backends nope`".to_string(),
            ),
            (
                "dsq-fleet-config v1\ngeneration 1\nnode a\nend-fleet-config\n",
                "fleet config line 3: expected `backend ADDRESS` or `end-fleet-config`, found `node a`"
                    .to_string(),
            ),
            (
                "dsq-fleet-config v1\ngeneration 1\nbackend unix:///a\n",
                "fleet config is truncated (missing `end-fleet-config`)".to_string(),
            ),
            (
                "dsq-fleet-config v1\ngeneration 1\nend-fleet-config\n",
                "fleet config lists no backends".to_string(),
            ),
            (
                "dsq-fleet-config v1\ngeneration 1\nbackend unix:///a\nbackend unix:///a\nend-fleet-config\n",
                "duplicate backend address `unix:///a` in fleet config".to_string(),
            ),
        ];
        for (text, message) in cases {
            let error = FleetConfig::parse(text).expect_err("must be rejected");
            assert_eq!(error.to_string(), message);
        }
    }

    #[test]
    fn duplicate_endpoints_are_rejected_at_construction() {
        let error = FleetConfig::new(1, ["unix:///a", "unix:///b", "unix:///a"])
            .expect_err("duplicates rejected");
        assert_eq!(error, FleetConfigError::DuplicateBackend { address: "unix:///a".to_string() });
    }

    #[test]
    fn refresh_cuts_over_only_on_newer_generations() {
        let dir = std::env::temp_dir().join(format!("dsq-membership-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("fleet.cfg");
        config(1, 2).store(&path).expect("stores");

        let mut membership = FleetMembership::load(&path).expect("loads");
        assert_eq!(membership.current().generation, 1);
        assert!(membership.previous().is_none());

        // Same generation: no cutover.
        config(1, 3).store(&path).expect("stores");
        assert!(membership.refresh().is_none());
        assert_eq!(membership.current().endpoints.len(), 2);

        // Older generation: no cutover.
        config(0, 3).store(&path).expect("stores");
        assert!(membership.refresh().is_none());

        // Malformed file: current generation stays in effect.
        std::fs::write(&path, "garbage\n").expect("writes");
        assert!(membership.refresh().is_none());
        assert_eq!(membership.current().generation, 1);

        // Newer generation: atomic cutover, old config kept for rollback.
        config(2, 3).store(&path).expect("stores");
        let cut = membership.refresh().expect("cuts over").clone();
        assert_eq!(cut.generation, 2);
        assert_eq!(cut.endpoints.len(), 3);
        assert_eq!(membership.previous().expect("rollback slot").generation, 1);

        // Rollback restores the previous generation and is its own inverse.
        assert_eq!(membership.rollback().expect("rolls back").generation, 1);
        assert_eq!(membership.previous().expect("slot swapped").generation, 2);
        assert_eq!(membership.rollback().expect("rolls forward").generation, 2);

        std::fs::remove_dir_all(&dir).ok();
    }
}
