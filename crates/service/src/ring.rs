//! Consistent-hash routing for backend fleets.
//!
//! [`HashRing`] places a fixed number of deterministic virtual nodes
//! per backend on a `u64` ring and routes each canonical fingerprint to
//! the owner of the first virtual node at or after the fingerprint's
//! ring position. Unlike `fingerprint % N`, adding or removing one
//! backend remaps only the keys whose owning arc moved — about `1/N` of
//! the keyspace — so a fleet resize keeps roughly `(N-1)/N` of every
//! backend's cache partition hot instead of cold-starting all of them.
//!
//! Everything here is deterministic: virtual-node positions are a pure
//! function of the backend label and replica index, and key positions
//! are a pure mix of the canonical fingerprint. Two processes that
//! agree on the backend list agree on the whole routing table, which is
//! what lets a rebalance coordinator and a serving daemon compute the
//! same "which entries move" set independently (see
//! `PlanCache::export_partition`).

/// Default number of virtual nodes placed per backend. Enough that the
/// largest-to-smallest partition ratio stays small at fleet sizes this
/// repo targets (2–16 backends), small enough that ring construction
/// and binary-search routing stay trivially cheap.
pub const DEFAULT_VNODES: usize = 64;

/// `splitmix64` finalizer: a full-avalanche mix so that structured
/// inputs (fingerprints share quantization structure; vnode indices are
/// small integers) spread uniformly over the ring.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a label's bytes: the stable seed each backend's virtual
/// nodes are derived from. Labels are endpoint strings (`unix://…`,
/// `tcp://…`), so equality of label means equality of placement across
/// processes and runs.
fn label_seed(label: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A consistent-hash ring over an ordered list of backend labels.
///
/// The backend *index* (into the label list given at construction) is
/// what routing returns, so a [`FleetPlanner`](crate::FleetPlanner)
/// can keep its backends in a plain `Vec` and look them up directly.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Virtual nodes sorted by ring position: `(position, backend)`.
    points: Vec<(u64, usize)>,
    labels: Vec<String>,
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring with [`DEFAULT_VNODES`] virtual nodes per backend.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty; fleet constructors reject empty
    /// backend lists before a ring is ever built.
    pub fn new<S: AsRef<str>>(labels: &[S]) -> Self {
        Self::with_vnodes(labels, DEFAULT_VNODES)
    }

    /// Builds a ring with `vnodes` virtual nodes per backend (`vnodes`
    /// is clamped to at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn with_vnodes<S: AsRef<str>>(labels: &[S], vnodes: usize) -> Self {
        assert!(!labels.is_empty(), "a hash ring needs at least one backend");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(labels.len() * vnodes);
        for (backend, label) in labels.iter().enumerate() {
            let seed = label_seed(label.as_ref());
            for replica in 0..vnodes {
                points.push((mix64(seed ^ mix64(replica as u64)), backend));
            }
        }
        // Position ties (astronomically unlikely, but the ring must be
        // a total order) break by backend index so construction is
        // deterministic regardless of sort internals.
        points.sort_unstable();
        HashRing { points, labels: labels.iter().map(|l| l.as_ref().to_string()).collect(), vnodes }
    }

    /// The backend index owning `fingerprint`: the backend of the first
    /// virtual node at or clockwise-after the key's ring position.
    pub fn route(&self, fingerprint: u64) -> usize {
        let position = mix64(fingerprint);
        let at = self.points.partition_point(|&(p, _)| p < position);
        self.points[at % self.points.len()].1
    }

    /// Distinct backend indices in ring order starting from the owner
    /// of `fingerprint` — the failover walk: the owner first, then each
    /// next-closest backend clockwise, every backend exactly once.
    pub fn successors(&self, fingerprint: u64) -> Vec<usize> {
        let position = mix64(fingerprint);
        let start = self.points.partition_point(|&(p, _)| p < position);
        let mut seen = vec![false; self.labels.len()];
        let mut order = Vec::with_capacity(self.labels.len());
        for offset in 0..self.points.len() {
            let backend = self.points[(start + offset) % self.points.len()].1;
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.labels.len() {
                    break;
                }
            }
        }
        order
    }

    /// The backend labels this ring was built over, in index order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of backends on the ring.
    pub fn backend_count(&self) -> usize {
        self.labels.len()
    }

    /// Virtual nodes per backend this ring was built with.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The label owning `fingerprint` — convenience over
    /// [`route`](Self::route) for callers that compare by endpoint
    /// rather than index (the rebalance path).
    pub fn owner_label(&self, fingerprint: u64) -> &str {
        &self.labels[self.route(fingerprint)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("unix:///tmp/backend-{i}.sock")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(&labels(3));
        let again = HashRing::new(&labels(3));
        for key in 0..1000u64 {
            let owner = ring.route(key);
            assert!(owner < 3);
            assert_eq!(owner, again.route(key), "same labels, same ring");
            assert_eq!(ring.owner_label(key), &ring.labels()[owner]);
        }
    }

    #[test]
    fn every_backend_owns_a_reasonable_share() {
        let ring = HashRing::new(&labels(4));
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[ring.route(mix64(key))] += 1;
        }
        for (backend, &count) in counts.iter().enumerate() {
            // Perfect balance would be 1000 each; 64 vnodes keeps every
            // partition within a factor ~2 of its fair share.
            assert!((400..=1900).contains(&count), "backend {backend} owns {count} of 4000 keys");
        }
    }

    #[test]
    fn growing_the_fleet_remaps_about_one_over_n() {
        let before = HashRing::new(&labels(2));
        let after = HashRing::new(&labels(3));
        let keys: Vec<u64> = (0..3000).map(|k| mix64(k ^ 0xabcd)).collect();
        let moved = keys.iter().filter(|&&k| before.owner_label(k) != after.owner_label(k)).count();
        // Ideal is 1/3 of keys moving (1000). Modulo routing would move
        // about half. Assert the consistent-hash envelope: strictly
        // better than modulo's churn, and every move lands on the new
        // backend (an old backend never *gains* keys when the fleet
        // grows).
        assert!((500..=1600).contains(&moved), "{moved} of 3000 keys moved on a 2->3 resize");
        for &key in &keys {
            if before.owner_label(key) != after.owner_label(key) {
                assert_eq!(
                    after.owner_label(key),
                    "unix:///tmp/backend-2.sock",
                    "keys only move to the joining backend"
                );
            }
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        let before = HashRing::new(&labels(3));
        let after = HashRing::new(&labels(2));
        for key in (0..2000u64).map(|k| mix64(k ^ 0x77)) {
            if before.route(key) < 2 {
                assert_eq!(
                    before.route(key),
                    after.route(key),
                    "keys on surviving backends never move when one leaves"
                );
            }
        }
    }

    #[test]
    fn successors_visit_every_backend_once_owner_first() {
        let ring = HashRing::new(&labels(4));
        for key in 0..64u64 {
            let order = ring.successors(key);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], ring.route(key), "owner first");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "each backend exactly once");
        }
    }

    #[test]
    fn single_backend_ring_owns_everything() {
        let ring = HashRing::new(&["tcp://127.0.0.1:4000"]);
        for key in 0..100u64 {
            assert_eq!(ring.route(key), 0);
            assert_eq!(ring.successors(key), vec![0]);
        }
    }
}
