//! Per-backend health tracking: a consecutive-failure circuit breaker
//! with half-open probes.
//!
//! A flapping backend must not be retried on every request forever —
//! each attempt burns a connect timeout and a failover hop. The
//! breaker remembers failures: after
//! [`failure_threshold`](BreakerConfig::failure_threshold) consecutive
//! failures the circuit **opens** and the backend is ejected from
//! routing. It stays ejected while the rest of the fleet absorbs the
//! next [`cooldown_requests`](BreakerConfig::cooldown_requests)
//! eligibility checks, then transitions to **half-open**: exactly one
//! request is let through as a probe. A successful probe closes the
//! circuit (the backend is readmitted); a failed probe re-opens it for
//! another full cooldown.
//!
//! The cooldown is counted in eligibility checks rather than wall
//! time, so tests (and the single-core CI container) get fully
//! deterministic trip/readmit schedules; under steady traffic the two
//! are proportional anyway.

use crate::telemetry::handles;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Tuning knobs for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit. `0` disables the
    /// breaker entirely (the backend is always admitted).
    pub failure_threshold: u32,
    /// Eligibility checks the circuit stays open before allowing one
    /// half-open probe.
    pub cooldown_requests: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown_requests: 8 }
    }
}

/// The observable state of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Ejected: requests are routed elsewhere until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: the next request is admitted as a probe.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Lifetime counters of one circuit. Passive struct; fields are public.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Times the circuit opened (ejections from routing).
    pub trips: u64,
    /// Half-open probes admitted.
    pub probes: u64,
    /// Successful probes that closed the circuit again (readmissions).
    pub readmissions: u64,
    /// Eligibility checks rejected while the circuit was open.
    pub rejected: u64,
}

#[derive(Debug)]
enum Circuit {
    Closed { consecutive_failures: u32 },
    Open { remaining_cooldown: u32 },
    HalfOpen,
}

/// A consecutive-failure circuit breaker for one backend. See the
/// [module docs](self) for the state machine.
///
/// All methods take `&self`; the breaker is shared between the fleet's
/// worker threads.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    circuit: Mutex<Circuit>,
    trips: AtomicU64,
    probes: AtomicU64,
    readmissions: AtomicU64,
    rejected: AtomicU64,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker under `config`.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            circuit: Mutex::new(Circuit::Closed { consecutive_failures: 0 }),
            trips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Asks whether a request may be sent to this backend right now.
    /// Counts one eligibility check: an open circuit consumes one tick
    /// of its cooldown (transitioning to half-open when it elapses), a
    /// half-open circuit admits the caller as the probe.
    pub fn admit(&self) -> bool {
        let mut circuit = self.circuit.lock();
        match &mut *circuit {
            Circuit::Closed { .. } => true,
            Circuit::Open { remaining_cooldown } => {
                if *remaining_cooldown > 1 {
                    *remaining_cooldown -= 1;
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    handles().breaker_rejections.inc();
                    false
                } else {
                    // Cooldown elapsed: this caller is the probe.
                    *circuit = Circuit::HalfOpen;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
            Circuit::HalfOpen => {
                // One probe outstanding already; everyone else waits.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                handles().breaker_rejections.inc();
                false
            }
        }
    }

    /// Records the outcome of a request that was admitted. A success
    /// closes the circuit (readmission if it was a probe); a failure
    /// increments the consecutive count, opening the circuit at the
    /// threshold, and re-opens immediately from half-open.
    pub fn record(&self, success: bool) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let mut circuit = self.circuit.lock();
        match (&mut *circuit, success) {
            (Circuit::Closed { consecutive_failures }, true) => *consecutive_failures = 0,
            (Circuit::Closed { consecutive_failures }, false) => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    *circuit =
                        Circuit::Open { remaining_cooldown: self.config.cooldown_requests.max(1) };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    handles().breaker_trips.inc();
                }
            }
            (Circuit::HalfOpen, true) => {
                *circuit = Circuit::Closed { consecutive_failures: 0 };
                self.readmissions.fetch_add(1, Ordering::Relaxed);
                handles().breaker_readmissions.inc();
            }
            (Circuit::HalfOpen, false) => {
                *circuit =
                    Circuit::Open { remaining_cooldown: self.config.cooldown_requests.max(1) };
                self.trips.fetch_add(1, Ordering::Relaxed);
                handles().breaker_trips.inc();
            }
            // A late result for a request admitted before the circuit
            // opened: the open/cooldown schedule is already in motion.
            (Circuit::Open { .. }, _) => {}
        }
    }

    /// The current state (for stats lines and tests).
    pub fn state(&self) -> BreakerState {
        match *self.circuit.lock() {
            Circuit::Closed { .. } => BreakerState::Closed,
            Circuit::Open { .. } => BreakerState::Open,
            Circuit::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            trips: self.trips.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let breaker =
            CircuitBreaker::new(BreakerConfig { failure_threshold: 3, cooldown_requests: 4 });
        for _ in 0..2 {
            assert!(breaker.admit());
            breaker.record(false);
            assert_eq!(breaker.state(), BreakerState::Closed);
        }
        // A success in between resets the consecutive count.
        assert!(breaker.admit());
        breaker.record(true);
        for _ in 0..2 {
            assert!(breaker.admit());
            breaker.record(false);
        }
        assert_eq!(breaker.state(), BreakerState::Closed, "non-consecutive failures don't trip");
        assert!(breaker.admit());
        breaker.record(false);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.stats().trips, 1);
    }

    #[test]
    fn half_open_probe_readmits_on_success() {
        let breaker =
            CircuitBreaker::new(BreakerConfig { failure_threshold: 1, cooldown_requests: 3 });
        assert!(breaker.admit());
        breaker.record(false);
        assert_eq!(breaker.state(), BreakerState::Open);

        // Cooldown: the first two checks are rejected, the third is the
        // probe.
        assert!(!breaker.admit());
        assert!(!breaker.admit());
        assert!(breaker.admit(), "cooldown elapsed: probe admitted");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // While the probe is outstanding nobody else gets in.
        assert!(!breaker.admit());

        breaker.record(true);
        assert_eq!(breaker.state(), BreakerState::Closed);
        let stats = breaker.stats();
        assert_eq!((stats.trips, stats.probes, stats.readmissions, stats.rejected), (1, 1, 1, 3));
        assert!(breaker.admit(), "readmitted backends serve again");
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let breaker =
            CircuitBreaker::new(BreakerConfig { failure_threshold: 1, cooldown_requests: 2 });
        assert!(breaker.admit());
        breaker.record(false);
        assert!(!breaker.admit());
        assert!(breaker.admit(), "probe");
        breaker.record(false);
        assert_eq!(breaker.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(breaker.stats().trips, 2);
        assert!(!breaker.admit());
        assert!(breaker.admit(), "second probe after another cooldown");
        breaker.record(true);
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let breaker =
            CircuitBreaker::new(BreakerConfig { failure_threshold: 0, cooldown_requests: 2 });
        for _ in 0..10 {
            assert!(breaker.admit());
            breaker.record(false);
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.stats().trips, 0);
    }

    #[test]
    fn states_display_stably() {
        assert_eq!(BreakerState::Closed.to_string(), "closed");
        assert_eq!(BreakerState::Open.to_string(), "open");
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
    }
}
