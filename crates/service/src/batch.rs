//! Batched optimization: the cache-backed convenience wrapper over the
//! generic [`plan_batch`](crate::plan_batch) worker pool.

use crate::cache::{PlanCache, ServedPlan};
use crate::planner::{plan_batch, CachedPlanner};
use dsq_core::{BnbConfig, QueryInstance};
use std::num::NonZeroUsize;

/// Options of one [`optimize_batch`] run. Passive struct; fields are
/// public.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads draining the request queue.
    pub workers: NonZeroUsize,
    /// Optimizer configuration applied to every request that needs a
    /// search (cold or warm).
    pub config: BnbConfig,
}

impl Default for BatchOptions {
    /// Four workers, paper configuration.
    fn default() -> Self {
        BatchOptions {
            workers: NonZeroUsize::new(4).expect("non-zero literal"),
            config: BnbConfig::paper(),
        }
    }
}

/// Serves a batch of instances through the shared cache across a pool of
/// worker threads, returning one [`ServedPlan`] per request **in request
/// order**. Which request of a fingerprint group arrives first and pays
/// the cold search depends on scheduling, so the
/// [`ServeSource`](crate::ServeSource) attribution and search statistics
/// are not deterministic; for **exact-duplicate** requests neither plans
/// nor costs can vary (every cold search of the duplicate is identical),
/// but near-identical requests sharing a fingerprint may be served the
/// plan of whichever occurrence won the race — any such plan has passed
/// exact-instance validation, i.e. it is within the cache's tolerance,
/// not necessarily the same bits across runs.
///
/// The queue is a bounded crossbeam channel pre-filled with the indexed
/// requests; workers drain it until empty, so an expensive request never
/// blocks the others (no static partitioning).
///
/// # Examples
///
/// ```
/// use dsq_core::{CommMatrix, QueryInstance, Service};
/// use dsq_service::{optimize_batch, BatchOptions, CacheConfig, PlanCache};
///
/// let cache = PlanCache::new(CacheConfig::default());
/// let requests: Vec<QueryInstance> = (0..6)
///     .map(|k| {
///         QueryInstance::from_parts(
///             vec![Service::new(1.0, 0.4), Service::new(0.5 + 0.1 * (k % 2) as f64, 0.8)],
///             CommMatrix::uniform(2, 0.2),
///         )
///         .unwrap()
///     })
///     .collect();
/// let results = optimize_batch(&cache, &requests, &BatchOptions::default());
/// assert_eq!(results.len(), 6);
/// assert!(cache.stats().hits >= 4, "repeated shapes hit the cache");
/// ```
pub fn optimize_batch(
    cache: &PlanCache,
    requests: &[QueryInstance],
    options: &BatchOptions,
) -> Vec<ServedPlan> {
    let planner = CachedPlanner::new(cache, options.config.clone());
    plan_batch(&planner, requests, options.workers)
        .into_iter()
        .map(|result| result.expect("cached planners are infallible"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, ServeSource};
    use dsq_core::optimize;
    use dsq_workloads::{generate, Family};

    fn requests(n: usize, count: usize) -> Vec<QueryInstance> {
        // A handful of distinct shapes, cycled: plenty of cache traffic.
        (0..count).map(|k| generate(Family::Clustered, n, (k % 3) as u64)).collect()
    }

    fn options(workers: usize) -> BatchOptions {
        BatchOptions {
            workers: NonZeroUsize::new(workers).expect("non-zero"),
            ..BatchOptions::default()
        }
    }

    #[test]
    fn results_are_in_request_order_and_optimal() {
        let cache = PlanCache::new(CacheConfig::default());
        let batch = requests(7, 12);
        let results = optimize_batch(&cache, &batch, &options(4));
        assert_eq!(results.len(), batch.len());
        for (inst, served) in batch.iter().zip(&results) {
            let fresh = optimize(inst);
            assert_eq!(served.cost.to_bits(), fresh.cost().to_bits());
            assert_eq!(&served.plan, fresh.plan());
        }
        // 3 distinct shapes across 12 requests. Two workers racing the
        // same not-yet-cached fingerprint may both pay a cold search
        // (the shard lock is deliberately not held while optimizing),
        // so the exact cold count is scheduling-dependent: at least one
        // per shape, at most one per worker per shape.
        let stats = cache.stats();
        assert_eq!(stats.requests(), 12);
        assert!((3..=6).contains(&stats.misses), "misses: {}", stats.misses);
        assert_eq!(stats.hits + stats.misses, 12);
        assert!(stats.hits >= 6, "repeats must mostly hit: {}", stats.hits);
    }

    #[test]
    fn worker_counts_do_not_change_plans_or_costs() {
        let batch = requests(6, 10);
        let reference =
            optimize_batch(&PlanCache::new(CacheConfig::default()), &batch, &options(1));
        for workers in [2usize, 4, 8] {
            let results =
                optimize_batch(&PlanCache::new(CacheConfig::default()), &batch, &options(workers));
            for (a, b) in reference.iter().zip(&results) {
                assert_eq!(a.plan, b.plan, "workers = {workers}");
                assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                assert_eq!(a.fingerprint, b.fingerprint);
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cache = PlanCache::new(CacheConfig::default());
        assert!(optimize_batch(&cache, &[], &BatchOptions::default()).is_empty());
        assert_eq!(cache.stats().requests(), 0);
    }

    #[test]
    fn single_request_batches_serve_inline() {
        let cache = PlanCache::new(CacheConfig::default());
        let batch = requests(5, 1);
        let results = optimize_batch(&cache, &batch, &options(8));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].source, ServeSource::Cold);
    }
}
