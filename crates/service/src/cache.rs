//! The sharded, concurrent plan cache.

use dsq_core::{
    bottleneck_cost, optimize_with, BnbConfig, CanonicalKey, Plan, Quantization, QueryInstance,
    SearchStats,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Configuration of a [`PlanCache`]. Passive struct; fields are public.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Number of independently locked shards (requests map to shards by
    /// fingerprint, so disjoint queries never contend).
    pub shards: usize,
    /// Maximum entries per shard; the least recently used entry is
    /// evicted beyond it. `0` disables caching entirely (every request
    /// optimizes cold), which gives the serving pipeline an exact
    /// cache-off baseline through the same code path.
    pub capacity_per_shard: usize,
    /// Quantization used to fingerprint instances: near-identical
    /// instances (drift within the resolution) share a cache key.
    pub quantization: Quantization,
    /// Relative tolerance for validating a cached plan against the exact
    /// instance: a bucket-hit whose plan costs more than
    /// `(1 + tolerance) ×` the cached cost (or less than the mirror
    /// bound) is treated as stale and warm-starts a fresh search.
    pub validation_tolerance: f64,
}

impl Default for CacheConfig {
    /// 8 shards × 128 entries, default quantization, 5% validation
    /// tolerance (matching the default quantization resolution).
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 128,
            quantization: Quantization::default(),
            validation_tolerance: 0.05,
        }
    }
}

/// Where a served plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeSource {
    /// Fingerprint hit and the cached plan validated against the exact
    /// instance: no search ran.
    CacheHit,
    /// Fingerprint hit but the cached plan's cost drifted out of
    /// tolerance: the search ran, warm-started from the cached plan.
    WarmStart,
    /// No cached entry: a cold optimization.
    Cold,
}

impl ServeSource {
    /// Stable lowercase name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            ServeSource::CacheHit => "hit",
            ServeSource::WarmStart => "warm",
            ServeSource::Cold => "cold",
        }
    }
}

/// The outcome of serving one instance through the cache.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// The plan, in the request instance's own service labels.
    pub plan: Plan,
    /// The plan's bottleneck cost evaluated on the **exact** request
    /// instance (never the cached representative's cost).
    pub cost: f64,
    /// How the plan was obtained.
    pub source: ServeSource,
    /// The request's cache fingerprint.
    pub fingerprint: u64,
    /// Statistics of the search that ran, if one did (`None` for pure
    /// cache hits).
    pub search: Option<SearchStats>,
}

/// Aggregated cache counters (summed over shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Validated fingerprint hits (no search ran).
    pub hits: u64,
    /// Fingerprint hits whose plan failed exact-instance validation and
    /// warm-started a search.
    pub warm_starts: u64,
    /// Requests with no cached entry (cold optimizations).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries written (cold and warm paths both write back).
    pub insertions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.warm_starts + self.misses
    }

    /// Fraction of requests answered without running a search; `0.0`
    /// before any request.
    pub fn hit_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            self.hits as f64 / requests as f64
        }
    }
}

/// One cached plan, stored in canonical index space so any instance with
/// the same fingerprint can use it regardless of its service labels.
#[derive(Debug)]
struct Entry {
    canonical_plan: Vec<u32>,
    /// Bottleneck cost of the plan on the instance that produced it —
    /// the reference value a bucket-hit validates against.
    cost: f64,
    /// Recency stamp; must match the newest queue slot for this key.
    tick: u64,
}

/// One shard: an LRU map guarded by its own lock.
///
/// Recency is a lazy queue: every touch appends `(key, tick)` and stamps
/// the entry; eviction pops from the front, discarding stale pairs whose
/// tick no longer matches the live entry. Each popped pair was pushed by
/// exactly one operation, so the queue stays linear in the number of
/// operations and eviction is O(1) amortized.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    order: VecDeque<(u64, u64)>,
    tick: u64,
    hits: u64,
    warm_starts: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl Shard {
    fn touch(&mut self, fingerprint: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&fingerprint) {
            entry.tick = tick;
            self.order.push_back((fingerprint, tick));
        }
    }

    fn insert(&mut self, fingerprint: u64, canonical_plan: Vec<u32>, cost: f64, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(fingerprint, Entry { canonical_plan, cost, tick });
        self.order.push_back((fingerprint, tick));
        self.insertions += 1;
        while self.map.len() > capacity {
            match self.order.pop_front() {
                Some((key, stamp)) => {
                    if self.map.get(&key).is_some_and(|e| e.tick == stamp) {
                        self.map.remove(&key);
                        self.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }
}

/// A sharded, concurrent, LRU plan cache in front of the branch-and-bound
/// optimizer. See the [crate docs](crate) for the serving semantics and
/// [`CacheConfig`] for the knobs.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    config: CacheConfig,
}

impl PlanCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`, the validation tolerance is
    /// negative or non-finite, or the quantization resolution is invalid
    /// (see [`Quantization::new`]).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.shards > 0, "a cache needs at least one shard");
        assert!(
            config.validation_tolerance.is_finite() && config.validation_tolerance >= 0.0,
            "validation tolerance must be finite and non-negative"
        );
        // Re-validate through the constructor so an invalid hand-rolled
        // resolution fails here rather than deep inside a request.
        let _ = Quantization::new(config.quantization.resolution);
        let shards = (0..config.shards).map(|_| Mutex::new(Shard::default())).collect();
        PlanCache { shards, config }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Serves one instance: validated cache hit, warm-started search, or
    /// cold search (see [`ServeSource`]). Cold and warm searches write
    /// their result back, so subsequent near-identical requests hit.
    ///
    /// Concurrent callers are safe: the shard lock is **not** held while
    /// optimizing, so long searches never block hits on other keys (or
    /// even on the same shard).
    pub fn serve(&self, instance: &QueryInstance, config: &BnbConfig) -> ServedPlan {
        let key = CanonicalKey::new(instance, &self.config.quantization);
        let fingerprint = key.fingerprint();
        let shard = &self.shards[(fingerprint % self.shards.len() as u64) as usize];

        let cached: Option<(Plan, f64)> = {
            let guard = shard.lock();
            guard.map.get(&fingerprint).and_then(|entry| {
                // A malformed transport (fingerprint collision with a
                // different-sized instance) degrades to a miss.
                key.plan_from_canonical(&entry.canonical_plan).map(|p| (p, entry.cost))
            })
        };

        if let Some((plan, cached_cost)) = cached {
            let feasible = instance.precedence().is_none_or(|dag| plan.satisfies(dag));
            if feasible {
                let exact = bottleneck_cost(instance, &plan);
                let spread = (exact - cached_cost).abs();
                if spread <= self.config.validation_tolerance * exact.abs().max(cached_cost.abs()) {
                    let mut guard = shard.lock();
                    guard.hits += 1;
                    guard.touch(fingerprint);
                    return ServedPlan {
                        plan,
                        cost: exact,
                        source: ServeSource::CacheHit,
                        fingerprint,
                        search: None,
                    };
                }
                // Out of tolerance: re-optimize, seeded with the cached
                // plan (its cost is near-optimal, so ρ prunes hard).
                let warm_config = config.clone().with_initial_incumbent(plan);
                let result = optimize_with(instance, &warm_config);
                let canonical_plan = key.plan_to_canonical(result.plan());
                let mut guard = shard.lock();
                guard.warm_starts += 1;
                guard.insert(
                    fingerprint,
                    canonical_plan,
                    result.cost(),
                    self.config.capacity_per_shard,
                );
                return ServedPlan {
                    plan: result.plan().clone(),
                    cost: result.cost(),
                    source: ServeSource::WarmStart,
                    fingerprint,
                    search: Some(result.stats().clone()),
                };
            }
        }

        let result = optimize_with(instance, config);
        let canonical_plan = key.plan_to_canonical(result.plan());
        let mut guard = shard.lock();
        guard.misses += 1;
        guard.insert(fingerprint, canonical_plan, result.cost(), self.config.capacity_per_shard);
        ServedPlan {
            plan: result.plan().clone(),
            cost: result.cost(),
            source: ServeSource::Cold,
            fingerprint,
            search: Some(result.stats().clone()),
        }
    }

    /// A snapshot of the counters, summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let guard = shard.lock();
            total.hits += guard.hits;
            total.warm_starts += guard.warm_starts;
            total.misses += guard.misses;
            total.evictions += guard.evictions;
            total.insertions += guard.insertions;
            total.entries += guard.map.len();
        }
        total
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.map.clear();
            guard.order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{optimize, CommMatrix, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(seed: u64, n: usize) -> QueryInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        QueryInstance::builder()
            .services(
                (0..n).map(|_| Service::new(rng.gen_range(0.2..2.0), rng.gen_range(0.2..0.95))),
            )
            .comm(CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.1..1.0) }))
            .build()
            .unwrap()
    }

    /// An instance whose parameters all sit at **bucket centers** of the
    /// default 5% quantization (exact powers of 1.05): drift below ~2%
    /// can then never cross a bucket boundary, keeping the fingerprint
    /// deterministic for the drift tests below.
    fn bucket_centered(seed: u64, n: usize) -> QueryInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let step = 1.05f64;
        QueryInstance::builder()
            .services((0..n).map(|_| {
                Service::new(step.powi(rng.gen_range(-10..10)), step.powi(rng.gen_range(-14..0)))
            }))
            .comm(CommMatrix::from_fn(n, |i, j| {
                if i == j {
                    0.0
                } else {
                    step.powi(rng.gen_range(-8..4))
                }
            }))
            .build()
            .unwrap()
    }

    /// Multiplies every parameter by `factor` — same fingerprint while
    /// the drift stays inside a quantization bucket.
    fn drifted(inst: &QueryInstance, factor: f64) -> QueryInstance {
        let n = inst.len();
        QueryInstance::builder()
            .services(
                inst.services()
                    .iter()
                    .map(|s| Service::new(s.cost() * factor, s.selectivity() * factor)),
            )
            .comm(CommMatrix::from_fn(n, |i, j| inst.transfer(i, j) * factor))
            .build()
            .unwrap()
    }

    #[test]
    fn cold_then_hit_roundtrip() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = instance(1, 6);
        let cold = cache.serve(&inst, &BnbConfig::paper());
        assert_eq!(cold.source, ServeSource::Cold);
        assert!(cold.search.is_some());
        let hit = cache.serve(&inst, &BnbConfig::paper());
        assert_eq!(hit.source, ServeSource::CacheHit);
        assert!(hit.search.is_none());
        assert_eq!(hit.plan, cold.plan);
        assert_eq!(hit.cost.to_bits(), cold.cost.to_bits());
        assert_eq!(hit.fingerprint, cold.fingerprint);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.warm_starts), (1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.requests(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn small_drift_hits_and_validates_on_the_exact_instance() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = bucket_centered(2, 6);
        let cold = cache.serve(&inst, &BnbConfig::paper());
        let near = drifted(&inst, 1.004);
        let hit = cache.serve(&near, &BnbConfig::paper());
        assert_eq!(hit.source, ServeSource::CacheHit, "sub-bucket drift must hit");
        // The returned cost is the plan's cost on the *drifted* instance,
        // not the cached number.
        assert_eq!(hit.cost.to_bits(), bottleneck_cost(&near, &hit.plan).to_bits());
        assert_ne!(hit.cost.to_bits(), cold.cost.to_bits());
        // Hit quality: within tolerance of that instance's true optimum.
        let fresh = optimize(&near);
        assert!(hit.cost <= fresh.cost() * (1.0 + 0.05) + 1e-12);
    }

    #[test]
    fn out_of_tolerance_drift_warm_starts() {
        // Tiny tolerance forces the validation to fail for any real
        // drift, driving the warm-start path deterministically.
        let cache =
            PlanCache::new(CacheConfig { validation_tolerance: 1e-12, ..CacheConfig::default() });
        let inst = bucket_centered(3, 7);
        cache.serve(&inst, &BnbConfig::paper());
        let near = drifted(&inst, 1.004);
        let warm = cache.serve(&near, &BnbConfig::paper());
        assert_eq!(warm.source, ServeSource::WarmStart);
        // Warm result is exactly optimal for the drifted instance.
        let fresh = optimize(&near);
        assert_eq!(warm.cost.to_bits(), fresh.cost().to_bits());
        assert_eq!(&warm.plan, fresh.plan());
        assert!(warm.search.expect("warm runs a search").proven_optimal);
        // The write-back refreshed the entry: the same instance now hits.
        assert_eq!(cache.serve(&near, &BnbConfig::paper()).source, ServeSource::CacheHit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.warm_starts), (1, 1, 1));
    }

    #[test]
    fn relabeled_instances_share_an_entry() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = instance(4, 5);
        let cold = cache.serve(&inst, &BnbConfig::paper());
        // Rotate the labels: service i of the relabeling is original
        // service (i + 1) mod n.
        let n = inst.len();
        let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        let relabeled = QueryInstance::builder()
            .services(perm.iter().map(|&o| inst.services()[o].clone()))
            .comm(CommMatrix::from_fn(n, |i, j| inst.transfer(perm[i], perm[j])))
            .build()
            .unwrap();
        let served = cache.serve(&relabeled, &BnbConfig::paper());
        assert_eq!(served.source, ServeSource::CacheHit, "relabels share fingerprints");
        // The transported plan orders the same physical services: mapping
        // back through the permutation recovers the original plan.
        let recovered: Vec<usize> = served.plan.indices().iter().map(|&i| perm[i]).collect();
        assert_eq!(recovered, cold.plan.indices());
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
            ..CacheConfig::default()
        });
        let a = instance(10, 5);
        let b = instance(11, 5);
        let c = instance(12, 5);
        cache.serve(&a, &BnbConfig::paper());
        cache.serve(&b, &BnbConfig::paper());
        // Touch A so B becomes the LRU victim.
        assert_eq!(cache.serve(&a, &BnbConfig::paper()).source, ServeSource::CacheHit);
        cache.serve(&c, &BnbConfig::paper());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.serve(&a, &BnbConfig::paper()).source, ServeSource::CacheHit);
        assert_eq!(cache.serve(&b, &BnbConfig::paper()).source, ServeSource::Cold, "B evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(CacheConfig {
            shards: 2,
            capacity_per_shard: 0,
            ..CacheConfig::default()
        });
        let inst = instance(5, 5);
        for _ in 0..3 {
            assert_eq!(cache.serve(&inst, &BnbConfig::paper()).source, ServeSource::Cold);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.evictions, 3);
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = instance(6, 5);
        cache.serve(&inst, &BnbConfig::paper());
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.serve(&inst, &BnbConfig::paper()).source, ServeSource::Cold);
    }

    #[test]
    fn concurrent_serves_agree() {
        let cache = PlanCache::new(CacheConfig::default());
        let instances: Vec<QueryInstance> = (0..4).map(|s| instance(20 + s, 6)).collect();
        let expected: Vec<f64> = instances.iter().map(|i| optimize(i).cost()).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for (inst, &cost) in instances.iter().zip(&expected) {
                        let served = cache.serve(inst, &BnbConfig::paper());
                        assert_eq!(served.cost.to_bits(), cost.to_bits());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.requests(), 32);
        assert!(stats.hits > 0, "later threads must hit");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        PlanCache::new(CacheConfig { shards: 0, ..CacheConfig::default() });
    }
}
