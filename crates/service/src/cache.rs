//! The sharded, concurrent plan cache.

use dsq_core::{
    bottleneck_cost, format_instance, optimize_with, parse_instance, BnbConfig, CanonicalKey, Plan,
    PlanSnapshot, Quantization, QueryInstance, SearchStats, SnapshotEntry, SnapshotError,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Grid phase of the second probe: a parameter walking across a
/// boundary of the primary grid sits at the center of this one.
const PROBE_PHASE: f64 = 0.5;

/// Configuration of a [`PlanCache`]. Passive struct; fields are public.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Number of independently locked shards (requests map to shards by
    /// fingerprint, so disjoint queries never contend).
    pub shards: usize,
    /// Maximum entries per shard; the least recently used entry is
    /// evicted beyond it. `0` disables caching entirely (every request
    /// optimizes cold), which gives the serving pipeline an exact
    /// cache-off baseline through the same code path.
    pub capacity_per_shard: usize,
    /// Quantization used to fingerprint instances: near-identical
    /// instances (drift within the resolution) share a cache key.
    pub quantization: Quantization,
    /// Relative tolerance for validating a cached plan against the exact
    /// instance: a bucket-hit whose plan costs more than
    /// `(1 + tolerance) ×` the cached cost (or less than the mirror
    /// bound) is treated as stale and warm-starts a fresh search.
    pub validation_tolerance: f64,
    /// Fingerprint probes per lookup: `1` probes the primary quantization
    /// grid only; `2` additionally probes a half-bucket-shifted grid on a
    /// primary miss, so a parameter that slowly walks across one bucket
    /// boundary (flipping the primary fingerprint between two keys) still
    /// finds its entry. With two probes every write-back stores a second,
    /// shifted-grid alias entry, so each logical plan occupies two cache
    /// slots.
    pub probes: usize,
}

impl Default for CacheConfig {
    /// 8 shards × 128 entries, default quantization, 5% validation
    /// tolerance (matching the default quantization resolution),
    /// single-probe lookup.
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 128,
            quantization: Quantization::default(),
            validation_tolerance: 0.05,
            probes: 1,
        }
    }
}

/// Where a served plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeSource {
    /// Fingerprint hit and the cached plan validated against the exact
    /// instance: no search ran.
    CacheHit,
    /// Fingerprint hit but the cached plan's cost drifted out of
    /// tolerance: the search ran, warm-started from the cached plan.
    WarmStart,
    /// No cached entry: a cold optimization.
    Cold,
}

impl ServeSource {
    /// Stable lowercase name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            ServeSource::CacheHit => "hit",
            ServeSource::WarmStart => "warm",
            ServeSource::Cold => "cold",
        }
    }
}

/// Quality tier of a served plan (see the `TieredPlanner` in
/// [`crate::tiered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanTier {
    /// The plan is a proven bottleneck-optimal ordering (a completed
    /// branch-and-bound search produced or validated it).
    Exact,
    /// The plan came from the tier-1 greedy heuristic and has not been
    /// refined yet: correct and precedence-feasible, but possibly
    /// suboptimal by an unknown gap.
    Heuristic,
}

impl PlanTier {
    /// Stable lowercase name for the wire protocol and logs.
    pub fn name(self) -> &'static str {
        match self {
            PlanTier::Exact => "exact",
            PlanTier::Heuristic => "heur",
        }
    }
}

/// The outcome of serving one instance through the cache.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// The plan, in the request instance's own service labels.
    pub plan: Plan,
    /// The plan's bottleneck cost evaluated on the **exact** request
    /// instance (never the cached representative's cost).
    pub cost: f64,
    /// How the plan was obtained.
    pub source: ServeSource,
    /// The request's cache fingerprint.
    pub fingerprint: u64,
    /// Quality tier: [`PlanTier::Exact`] everywhere except the tiered
    /// fast path, which answers misses with an unrefined heuristic plan.
    pub tier: PlanTier,
    /// Relative optimality gap of the plan when it is known:
    /// `Some(0.0)` for exact-tier plans, `None` for a heuristic plan
    /// whose background refinement has not landed yet (the gap is
    /// unknown until the exact cost exists).
    pub optimality_gap: Option<f64>,
    /// Statistics of the search that ran, if one did (`None` for pure
    /// cache hits).
    pub search: Option<SearchStats>,
}

/// Aggregated cache counters (summed over shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Validated fingerprint hits (no search ran).
    pub hits: u64,
    /// The subset of [`hits`](Self::hits) that missed the primary grid
    /// and were found by the second, shifted-grid probe (always `0` with
    /// `probes: 1`).
    pub probe2_hits: u64,
    /// Fingerprint hits whose plan failed exact-instance validation and
    /// warm-started a search.
    pub warm_starts: u64,
    /// Requests with no cached entry (cold optimizations).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries written (cold and warm paths both write back).
    pub insertions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
    /// Resident entries still at the heuristic tier (awaiting background
    /// refinement; always `0` outside tiered serving).
    pub heuristic_entries: usize,
    /// Slots currently occupied by the lazy LRU recency queues across
    /// all shards. Bounded: each shard compacts its queue once it
    /// exceeds a small multiple of the capacity (see `Shard::touch`).
    pub recency_slots: usize,
}

impl CacheStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.warm_starts + self.misses
    }

    /// Fraction of requests answered without running a search; `0.0`
    /// before any request.
    pub fn hit_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            self.hits as f64 / requests as f64
        }
    }
}

/// One cached plan, stored in canonical index space so any instance with
/// the same fingerprint can use it regardless of its service labels.
#[derive(Debug)]
struct Entry {
    /// The plan in the canonical space of the grid this entry is keyed
    /// under (primary grid for primary entries, shifted grid for probe-2
    /// aliases).
    canonical_plan: Vec<u32>,
    /// Bottleneck cost of the plan on the instance that produced it —
    /// the reference value a bucket-hit validates against.
    cost: f64,
    /// The representative instance in `dsq-instance` text form: what
    /// snapshots persist, so a restored cache can re-verify fingerprints
    /// and re-derive probe aliases.
    instance: String,
    /// `true` for primary-grid entries (the ones snapshots serialize).
    primary: bool,
    /// `true` when the plan came from a completed exact search; `false`
    /// for an unrefined heuristic plan awaiting background refinement.
    exact: bool,
    /// Recency stamp; must match the newest queue slot for this key.
    tick: u64,
}

/// One shard: an LRU map guarded by its own lock.
///
/// Recency is a lazy queue: every touch appends `(key, tick)` and stamps
/// the entry; eviction pops from the front, discarding stale pairs whose
/// tick no longer matches the live entry. Each popped pair was pushed by
/// exactly one operation, so the queue stays linear in the number of
/// operations and eviction is O(1) amortized.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    order: VecDeque<(u64, u64)>,
    tick: u64,
    hits: u64,
    probe2_hits: u64,
    warm_starts: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

/// Stale-pair headroom of the lazy recency queue before a shard
/// compacts it: `order` may hold up to `2 × capacity + SLACK` pairs
/// (the live ones plus stale duplicates) between compactions, keeping
/// compaction O(1) amortized while bounding steady-state memory.
const ORDER_COMPACT_SLACK: usize = 64;

impl Shard {
    fn touch(&mut self, fingerprint: u64, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&fingerprint) {
            entry.tick = tick;
            self.order.push_back((fingerprint, tick));
        }
        self.maybe_compact(capacity);
    }

    /// Drops stale recency pairs once the queue outgrows its headroom.
    /// Without this, a hit-heavy steady state below capacity (touches
    /// but no evictions, so nothing ever drains the queue) grows
    /// `order` without bound.
    fn maybe_compact(&mut self, capacity: usize) {
        if self.order.len() > 2usize.saturating_mul(capacity).saturating_add(ORDER_COMPACT_SLACK) {
            self.order.retain(|&(key, stamp)| self.map.get(&key).is_some_and(|e| e.tick == stamp));
        }
    }

    fn insert(&mut self, fingerprint: u64, entry: PendingEntry, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        let PendingEntry { canonical_plan, cost, instance, primary, exact } = entry;
        self.map
            .insert(fingerprint, Entry { canonical_plan, cost, instance, primary, exact, tick });
        self.order.push_back((fingerprint, tick));
        self.insertions += 1;
        while self.map.len() > capacity {
            match self.order.pop_front() {
                Some((key, stamp)) => {
                    if self.map.get(&key).is_some_and(|e| e.tick == stamp) {
                        self.map.remove(&key);
                        self.evictions += 1;
                    }
                }
                None => break,
            }
        }
        self.maybe_compact(capacity);
    }
}

/// The fields of an [`Entry`] minus the recency stamp (assigned by the
/// shard at insertion).
struct PendingEntry {
    canonical_plan: Vec<u32>,
    cost: f64,
    instance: String,
    primary: bool,
    exact: bool,
}

/// Error raised by [`PlanCache::restore`] /
/// [`PlanCache::restore_from_text`].
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The snapshot text failed to parse (bad header/version, malformed
    /// line, or truncation).
    Snapshot(SnapshotError),
    /// The snapshot was taken under a different quantization resolution;
    /// its fingerprints mean nothing to this cache.
    ResolutionMismatch {
        /// Resolution recorded in the snapshot.
        snapshot: f64,
        /// Resolution this cache fingerprints with.
        cache: f64,
    },
    /// An entry failed verification (unparseable instance, fingerprint
    /// that does not match the instance, or an invalid canonical plan).
    InvalidEntry {
        /// 0-based index of the entry in the snapshot.
        index: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Snapshot(e) => write!(f, "cannot parse snapshot: {e}"),
            RestoreError::ResolutionMismatch { snapshot, cache } => {
                write!(f, "snapshot resolution {snapshot} does not match cache resolution {cache}")
            }
            RestoreError::InvalidEntry { index, reason } => {
                write!(f, "snapshot entry {index}: {reason}")
            }
        }
    }
}

impl Error for RestoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RestoreError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for RestoreError {
    fn from(e: SnapshotError) -> Self {
        RestoreError::Snapshot(e)
    }
}

/// A sharded, concurrent, LRU plan cache in front of the branch-and-bound
/// optimizer. See the [crate docs](crate) for the serving semantics and
/// [`CacheConfig`] for the knobs.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    config: CacheConfig,
}

impl PlanCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0`, the validation tolerance is
    /// negative or non-finite, or the quantization resolution is invalid
    /// (see [`Quantization::new`]).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.shards > 0, "a cache needs at least one shard");
        assert!(
            config.validation_tolerance.is_finite() && config.validation_tolerance >= 0.0,
            "validation tolerance must be finite and non-negative"
        );
        assert!(
            config.probes == 1 || config.probes == 2,
            "probes must be 1 (primary grid) or 2 (primary + shifted grid)"
        );
        // Re-validate through the constructor so an invalid hand-rolled
        // resolution fails here rather than deep inside a request.
        let _ = Quantization::new(config.quantization.resolution);
        let shards = (0..config.shards).map(|_| Mutex::new(Shard::default())).collect();
        PlanCache { shards, config }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }

    /// Clones the transportable pieces of the entry under `key`'s
    /// fingerprint, if present and shaped like this instance. The third
    /// element is the entry's exact flag.
    fn probe(&self, key: &CanonicalKey) -> Option<(Plan, f64, bool)> {
        let guard = self.shard(key.fingerprint()).lock();
        guard.map.get(&key.fingerprint()).and_then(|entry| {
            // A malformed transport (fingerprint collision with a
            // different-sized instance) degrades to a miss.
            key.plan_from_canonical(&entry.canonical_plan).map(|p| (p, entry.cost, entry.exact))
        })
    }

    /// Writes `plan` back under the primary fingerprint and, with two
    /// probes configured, under the shifted-grid alias. `shifted` is
    /// reused when the lookup already computed it.
    fn write_back(
        &self,
        instance: &QueryInstance,
        primary: &CanonicalKey,
        shifted: Option<CanonicalKey>,
        plan: &Plan,
        cost: f64,
        exact: bool,
    ) {
        // Heuristic-tier entries are transient — skipped by `snapshot`
        // and re-written (exact, with a fresh serialization) when their
        // refinement lands — so serializing the instance for them would
        // only tax the tier-1 latency the tier exists to protect.
        let text = if exact { format_instance(instance) } else { String::new() };
        let capacity = self.config.capacity_per_shard;
        let pending = PendingEntry {
            canonical_plan: primary.plan_to_canonical(plan),
            cost,
            instance: text.clone(),
            primary: true,
            exact,
        };
        self.shard(primary.fingerprint()).lock().insert(primary.fingerprint(), pending, capacity);
        if self.config.probes == 2 {
            let shifted = shifted.unwrap_or_else(|| {
                CanonicalKey::with_phase(instance, &self.config.quantization, PROBE_PHASE)
            });
            let alias = PendingEntry {
                canonical_plan: shifted.plan_to_canonical(plan),
                cost,
                instance: text,
                primary: false,
                exact,
            };
            self.shard(shifted.fingerprint()).lock().insert(shifted.fingerprint(), alias, capacity);
        }
    }

    /// `true` when the entry under `fingerprint` is resident and still
    /// at the heuristic tier — the gate a background refinement worker
    /// checks before spending an exact search on a job whose entry was
    /// meanwhile evicted or upgraded by a warm start.
    pub(crate) fn needs_refinement(&self, fingerprint: u64) -> bool {
        self.shard(fingerprint).lock().map.get(&fingerprint).is_some_and(|entry| !entry.exact)
    }

    /// Upgrades the entry for `instance` in place to an exact-tier plan
    /// (refinement landing). Returns `false` without writing when the
    /// entry is gone or already exact — an eviction or a concurrent warm
    /// start may have superseded the job, and the newer exact plan (for
    /// the drifted instance the warm start saw) must win.
    pub(crate) fn upgrade(&self, instance: &QueryInstance, plan: &Plan, cost: f64) -> bool {
        let key = CanonicalKey::new(instance, &self.config.quantization);
        {
            let guard = self.shard(key.fingerprint()).lock();
            match guard.map.get(&key.fingerprint()) {
                Some(entry) if !entry.exact => {}
                _ => return false,
            }
        }
        self.write_back(instance, &key, None, plan, cost, true);
        true
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Serves one instance: validated cache hit, warm-started search, or
    /// cold search (see [`ServeSource`]). Cold and warm searches write
    /// their result back, so subsequent near-identical requests hit.
    ///
    /// Concurrent callers are safe: the shard lock is **not** held while
    /// optimizing, so long searches never block hits on other keys (or
    /// even on the same shard).
    pub fn serve(&self, instance: &QueryInstance, config: &BnbConfig) -> ServedPlan {
        self.serve_inner(instance, config, None::<fn(&QueryInstance) -> (Plan, f64)>)
    }

    /// The tiered serve path: identical to [`serve`](Self::serve) except
    /// that a miss is answered by `heuristic` (which must return a
    /// precedence-feasible plan and its bottleneck cost on `instance`)
    /// instead of a cold exact search, and the entry is written back at
    /// the heuristic tier, awaiting [`upgrade`](Self::upgrade). Hits on
    /// a still-heuristic entry report [`PlanTier::Heuristic`] so the
    /// caller can re-enqueue a refinement that was dropped.
    pub(crate) fn serve_heuristic(
        &self,
        instance: &QueryInstance,
        config: &BnbConfig,
        heuristic: impl FnOnce(&QueryInstance) -> (Plan, f64),
    ) -> ServedPlan {
        self.serve_inner(instance, config, Some(heuristic))
    }

    fn serve_inner(
        &self,
        instance: &QueryInstance,
        config: &BnbConfig,
        heuristic: Option<impl FnOnce(&QueryInstance) -> (Plan, f64)>,
    ) -> ServedPlan {
        let key = CanonicalKey::new(instance, &self.config.quantization);
        let fingerprint = key.fingerprint();

        // Primary-grid probe, then (with `probes: 2`) the shifted grid.
        // The hot validated-hit path computes a single fingerprint; the
        // second one is only derived after a primary miss.
        let mut cached = self.probe(&key);
        let mut shifted: Option<CanonicalKey> = None;
        let mut via_probe2 = false;
        if cached.is_none() && self.config.probes == 2 {
            let alias = CanonicalKey::with_phase(instance, &self.config.quantization, PROBE_PHASE);
            cached = self.probe(&alias);
            via_probe2 = cached.is_some();
            shifted = Some(alias);
        }

        if let Some((plan, cached_cost, entry_exact)) = cached {
            let feasible = instance.precedence().is_none_or(|dag| plan.satisfies(dag));
            if feasible {
                let exact = bottleneck_cost(instance, &plan);
                let spread = (exact - cached_cost).abs();
                if spread <= self.config.validation_tolerance * exact.abs().max(cached_cost.abs()) {
                    // Bump the recency of the entry that answered. A
                    // probe-2 hit deliberately does NOT write a fresh
                    // primary entry ("healing"): a walking parameter
                    // flips its primary bucket every few requests, so
                    // per-flip inserts would double the write traffic
                    // and age the stable alias — the one slot that keeps
                    // answering — out of a loaded LRU shard.
                    let answered =
                        shifted.as_ref().map_or(fingerprint, |alias| alias.fingerprint());
                    let capacity = self.config.capacity_per_shard;
                    let mut guard = self.shard(answered).lock();
                    guard.hits += 1;
                    guard.probe2_hits += u64::from(via_probe2);
                    guard.touch(answered, capacity);
                    let (tier, optimality_gap) = if entry_exact {
                        (PlanTier::Exact, Some(0.0))
                    } else {
                        (PlanTier::Heuristic, None)
                    };
                    return ServedPlan {
                        plan,
                        cost: exact,
                        source: ServeSource::CacheHit,
                        fingerprint,
                        tier,
                        optimality_gap,
                        search: None,
                    };
                }
                // Out of tolerance: re-optimize, seeded with the cached
                // plan (its cost is near-optimal, so ρ prunes hard).
                // This runs the exact search even under a heuristic miss
                // policy — a stale entry already proves the key is hot,
                // so the warm start doubles as its refinement.
                let warm_config = config.clone().with_initial_incumbent(plan);
                let result = optimize_with(instance, &warm_config);
                self.write_back(instance, &key, shifted, result.plan(), result.cost(), true);
                self.shard(fingerprint).lock().warm_starts += 1;
                return ServedPlan {
                    plan: result.plan().clone(),
                    cost: result.cost(),
                    source: ServeSource::WarmStart,
                    fingerprint,
                    tier: PlanTier::Exact,
                    optimality_gap: Some(0.0),
                    search: Some(result.stats().clone()),
                };
            }
        }

        if let Some(heuristic) = heuristic {
            let (plan, cost) = heuristic(instance);
            self.write_back(instance, &key, shifted, &plan, cost, false);
            self.shard(fingerprint).lock().misses += 1;
            return ServedPlan {
                plan,
                cost,
                source: ServeSource::Cold,
                fingerprint,
                tier: PlanTier::Heuristic,
                optimality_gap: None,
                search: None,
            };
        }

        let result = optimize_with(instance, config);
        self.write_back(instance, &key, shifted, result.plan(), result.cost(), true);
        self.shard(fingerprint).lock().misses += 1;
        ServedPlan {
            plan: result.plan().clone(),
            cost: result.cost(),
            source: ServeSource::Cold,
            fingerprint,
            tier: PlanTier::Exact,
            optimality_gap: Some(0.0),
            search: Some(result.stats().clone()),
        }
    }

    /// A snapshot of the counters, summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let guard = shard.lock();
            total.hits += guard.hits;
            total.probe2_hits += guard.probe2_hits;
            total.warm_starts += guard.warm_starts;
            total.misses += guard.misses;
            total.evictions += guard.evictions;
            total.insertions += guard.insertions;
            total.entries += guard.map.len();
            total.heuristic_entries += guard.map.values().filter(|e| !e.exact).count();
            total.recency_slots += guard.order.len();
        }
        total
    }

    /// Serializes the resident primary-grid entries (shifted-grid probe
    /// aliases are derived state and re-created on restore). Unrefined
    /// heuristic-tier entries are skipped too: they are transient —
    /// cheap to recompute, pending refinement — and persisting them
    /// would smuggle possibly-suboptimal plans into a warm restart,
    /// where the restored cache can no longer tell the tiers apart.
    /// Entries are ordered by fingerprint, so equal caches produce
    /// byte-identical snapshots regardless of insertion order.
    pub fn snapshot(&self) -> PlanSnapshot {
        let mut entries: Vec<SnapshotEntry> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock();
            for (&fingerprint, entry) in guard.map.iter().filter(|(_, e)| e.primary && e.exact) {
                entries.push(SnapshotEntry {
                    fingerprint,
                    cost: entry.cost,
                    canonical_plan: entry.canonical_plan.clone(),
                    instance: entry.instance.clone(),
                });
            }
        }
        entries.sort_by_key(|e| e.fingerprint);
        PlanSnapshot::new(&self.config.quantization, entries)
    }

    /// Exports **and removes** the resident primary exact-tier entries
    /// whose fingerprint satisfies `moved` — the leaving side of a warm
    /// partition handoff. During a fleet rebalance, `moved(fp)` is
    /// "does `fp`'s consistent-hash owner change under the new ring";
    /// the returned snapshot streams to the inheriting backend (which
    /// [`restore`](Self::restore)s it), while everything the predicate
    /// rejects stays resident here. Shifted-grid probe aliases of the
    /// exported entries are dropped too (they are derived state; the
    /// inheritor re-derives its own on restore). Unrefined
    /// heuristic-tier entries are neither exported nor retained in the
    /// snapshot sense — like [`snapshot`](Self::snapshot), only
    /// `primary && exact` entries are handoff material.
    ///
    /// Entries are ordered by fingerprint, so equal caches produce
    /// byte-identical exports regardless of insertion order.
    pub fn export_partition(&self, moved: impl Fn(u64) -> bool) -> PlanSnapshot {
        let mut entries: Vec<SnapshotEntry> = Vec::new();
        for shard in &self.shards {
            let mut guard = shard.lock();
            let moving: Vec<u64> = guard
                .map
                .iter()
                .filter(|&(&fingerprint, entry)| entry.primary && entry.exact && moved(fingerprint))
                .map(|(&fingerprint, _)| fingerprint)
                .collect();
            for fingerprint in moving {
                let entry = guard.map.remove(&fingerprint).expect("listed under this lock");
                entries.push(SnapshotEntry {
                    fingerprint,
                    cost: entry.cost,
                    canonical_plan: entry.canonical_plan,
                    instance: entry.instance,
                });
            }
        }
        // Drop the exported entries' shifted-grid aliases (possibly in
        // other shards, so after the primary pass releases its locks).
        // An alias fingerprint that collides with a resident *primary*
        // entry is someone else's logical plan and is left alone.
        if self.config.probes == 2 {
            for exported in &entries {
                let Ok(instance) = parse_instance(&exported.instance) else { continue };
                let shifted =
                    CanonicalKey::with_phase(&instance, &self.config.quantization, PROBE_PHASE);
                let shard = self.shard(shifted.fingerprint());
                let mut guard = shard.lock();
                if guard.map.get(&shifted.fingerprint()).is_some_and(|entry| !entry.primary) {
                    guard.map.remove(&shifted.fingerprint());
                }
            }
        }
        entries.sort_by_key(|e| e.fingerprint);
        PlanSnapshot::new(&self.config.quantization, entries)
    }

    /// Loads a snapshot into this cache (on top of whatever is already
    /// resident), returning the number of logical entries restored. Every
    /// entry is re-verified before insertion: its instance text must
    /// parse, must hash back to the recorded fingerprint under this
    /// cache's quantization, and the canonical plan must transport onto
    /// it. With `probes: 2`, shifted-grid aliases are re-derived from the
    /// instance text **after** every primary entry has been inserted, and
    /// admitted without counting against shard capacity — so a restore
    /// that exactly fills a shard never has its primaries evicted by
    /// their own derived aliases (normal traffic trims the transient
    /// overshoot through the usual LRU policy).
    ///
    /// # Errors
    ///
    /// [`RestoreError::ResolutionMismatch`] when the snapshot was taken
    /// under a different quantization resolution, or
    /// [`RestoreError::InvalidEntry`] naming the first corrupt entry.
    /// Verification runs before any insertion, so a failed restore
    /// leaves the cache exactly as it was.
    pub fn restore(&self, snapshot: &PlanSnapshot) -> Result<usize, RestoreError> {
        if snapshot.resolution.to_bits() != self.config.quantization.resolution.to_bits() {
            return Err(RestoreError::ResolutionMismatch {
                snapshot: snapshot.resolution,
                cache: self.config.quantization.resolution,
            });
        }
        let mut verified: Vec<(QueryInstance, CanonicalKey, Plan, f64)> = Vec::new();
        for (index, entry) in snapshot.entries.iter().enumerate() {
            let invalid = |reason: String| RestoreError::InvalidEntry { index, reason };
            let instance = parse_instance(&entry.instance)
                .map_err(|e| invalid(format!("instance does not parse: {e}")))?;
            let key = CanonicalKey::new(&instance, &self.config.quantization);
            if key.fingerprint() != entry.fingerprint {
                return Err(invalid("fingerprint mismatch".into()));
            }
            let plan = key
                .plan_from_canonical(&entry.canonical_plan)
                .ok_or_else(|| invalid("invalid canonical plan".into()))?;
            if !entry.cost.is_finite() {
                return Err(invalid("non-finite cost".into()));
            }
            verified.push((instance, key, plan, entry.cost));
        }

        let capacity = self.config.capacity_per_shard;
        for (instance, key, plan, cost) in &verified {
            let pending = PendingEntry {
                canonical_plan: key.plan_to_canonical(plan),
                cost: *cost,
                instance: format_instance(instance),
                primary: true,
                exact: true,
            };
            self.shard(key.fingerprint()).lock().insert(key.fingerprint(), pending, capacity);
        }
        if self.config.probes == 2 && capacity > 0 {
            for (instance, key, plan, cost) in &verified {
                // A snapshot larger than the cache evicts its oldest
                // primaries above; an alias for an evicted primary would
                // be an orphan, so derive aliases only for survivors.
                if !self.shard(key.fingerprint()).lock().map.contains_key(&key.fingerprint()) {
                    continue;
                }
                let shifted =
                    CanonicalKey::with_phase(instance, &self.config.quantization, PROBE_PHASE);
                let alias = PendingEntry {
                    canonical_plan: shifted.plan_to_canonical(plan),
                    cost: *cost,
                    instance: format_instance(instance),
                    primary: false,
                    exact: true,
                };
                self.shard(shifted.fingerprint()).lock().insert(
                    shifted.fingerprint(),
                    alias,
                    usize::MAX,
                );
            }
        }
        Ok(snapshot.entries.len())
    }

    /// Parses snapshot text and [`restore`](Self::restore)s it.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Snapshot`] for unparseable text, plus everything
    /// [`restore`](Self::restore) rejects.
    pub fn restore_from_text(&self, text: &str) -> Result<usize, RestoreError> {
        self.restore(&PlanSnapshot::parse(text)?)
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.map.clear();
            guard.order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq_core::{optimize, CommMatrix, Service};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(seed: u64, n: usize) -> QueryInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        QueryInstance::builder()
            .services(
                (0..n).map(|_| Service::new(rng.gen_range(0.2..2.0), rng.gen_range(0.2..0.95))),
            )
            .comm(CommMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { rng.gen_range(0.1..1.0) }))
            .build()
            .unwrap()
    }

    /// An instance whose parameters all sit at **bucket centers** of the
    /// default 5% quantization (exact powers of 1.05): drift below ~2%
    /// can then never cross a bucket boundary, keeping the fingerprint
    /// deterministic for the drift tests below.
    fn bucket_centered(seed: u64, n: usize) -> QueryInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let step = 1.05f64;
        QueryInstance::builder()
            .services((0..n).map(|_| {
                Service::new(step.powi(rng.gen_range(-10..10)), step.powi(rng.gen_range(-14..0)))
            }))
            .comm(CommMatrix::from_fn(n, |i, j| {
                if i == j {
                    0.0
                } else {
                    step.powi(rng.gen_range(-8..4))
                }
            }))
            .build()
            .unwrap()
    }

    /// Multiplies every parameter by `factor` — same fingerprint while
    /// the drift stays inside a quantization bucket.
    fn drifted(inst: &QueryInstance, factor: f64) -> QueryInstance {
        let n = inst.len();
        QueryInstance::builder()
            .services(
                inst.services()
                    .iter()
                    .map(|s| Service::new(s.cost() * factor, s.selectivity() * factor)),
            )
            .comm(CommMatrix::from_fn(n, |i, j| inst.transfer(i, j) * factor))
            .build()
            .unwrap()
    }

    #[test]
    fn cold_then_hit_roundtrip() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = instance(1, 6);
        let cold = cache.serve(&inst, &BnbConfig::paper());
        assert_eq!(cold.source, ServeSource::Cold);
        assert!(cold.search.is_some());
        let hit = cache.serve(&inst, &BnbConfig::paper());
        assert_eq!(hit.source, ServeSource::CacheHit);
        assert!(hit.search.is_none());
        assert_eq!(hit.plan, cold.plan);
        assert_eq!(hit.cost.to_bits(), cold.cost.to_bits());
        assert_eq!(hit.fingerprint, cold.fingerprint);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.warm_starts), (1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.requests(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn small_drift_hits_and_validates_on_the_exact_instance() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = bucket_centered(2, 6);
        let cold = cache.serve(&inst, &BnbConfig::paper());
        let near = drifted(&inst, 1.004);
        let hit = cache.serve(&near, &BnbConfig::paper());
        assert_eq!(hit.source, ServeSource::CacheHit, "sub-bucket drift must hit");
        // The returned cost is the plan's cost on the *drifted* instance,
        // not the cached number.
        assert_eq!(hit.cost.to_bits(), bottleneck_cost(&near, &hit.plan).to_bits());
        assert_ne!(hit.cost.to_bits(), cold.cost.to_bits());
        // Hit quality: within tolerance of that instance's true optimum.
        let fresh = optimize(&near);
        assert!(hit.cost <= fresh.cost() * (1.0 + 0.05) + 1e-12);
    }

    #[test]
    fn out_of_tolerance_drift_warm_starts() {
        // Tiny tolerance forces the validation to fail for any real
        // drift, driving the warm-start path deterministically.
        let cache =
            PlanCache::new(CacheConfig { validation_tolerance: 1e-12, ..CacheConfig::default() });
        let inst = bucket_centered(3, 7);
        cache.serve(&inst, &BnbConfig::paper());
        let near = drifted(&inst, 1.004);
        let warm = cache.serve(&near, &BnbConfig::paper());
        assert_eq!(warm.source, ServeSource::WarmStart);
        // Warm result is exactly optimal for the drifted instance.
        let fresh = optimize(&near);
        assert_eq!(warm.cost.to_bits(), fresh.cost().to_bits());
        assert_eq!(&warm.plan, fresh.plan());
        assert!(warm.search.expect("warm runs a search").proven_optimal);
        // The write-back refreshed the entry: the same instance now hits.
        assert_eq!(cache.serve(&near, &BnbConfig::paper()).source, ServeSource::CacheHit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.warm_starts), (1, 1, 1));
    }

    #[test]
    fn relabeled_instances_share_an_entry() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = instance(4, 5);
        let cold = cache.serve(&inst, &BnbConfig::paper());
        // Rotate the labels: service i of the relabeling is original
        // service (i + 1) mod n.
        let n = inst.len();
        let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        let relabeled = QueryInstance::builder()
            .services(perm.iter().map(|&o| inst.services()[o].clone()))
            .comm(CommMatrix::from_fn(n, |i, j| inst.transfer(perm[i], perm[j])))
            .build()
            .unwrap();
        let served = cache.serve(&relabeled, &BnbConfig::paper());
        assert_eq!(served.source, ServeSource::CacheHit, "relabels share fingerprints");
        // The transported plan orders the same physical services: mapping
        // back through the permutation recovers the original plan.
        let recovered: Vec<usize> = served.plan.indices().iter().map(|&i| perm[i]).collect();
        assert_eq!(recovered, cold.plan.indices());
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
            ..CacheConfig::default()
        });
        let a = instance(10, 5);
        let b = instance(11, 5);
        let c = instance(12, 5);
        cache.serve(&a, &BnbConfig::paper());
        cache.serve(&b, &BnbConfig::paper());
        // Touch A so B becomes the LRU victim.
        assert_eq!(cache.serve(&a, &BnbConfig::paper()).source, ServeSource::CacheHit);
        cache.serve(&c, &BnbConfig::paper());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.serve(&a, &BnbConfig::paper()).source, ServeSource::CacheHit);
        assert_eq!(cache.serve(&b, &BnbConfig::paper()).source, ServeSource::Cold, "B evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(CacheConfig {
            shards: 2,
            capacity_per_shard: 0,
            ..CacheConfig::default()
        });
        let inst = instance(5, 5);
        for _ in 0..3 {
            assert_eq!(cache.serve(&inst, &BnbConfig::paper()).source, ServeSource::Cold);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.evictions, 3);
    }

    /// A partition export is a handoff, not a copy: the moved entries
    /// leave the exporting cache, restore warm into the inheritor, and
    /// the retained entries keep hitting where they were.
    #[test]
    fn export_partition_hands_entries_off_warm() {
        let config = CacheConfig { shards: 2, probes: 2, ..CacheConfig::default() };
        let cache = PlanCache::new(config.clone());
        let instances: Vec<QueryInstance> = (0..6).map(|s| instance(s, 5)).collect();
        let first: Vec<_> =
            instances.iter().map(|inst| cache.serve(inst, &BnbConfig::paper())).collect();
        let full = cache.snapshot();
        assert_eq!(full.entries.len(), 6);

        // Move every even fingerprint; keep the odd ones.
        let moved = |fp: u64| fp % 2 == 0;
        let exported = cache.export_partition(moved);
        let retained = cache.snapshot();
        assert!(exported.entries.iter().all(|e| moved(e.fingerprint)));
        assert!(retained.entries.iter().all(|e| !moved(e.fingerprint)));
        assert_eq!(
            exported.entries.len() + retained.entries.len(),
            6,
            "exported and retained partition the exact-tier entries"
        );
        // Exporting is idempotent: the moved entries are gone.
        assert!(cache.export_partition(moved).entries.is_empty());

        let inheritor = PlanCache::new(config);
        inheritor.restore(&exported).expect("handoff restores");
        for (inst, original) in instances.iter().zip(&first) {
            let (owner, other) = if moved(original.fingerprint) {
                (&inheritor, &cache)
            } else {
                (&cache, &inheritor)
            };
            let served = owner.serve(inst, &BnbConfig::paper());
            assert_eq!(served.source, ServeSource::CacheHit, "handoff kept the entry warm");
            assert_eq!(served.plan, original.plan);
            assert_eq!(served.cost.to_bits(), original.cost.to_bits());
            assert_eq!(
                other.serve(inst, &BnbConfig::paper()).source,
                ServeSource::Cold,
                "each logical entry lives on exactly one side"
            );
        }
    }

    /// Regression (soak): the lazy recency queue used to append a pair
    /// on every touch and only drain during eviction, so a hit-heavy
    /// steady state below capacity grew `order` without bound. The
    /// compaction in `Shard::touch` keeps it within its headroom.
    #[test]
    fn hit_heavy_steady_state_keeps_the_recency_queue_bounded() {
        let capacity = 4;
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: capacity,
            ..CacheConfig::default()
        });
        let instances: Vec<QueryInstance> = (0..capacity as u64).map(|s| instance(s, 5)).collect();
        for inst in &instances {
            cache.serve(inst, &BnbConfig::paper());
        }
        // Far more touches than the compaction threshold; without
        // compaction the queue would end at ~5000 slots.
        for round in 0..1250 {
            let inst = &instances[round % instances.len()];
            assert_eq!(cache.serve(inst, &BnbConfig::paper()).source, ServeSource::CacheHit);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, capacity, "no evictions in steady state");
        assert_eq!(stats.evictions, 0);
        assert!(
            stats.recency_slots <= 2 * capacity + ORDER_COMPACT_SLACK + 1,
            "recency queue must stay bounded, got {} slots",
            stats.recency_slots
        );
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = PlanCache::new(CacheConfig::default());
        let inst = instance(6, 5);
        cache.serve(&inst, &BnbConfig::paper());
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.serve(&inst, &BnbConfig::paper()).source, ServeSource::Cold);
    }

    #[test]
    fn concurrent_serves_agree() {
        let cache = PlanCache::new(CacheConfig::default());
        let instances: Vec<QueryInstance> = (0..4).map(|s| instance(20 + s, 6)).collect();
        let expected: Vec<f64> = instances.iter().map(|i| optimize(i).cost()).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for (inst, &cost) in instances.iter().zip(&expected) {
                        let served = cache.serve(inst, &BnbConfig::paper());
                        assert_eq!(served.cost.to_bits(), cost.to_bits());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.requests(), 32);
        assert!(stats.hits > 0, "later threads must hit");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        PlanCache::new(CacheConfig { shards: 0, ..CacheConfig::default() });
    }

    #[test]
    #[should_panic(expected = "probes must be 1")]
    fn probe_counts_beyond_two_rejected() {
        PlanCache::new(CacheConfig { probes: 3, ..CacheConfig::default() });
    }

    /// Two occurrences of a query whose one parameter sits on opposite
    /// sides of a primary bucket boundary: single-probe caches treat them
    /// as strangers, the second probe finds the entry via the shifted
    /// grid.
    fn boundary_pair() -> (QueryInstance, QueryInstance) {
        let step = 1.05f64;
        let at = |offset: f64| {
            QueryInstance::builder()
                .services(vec![
                    Service::new(step.powf(3.5 + offset), step.powi(-6)),
                    Service::new(step.powi(12), step.powi(-2)),
                    Service::new(step.powi(-4), step.powi(-9)),
                ])
                .comm(CommMatrix::uniform(3, step.powi(-3)))
                .build()
                .unwrap()
        };
        (at(-0.1), at(0.1))
    }

    #[test]
    fn second_probe_bridges_a_boundary_crossing() {
        let (below, above) = boundary_pair();

        let single = PlanCache::new(CacheConfig::default());
        single.serve(&below, &BnbConfig::paper());
        assert_eq!(
            single.serve(&above, &BnbConfig::paper()).source,
            ServeSource::Cold,
            "one probe: the crossing flips the fingerprint to a cold key"
        );

        let dual = PlanCache::new(CacheConfig { probes: 2, ..CacheConfig::default() });
        dual.serve(&below, &BnbConfig::paper());
        let served = dual.serve(&above, &BnbConfig::paper());
        assert_eq!(served.source, ServeSource::CacheHit, "probe 2 finds the shifted-grid alias");
        let stats = dual.stats();
        assert_eq!((stats.hits, stats.probe2_hits, stats.misses), (1, 1, 1));
        // Probe-2 hits touch the alias but never write new entries (see
        // `serve`): the same side keeps answering through the alias and
        // the cache stays at its two slots.
        let again = dual.serve(&above, &BnbConfig::paper());
        assert_eq!(again.source, ServeSource::CacheHit);
        assert_eq!(dual.stats().probe2_hits, 2, "the stable alias keeps answering");
        assert_eq!(dual.stats().entries, 2, "no write amplification from probe-2 hits");
        // Quality: identical to a fresh optimum within validation.
        let fresh = optimize(&above);
        assert!(served.cost <= fresh.cost() * 1.05 + 1e-12);
    }

    #[test]
    fn snapshot_restore_round_trips_entries_and_behavior() {
        let cache = PlanCache::new(CacheConfig::default());
        let instances: Vec<QueryInstance> = (0..4).map(|s| instance(40 + s, 6)).collect();
        let cold: Vec<ServedPlan> =
            instances.iter().map(|i| cache.serve(i, &BnbConfig::paper())).collect();

        let snapshot = cache.snapshot();
        assert_eq!(snapshot.entries.len(), 4);
        assert!(
            snapshot.entries.windows(2).all(|w| w[0].fingerprint < w[1].fingerprint),
            "deterministic order"
        );

        let restored = PlanCache::new(CacheConfig::default());
        assert_eq!(restored.restore(&snapshot).expect("restores"), 4);
        assert_eq!(restored.stats().entries, 4);
        for (inst, first) in instances.iter().zip(&cold) {
            let served = restored.serve(inst, &BnbConfig::paper());
            assert_eq!(served.source, ServeSource::CacheHit, "warm restart must hit");
            assert_eq!(served.plan, first.plan);
            assert_eq!(served.cost.to_bits(), first.cost.to_bits());
            assert_eq!(served.fingerprint, first.fingerprint);
        }
        // Text round-trip: parse(to_text) feeds restore_from_text too.
        let text = snapshot.to_text();
        let from_text = PlanCache::new(CacheConfig::default());
        assert_eq!(from_text.restore_from_text(&text).expect("parses and restores"), 4);
        assert_eq!(from_text.snapshot().to_text(), text, "snapshot of a restore is identical");
    }

    #[test]
    fn restore_rederives_probe_aliases() {
        let (below, above) = boundary_pair();
        let dual = PlanCache::new(CacheConfig { probes: 2, ..CacheConfig::default() });
        dual.serve(&below, &BnbConfig::paper());
        let snapshot = dual.snapshot();
        assert_eq!(snapshot.entries.len(), 1, "aliases are not serialized");

        let restored = PlanCache::new(CacheConfig { probes: 2, ..CacheConfig::default() });
        restored.restore(&snapshot).expect("restores");
        assert_eq!(restored.stats().entries, 2, "primary + re-derived alias");
        assert_eq!(
            restored.serve(&above, &BnbConfig::paper()).source,
            ServeSource::CacheHit,
            "the re-derived alias bridges the boundary after restart"
        );
    }

    #[test]
    fn restore_rejects_resolution_mismatch_with_the_exact_message() {
        let cache = PlanCache::new(CacheConfig {
            quantization: Quantization::new(0.1),
            ..CacheConfig::default()
        });
        cache.serve(&instance(50, 5), &BnbConfig::paper());
        let snapshot = cache.snapshot();
        let other = PlanCache::new(CacheConfig::default());
        let err = other.restore(&snapshot).expect_err("resolutions differ");
        assert_eq!(err.to_string(), "snapshot resolution 0.1 does not match cache resolution 0.05");
        assert_eq!(other.stats().entries, 0, "nothing restored");
    }

    #[test]
    fn restore_rejects_corrupt_entries() {
        let cache = PlanCache::new(CacheConfig::default());
        cache.serve(&instance(51, 5), &BnbConfig::paper());
        let good = cache.snapshot();

        let mut tampered = good.clone();
        tampered.entries[0].fingerprint ^= 1;
        let err = PlanCache::new(CacheConfig::default())
            .restore(&tampered)
            .expect_err("fingerprint no longer matches the instance");
        assert_eq!(err.to_string(), "snapshot entry 0: fingerprint mismatch");

        let mut tampered = good.clone();
        tampered.entries[0].canonical_plan = vec![0, 0, 1, 2, 3];
        let err = PlanCache::new(CacheConfig::default())
            .restore(&tampered)
            .expect_err("not a permutation");
        assert_eq!(err.to_string(), "snapshot entry 0: invalid canonical plan");

        let mut tampered = good.clone();
        tampered.entries[0].instance = "dsq-instance v1\nname broken\nn 2\n".into();
        let err = PlanCache::new(CacheConfig::default())
            .restore(&tampered)
            .expect_err("instance truncated");
        assert!(err.to_string().starts_with("snapshot entry 0: instance does not parse:"), "{err}");
    }
}
