//! The service layer's handles into the process-wide
//! [`dsq_telemetry::global`] registry.
//!
//! Planners are constructed freely — per worker, per request batch, per
//! test — so they must not pay a registry lookup (a mutex and a
//! `BTreeMap` walk) each time one is built or used. All handles are
//! resolved **once** per process through a `OnceLock` and shared; the
//! hot path's cost is one atomic load plus the histogram/counter record
//! itself.
//!
//! Server-side serving stages live in the per-server registry inside
//! `dsq-server` (test isolation: co-located servers must not mix
//! streams); what lands here is the *embedder-side* view — planner
//! latencies, fleet routing outcomes, breaker transitions, and tiered
//! refinement — which the `dsq loadgen` / batch / harness paths read
//! via [`dsq_telemetry::global`].

use dsq_telemetry::{global, Counter, Histogram};
use std::sync::Arc;
use std::sync::OnceLock;

/// Pre-resolved global-registry handles for the service layer.
pub(crate) struct Handles {
    /// Cold (from-scratch) optimization latency.
    pub cold_plan_ns: Arc<Histogram>,
    /// Cache-fronted serve latency (hit, warm, or cold+insert).
    pub cached_plan_ns: Arc<Histogram>,
    /// Whole fleet dispatch latency (routing + backend + failover).
    pub fleet_plan_ns: Arc<Histogram>,
    /// Requests served by a non-home backend.
    pub fleet_failovers: Arc<Counter>,
    /// Requests served by the local fallback.
    pub fleet_fallbacks: Arc<Counter>,
    /// Requests that failed everywhere.
    pub fleet_errors: Arc<Counter>,
    /// Circuit-breaker openings (ejections from routing).
    pub breaker_trips: Arc<Counter>,
    /// Successful half-open probes (readmissions to routing).
    pub breaker_readmissions: Arc<Counter>,
    /// Eligibility checks rejected by an open circuit.
    pub breaker_rejections: Arc<Counter>,
    /// Requests answered at the heuristic tier.
    pub tiered_heuristic_served: Arc<Counter>,
    /// Background refinements that landed.
    pub tiered_refined: Arc<Counter>,
}

/// The process-wide handles, resolved on first use.
pub(crate) fn handles() -> &'static Handles {
    static HANDLES: OnceLock<Handles> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = global();
        Handles {
            cold_plan_ns: registry.histogram("planner.cold.plan_ns"),
            cached_plan_ns: registry.histogram("planner.cached.plan_ns"),
            fleet_plan_ns: registry.histogram("planner.fleet.plan_ns"),
            fleet_failovers: registry.counter("fleet.failovers"),
            fleet_fallbacks: registry.counter("fleet.fallbacks"),
            fleet_errors: registry.counter("fleet.errors"),
            breaker_trips: registry.counter("breaker.trips"),
            breaker_readmissions: registry.counter("breaker.readmissions"),
            breaker_rejections: registry.counter("breaker.rejections"),
            tiered_heuristic_served: registry.counter("tiered.heuristic-served"),
            tiered_refined: registry.counter("tiered.refined"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global registry is process-wide, so tests assert *growth*,
    /// never absolute values.
    #[test]
    fn handles_resolve_once_and_publish_into_the_global_registry() {
        let first = handles();
        let again = handles();
        assert!(std::ptr::eq(first, again), "one resolution per process");
        let before = first.breaker_trips.get();
        first.breaker_trips.inc();
        assert_eq!(first.breaker_trips.get(), before + 1);
        let text = global().render();
        assert!(text.contains("counter breaker.trips "), "{text}");
        assert!(text.contains("histogram planner.cold.plan_ns "), "{text}");
    }
}
